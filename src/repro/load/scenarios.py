"""The scenario zoo: load shapes composed with FaultLab schedules.

A scenario is a named, reproducible experiment that answers a question
no plain sweep or plain fault schedule can: *what happens when the
system is stressed and wounded at the same time?* Each one pairs an
open-loop load shape (:mod:`repro.load.arrivals`) with a FaultLab fault
timeline, runs the full checker stack — invariant checkers scoring the
run, the WatchLab detector suite watching the same trace — and demands
both verdicts:

* every invariant holds (or, for scenarios that deliberately plant a
  confidentiality breach, the checker *catches* the breach and nothing
  else fails);
* every injected fault is picked up by the online detectors
  (:func:`repro.obs.watch.detectors.match_detections` coverage).

Fault targets are resolved against the built deployment at run time
(the current leader, its site, a shard's proposers), so scenarios stay
valid as topologies change.

Catalog (``repro load scenario --list``):

====================================  =====================================
``checkpoint-under-burst``            bursty on/off load while a replica
                                      crash-recovers: checkpoint catch-up
                                      must absorb the burst backlog.
``key-renewal-storm``                 failure-storm load with aggressive
                                      key renewal and a planted plaintext
                                      leak: renewal bounds disclosure and
                                      the checker must catch the leak.
``site-disconnect-at-saturation``     Poisson load at the knee while the
                                      leader's site is cut off: failover
                                      under pressure, then reintegration.
``proposer-kill-at-knee``             staggered proposer crashes at knee
                                      load: consecutive view changes while
                                      the queue is never empty.
``shard-hotspot``                     two shards, skewed traffic onto one,
                                      and that shard's proposer killed:
                                      the cold shard must be unaffected.
====================================  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faultlab.schedule import FaultSchedule, make_event, validate_schedule
from repro.load.generator import LoadConfig, LoadGenerator

#: deployment -> fault events, resolved against the live topology.
FaultBuilder = Callable[[object], Tuple]


# ---------------------------------------------------------------------------
# Fault builders (run-time target resolution)
# ---------------------------------------------------------------------------

def _non_leader_onprem(deployment) -> str:
    leader = deployment.current_leader()
    return next(h for h in deployment.on_premises_hosts if h != leader)


def _burst_recover(deployment):
    # Crash a non-leader executing replica for longer than the detector
    # silence timeout; it comes back mid-burst and must catch up via
    # checkpoint/state transfer while the bursts keep landing.
    return (make_event(4.0, "recover", _non_leader_onprem(deployment),
                       duration=5.0),)


def _storm_leak(deployment):
    # Plant a plaintext exfiltration in the middle of the storm window.
    # The scenario is green only if the confidentiality invariant CATCHES
    # it (planted_breach below) and the exposure detector fires.
    return (make_event(5.5, "leak", ""),)


def _leader_site_disconnect(deployment):
    site = deployment.site_of_host(deployment.current_leader())
    return (make_event(4.0, "isolate", site, until=9.0),)


def _staggered_proposer_kills(deployment):
    # Prime's view-0 leader is the first on-premises host; killing it and
    # then its successor forces two view changes back to back.
    hosts = list(deployment.on_premises_hosts)
    return (
        make_event(3.5, "recover", hosts[0], duration=5.0),
        make_event(9.0, "recover", hosts[1], duration=5.0),
    )


def _hot_shard_proposer_kill(_deployment):
    return (make_event(4.0, "shard_kill_proposers", "s0",
                       count=1, duration=5.0, stagger=0.6),)


# ---------------------------------------------------------------------------
# Scenario definitions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class LoadScenario:
    """One named composition of a load shape and a fault timeline."""

    name: str
    summary: str
    profile: str
    rate: float
    faults: FaultBuilder
    profile_params: Dict[str, float] = field(default_factory=dict)
    duration: float = 12.0
    aliases: int = 400
    clients: int = 10
    max_inflight: int = 4
    deadline: float = 4.0
    shards: int = 1
    intro_batch_size: int = 1
    checkpoint_interval: int = 50
    key_renewal: bool = False
    key_validity: int = 100
    hot_fraction: float = 0.0
    #: The scenario deliberately plants a confidentiality breach; green
    #: means the checker caught it, not that no violation occurred.
    planted_breach: bool = False
    #: Whether the fault kinds used are supported on the live substrate
    #: (see repro.rt.faultlive.LIVE_KINDS).
    live_ok: bool = False


SCENARIOS: Dict[str, LoadScenario] = {
    scenario.name: scenario
    for scenario in (
        LoadScenario(
            name="checkpoint-under-burst",
            summary="replica crash-recovery while bursty load piles "
                    "backlog onto checkpoint catch-up",
            profile="bursty",
            rate=18.0,
            profile_params={"on_seconds": 1.0, "off_seconds": 2.0},
            checkpoint_interval=25,
            faults=_burst_recover,
            live_ok=True,
        ),
        LoadScenario(
            name="key-renewal-storm",
            summary="failure-storm load under aggressive key renewal with "
                    "a planted leak the checker must catch",
            profile="storm",
            rate=10.0,
            profile_params={"storm_at": 4.0, "storm_duration": 3.0,
                            "storm_multiplier": 4.0},
            checkpoint_interval=25,
            key_renewal=True,
            key_validity=40,
            faults=_storm_leak,
            planted_breach=True,
        ),
        LoadScenario(
            name="site-disconnect-at-saturation",
            summary="leader's site isolated while Poisson load sits at "
                    "the saturation knee",
            profile="poisson",
            rate=30.0,
            faults=_leader_site_disconnect,
            live_ok=True,
        ),
        LoadScenario(
            name="proposer-kill-at-knee",
            summary="two staggered proposer crashes at knee load: "
                    "consecutive view changes under a full queue",
            profile="poisson",
            rate=30.0,
            duration=15.0,
            faults=_staggered_proposer_kills,
            live_ok=True,
        ),
        LoadScenario(
            name="shard-hotspot",
            summary="two shards, traffic skewed onto s0, s0's proposer "
                    "killed; the cold shard must ride through untouched",
            profile="poisson",
            rate=24.0,
            shards=2,
            hot_fraction=0.65,
            faults=_hot_shard_proposer_kill,
        ),
    )
}


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@dataclass
class LoadScenarioResult:
    """One scenario run's verdict: load stats + invariants + detections."""

    name: str
    seed: int
    quick: bool
    ok: bool
    invariants_ok: bool
    breach_caught: Optional[bool]
    detection_ok: bool
    stats: Dict
    violations: List[str]
    detections: List[Dict]
    undetected: List[str]
    health_events: int
    end_time: float

    def to_dict(self) -> Dict:
        return {
            "scenario": self.name,
            "seed": self.seed,
            "quick": self.quick,
            "ok": self.ok,
            "invariants_ok": self.invariants_ok,
            "breach_caught": self.breach_caught,
            "detection_ok": self.detection_ok,
            "violations": list(self.violations),
            "detections": list(self.detections),
            "undetected": list(self.undetected),
            "health_events": self.health_events,
            "end_time": self.end_time,
            "load": dict(self.stats),
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        line = (
            f"{status} {self.name} seed={self.seed}: "
            f"offered {self.stats['offered']} admitted {self.stats['admitted']} "
            f"dropped {self.stats['dropped']} goodput "
            f"{self.stats['goodput_per_s']}/s; "
            f"detections {len(self.detections) - len(self.undetected)}"
            f"/{len(self.detections)}"
        )
        if self.breach_caught is not None:
            line += f"; breach_caught={self.breach_caught}"
        if self.violations:
            line += "".join("\n  " + v for v in self.violations)
        if self.undetected:
            line += "\n  undetected: " + ", ".join(self.undetected)
        return line


def _detection_events(events, deployment):
    """Translate shard-scoped fault events into the per-host events the
    detector-coverage matcher understands; pass everything else through."""
    translated = []
    for event in events:
        if event.kind == "shard_kill_proposers":
            shard = deployment.shards[int(event.target[1:])]
            count = max(1, int(event.param("count", 1)))
            stagger = float(event.param("stagger", 0.6))
            duration = float(event.param("duration", 3.0))
            for index, host in enumerate(list(shard.on_premises_hosts)[:count]):
                translated.append(
                    make_event(event.at + index * stagger, "recover", host,
                               duration=duration)
                )
        else:
            translated.append(event)
    return translated


def run_load_scenario(name: str, seed: int = 11, quick: bool = False,
                      keep_deployment: bool = False) -> LoadScenarioResult:
    """Run one named scenario on the sim substrate and score it."""
    from repro.faultlab.invariants import InvariantChecker
    from repro.faultlab.runner import _install_events
    from repro.faultlab.shardfaults import (
        ShardInvariantChecker,
        check_cross_shard_consistency,
        install_shard_events,
    )
    from repro.obs.watch.detectors import DetectorSuite, match_detections
    from repro.shard.builder import build_sharded
    from repro.system import build
    from repro.system.adversary import Adversary
    from repro.system.config import SystemConfig

    scenario = SCENARIOS.get(name)
    if scenario is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}"
        )

    rate = max(5.0, scenario.rate * 0.5) if quick else scenario.rate
    aliases = min(scenario.aliases, 150) if quick else scenario.aliases

    config = SystemConfig(
        seed=seed,
        f=1,
        num_clients=scenario.clients,
        update_interval=1.0,
        checkpoint_interval=scenario.checkpoint_interval,
        intro_batch_size=scenario.intro_batch_size,
        shards=scenario.shards,
        key_renewal_enabled=scenario.key_renewal,
        key_validity=scenario.key_validity,
    )
    sharded = scenario.shards > 1
    deployment = build_sharded(config) if sharded else build(config)

    events = tuple(scenario.faults(deployment))
    load_start = 0.5
    horizon = load_start + scenario.duration
    schedule = FaultSchedule(seed=seed, horizon=horizon, events=events)
    validate_schedule(schedule)
    quiesce_at = max(schedule.clear_time, horizon * 0.75)
    end_time = horizon + 6.0

    # Invariant checkers: one per shard (namespace-filtered) when sharded,
    # the classic single checker otherwise.
    if sharded:
        checkers = [
            ShardInvariantChecker(
                shard, Adversary(shard), quiesce_at=quiesce_at,
                namespace=f"s{shard_id}.",
            ).attach()
            for shard_id, shard in enumerate(deployment.shards)
        ]
        install_shard_events(schedule, deployment)
        watch = [h for shard in deployment.shards for h in shard.replicas]
        exposure = [
            h for shard in deployment.shards for h in shard.data_center_hosts
        ]
    else:
        adversary = Adversary(deployment)
        checkers = [
            InvariantChecker(deployment, adversary, quiesce_at=quiesce_at).attach()
        ]
        _install_events(schedule, deployment, adversary)
        watch = list(deployment.replicas)
        exposure = list(deployment.data_center_hosts)

    suite = DetectorSuite(now_fn=lambda: deployment.kernel.now)
    suite.attach(deployment.tracer)
    suite.watch_hosts(watch)
    suite.restrict_exposure(exposure)

    hot_clients: Tuple[str, ...] = ()
    if scenario.hot_fraction > 0 and sharded:
        hot_clients = tuple(sorted(
            cid for cid in deployment.routers
            if deployment.shard_of_client(cid) == 0
        ))

    generator = LoadGenerator(
        deployment,
        LoadConfig(
            profile=scenario.profile,
            rate=rate,
            profile_params=dict(scenario.profile_params),
            aliases=aliases,
            duration=scenario.duration,
            start_at=load_start,
            max_inflight=scenario.max_inflight,
            deadline=scenario.deadline,
            hot_fraction=scenario.hot_fraction,
            hot_clients=hot_clients,
        ),
    )

    try:
        deployment.start()
        generator.start()
        deployment.run(until=end_time)

        stats = generator.stats().to_dict()
        reports = [checker.finish() for checker in checkers]
        violations = [
            v for report in reports for v in report.violations
        ]
        if sharded:
            violations.extend(
                check_cross_shard_consistency(deployment, end_time)
            )

        breach_caught: Optional[bool] = None
        if scenario.planted_breach:
            confidentiality = [
                v for v in violations if v.invariant == "confidentiality"
            ]
            breach_caught = bool(confidentiality)
            violations = [
                v for v in violations if v.invariant != "confidentiality"
            ]
        invariants_ok = not violations

        suite.poll(end_time)
        health = suite.drain()
        suite.detach()
        matches = match_detections(
            _detection_events(schedule.events, deployment), health
        )
        undetected = [
            f"{m.fault_kind} {m.fault_target}".strip()
            for m in matches if not m.detected
        ]
        detection_ok = not undetected

        ok = (
            invariants_ok
            and detection_ok
            and (breach_caught is not False)
            and stats["completed"] > 0
        )
        return LoadScenarioResult(
            name=scenario.name,
            seed=seed,
            quick=quick,
            ok=ok,
            invariants_ok=invariants_ok,
            breach_caught=breach_caught,
            detection_ok=detection_ok,
            stats=stats,
            violations=[v.describe() for v in violations],
            detections=[
                {
                    "fault": f"{m.fault_kind} {m.fault_target}".strip(),
                    "detected": m.detected,
                    "event": m.event_kind,
                    "host": m.event_host,
                    "latency": (
                        round(m.detection_time - m.fault_time, 3)
                        if m.detection_time is not None else None
                    ),
                }
                for m in matches
            ],
            undetected=undetected,
            health_events=len(health),
            end_time=end_time,
        )
    finally:
        if not keep_deployment:
            deployment.shutdown()
