"""LoadLab: open-loop load generation, saturation curves, and scenarios.

Everything the repo measured before this package was *closed-loop*: a
bounded set of clients each keeping at most one update in flight, so the
generator implicitly slows down whenever the system does. That hides the
saturation knee — exactly the regime the ROADMAP north-star cares about.

``repro.load`` is the open-loop instrument:

* :mod:`repro.load.arrivals` — seeded arrival processes (Poisson, bursty
  on/off, diurnal ramp, failure storm), substrate-neutral;
* :mod:`repro.load.generator` — drives a sim deployment at an *offered*
  rate from thousands of client aliases multiplexed over a bounded pool
  of real proxies, recording drops and timeouts instead of slowing down;
* :mod:`repro.load.sweep` — the saturation harness: step offered load,
  emit latency-vs-offered-load and goodput curves with knee detection
  into ``benchmarks/results/BENCH_load.json``;
* :mod:`repro.load.scenarios` — the scenario zoo composing load shapes
  with FaultLab schedules, each runnable by name;
* :mod:`repro.load.closedloop` — the shared closed-loop driver helper
  the legacy benchmarks now build on, so closed- and open-loop arms
  share configuration and reporting code.

The live substrate reuses :mod:`repro.load.arrivals` through the rt
client driver (``RtConfig.load_profile``).
"""

from repro.load.arrivals import (
    PROFILES,
    ArrivalSpec,
    arrival_gaps,
    arrival_times,
    peak_rate,
    phase_at,
    rate_at,
)
from repro.load.generator import LoadConfig, LoadGenerator, LoadStats
from repro.load.scenarios import (
    SCENARIOS,
    LoadScenario,
    LoadScenarioResult,
    run_load_scenario,
    scenario_names,
)
from repro.load.sweep import (
    DEFAULT_RESULTS_PATH,
    check_load,
    detect_knee,
    load_results,
    run_point,
    run_sweep,
    write_results,
)

__all__ = [
    "PROFILES",
    "ArrivalSpec",
    "arrival_gaps",
    "arrival_times",
    "peak_rate",
    "phase_at",
    "rate_at",
    "LoadConfig",
    "LoadGenerator",
    "LoadStats",
    "SCENARIOS",
    "LoadScenario",
    "LoadScenarioResult",
    "run_load_scenario",
    "scenario_names",
    "DEFAULT_RESULTS_PATH",
    "check_load",
    "detect_knee",
    "load_results",
    "run_point",
    "run_sweep",
    "write_results",
]
