"""Open-loop load generator for the simulated substrate.

The generator multiplexes thousands of *client aliases* — virtual users
with their own keyspaces and value-size draws — over the bounded pool of
real :class:`~repro.core.proxy.ClientProxy` objects a deployment owns.
Arrivals come from a seeded :class:`~repro.load.arrivals.ArrivalSpec`;
each arrival is attributed to an alias, the alias to its pinned proxy,
and the proxy either *admits* the update (it has an in-flight slot) or
the generator *drops* it on the spot and counts the drop.

That drop accounting is the whole point. A closed-loop driver slows down
when the system does, silently converting overload into lower offered
load; an open-loop generator keeps offering and makes the system's
refusal visible as ``load.dropped`` and ``load.timeouts``. Goodput is
then "completions within the deadline per second" — the honest curve a
saturation sweep plots against offered load.

Keyspaces respect ShardLab routing: in a sharded deployment every alias
only writes keys the :class:`~repro.shard.shardmap.ShardMap` assigns to
its proxy's home shard, so no key is ever written through a foreign
group and the cross-shard consistency audit stays meaningful.

The generator is mechanically invisible until started: constructing one
(or starting a disabled one) schedules nothing, draws no randomness, and
creates no instruments, so paired runs with and without an (idle)
generator produce byte-identical traces — test-enforced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.load.arrivals import ArrivalSpec, arrival_gaps, phase_at
from repro.load.closedloop import percentile
from repro.sim.process import Timeout, spawn


@dataclass(frozen=True)
class LoadConfig:
    """Shape of one open-loop run."""

    #: Arrival profile: poisson | bursty | diurnal | storm.
    profile: str = "poisson"
    #: Mean offered rate, arrivals/second, aggregated across all aliases.
    rate: float = 20.0
    #: Profile parameters (see :class:`~repro.load.arrivals.ArrivalSpec`).
    profile_params: Dict[str, float] = field(default_factory=dict)
    #: Distinct client aliases multiplexed over the proxy pool.
    aliases: int = 1000
    #: Offered-load window in virtual seconds (arrivals stop after it).
    duration: float = 10.0
    #: Virtual time at which arrivals begin (deployment warm-up).
    start_at: float = 0.5
    #: Keys per alias keyspace.
    keyspace: int = 4
    #: Value payload size draw, uniform over [min, max] bytes.
    value_bytes_min: int = 16
    value_bytes_max: int = 64
    #: Admission bound: in-flight updates per pooled proxy. An arrival
    #: finding its proxy full is dropped and counted, never queued.
    max_inflight: int = 4
    #: Latency SLO: completions slower than this count against goodput.
    deadline: float = 4.0
    #: Fraction of arrivals concentrated on the ``hot_clients`` subset
    #: (0 = uniform). The shard-hotspot scenario sets this.
    hot_fraction: float = 0.0
    #: Client ids receiving the hot fraction (empty = first client).
    hot_clients: Tuple[str, ...] = ()

    def spec(self) -> ArrivalSpec:
        return ArrivalSpec(
            profile=self.profile, rate=self.rate, params=dict(self.profile_params)
        )


@dataclass
class LoadStats:
    """Backpressure-honest accounting for one open-loop run."""

    profile: str
    offered_rate: float
    duration: float
    aliases: int
    pool_clients: int
    offered: int = 0
    admitted: int = 0
    dropped: int = 0
    completed: int = 0
    slo_miss: int = 0
    timeouts: int = 0
    aliases_active: int = 0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    p99_by_phase_ms: Dict[str, float] = field(default_factory=dict)
    per_shard: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def goodput_per_s(self) -> float:
        good = self.completed - self.slo_miss
        return good / self.duration if self.duration > 0 else 0.0

    @property
    def admitted_per_s(self) -> float:
        return self.admitted / self.duration if self.duration > 0 else 0.0

    @property
    def offered_per_s(self) -> float:
        return self.offered / self.duration if self.duration > 0 else 0.0

    def to_dict(self) -> Dict:
        doc = {
            "profile": self.profile,
            "offered_rate": self.offered_rate,
            "duration_s": self.duration,
            "aliases": self.aliases,
            "pool_clients": self.pool_clients,
            "offered": self.offered,
            "admitted": self.admitted,
            "dropped": self.dropped,
            "completed": self.completed,
            "slo_miss": self.slo_miss,
            "timeouts": self.timeouts,
            "aliases_active": self.aliases_active,
            "offered_per_s": round(self.offered_per_s, 3),
            "admitted_per_s": round(self.admitted_per_s, 3),
            "goodput_per_s": round(self.goodput_per_s, 3),
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "p99_by_phase_ms": dict(self.p99_by_phase_ms),
        }
        if self.per_shard:
            doc["per_shard"] = {k: dict(v) for k, v in self.per_shard.items()}
        return doc

    def describe(self) -> str:
        return (
            f"{self.profile} offered {self.offered} ({self.offered_per_s:.1f}/s) "
            f"over {self.aliases_active} aliases: admitted {self.admitted}, "
            f"dropped {self.dropped}, completed {self.completed} "
            f"(goodput {self.goodput_per_s:.1f}/s, slo_miss {self.slo_miss}, "
            f"timeouts {self.timeouts}), p99 {self.latency_p99_ms:.1f} ms"
        )


class LoadGenerator:
    """Drive one (sharded or classic) sim deployment open-loop.

    Accepts either a :class:`~repro.system.builder.Deployment` (submits
    through its proxies) or a
    :class:`~repro.shard.builder.ShardedDeployment` (submits through its
    routing tier, so ``shard.updates`` accounting and route spans fire
    exactly as they do for organic traffic).
    """

    def __init__(self, deployment, config: Optional[LoadConfig] = None,
                 enabled: bool = True):
        if config is not None and config.aliases < 1:
            raise ConfigurationError("load generator needs at least one alias")
        self.deployment = deployment
        self.config = config or LoadConfig()
        self.enabled = enabled
        self.kernel = deployment.kernel
        self._started = False
        self._finished = False
        # Accounting (plain ints; the metric instruments are created in
        # start() so an idle generator leaves the registry untouched).
        self._offered = 0
        self._admitted = 0
        self._dropped = 0
        self._completed = 0
        self._slo_miss = 0
        self._aliases_used: set = set()
        self._latencies: List[float] = []
        self._phase_latencies: Dict[str, List[float]] = {}
        self._inflight: Dict[Tuple[str, int], Tuple[int, str]] = {}
        self._per_client: Dict[str, Dict[str, int]] = {}
        self._alias_keys: Dict[int, List[str]] = {}

    # -- wiring --------------------------------------------------------------

    def _submitters(self) -> Dict[str, object]:
        """client_id -> object with .submit(body) (proxy or router)."""
        routers = getattr(self.deployment, "routers", None)
        if routers is not None:
            return dict(routers)
        return dict(self.deployment.proxies)

    def _proxy_of(self, client_id: str):
        routers = getattr(self.deployment, "routers", None)
        if routers is not None:
            return routers[client_id].proxy
        return self.deployment.proxies[client_id]

    def _shard_of(self, client_id: str) -> int:
        shard_of = getattr(self.deployment, "shard_of_client", None)
        if shard_of is not None:
            return shard_of(client_id)
        return 0

    def _alias_keyspace(self, alias: int, client_id: str) -> List[str]:
        """The alias's keys, filtered to its home shard's ownership.

        In a classic deployment every candidate passes; in a sharded one
        only keys the ShardMap assigns to the alias's home shard are
        kept, so the generator never writes a key through a foreign
        group. Probing is deterministic: key j is the j-th candidate the
        filter accepted.
        """
        keys = self._alias_keys.get(alias)
        if keys is not None:
            return keys
        shard_map = getattr(self.deployment, "shard_map", None)
        home = self._shard_of(client_id)
        keys = []
        candidate = 0
        limit = max(64, self.config.keyspace * 64)
        while len(keys) < self.config.keyspace and candidate < limit:
            key = f"a{alias:05d}-k{candidate}"
            candidate += 1
            if shard_map is None or shard_map.key_shard(key) == home:
                keys.append(key)
        if not keys:  # pragma: no cover - the probe limit is generous
            keys = [f"a{alias:05d}-k0"]
        self._alias_keys[alias] = keys
        return keys

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the generator: draws begin at ``config.start_at``.

        A disabled generator's start() is a strict no-op — no kernel
        events, no rng draws, no metric instruments — which is what the
        paired-run trace-identity test pins.
        """
        if not self.enabled or self._started:
            return
        self._started = True
        cfg = self.config
        metrics = self.deployment.metrics
        self._m_offered = metrics.counter("load.offered")
        self._m_admitted = metrics.counter("load.admitted")
        self._m_dropped = metrics.counter("load.dropped")
        self._m_completed = metrics.counter("load.completed")
        self._m_slo_miss = metrics.counter("load.slo_miss")
        metrics.gauge("load.aliases").set(cfg.aliases)
        metrics.register_gauge("load.inflight", lambda: len(self._inflight))
        self._spec = cfg.spec()
        self._rng = self.deployment.rng.stream("load.arrivals")
        alias_rng = self.deployment.rng.stream("load.aliases")

        submitters = self._submitters()
        self._clients = sorted(submitters)
        self._submit_via = submitters
        for cid in self._clients:
            self._per_client.setdefault(cid, {"admitted": 0, "completed": 0,
                                              "dropped": 0})
            self._proxy_of(cid).on_response(self._make_on_response(cid))

        # Alias tour: a seeded permutation walked round-robin guarantees
        # every alias takes the stage (the "thousands of users" claim is
        # measured, not assumed), while the hot-fraction draw can still
        # skew traffic at the *client* level for hotspot scenarios.
        self._alias_order = list(range(cfg.aliases))
        alias_rng.shuffle(self._alias_order)
        self._alias_cursor = 0
        hot = [cid for cid in cfg.hot_clients if cid in submitters]
        if cfg.hot_fraction > 0 and not hot:
            hot = [self._clients[0]]
        self._hot_clients = hot

        spawn(self.kernel, self._process(), name="load-generator")

    def _process(self):
        cfg = self.config
        yield Timeout(cfg.start_at)
        epoch = self.kernel.now
        for gap in arrival_gaps(self._spec, self._rng, cfg.duration):
            if gap > 0:
                yield Timeout(gap)
            self._arrival(self.kernel.now - epoch)

    # -- per-arrival ---------------------------------------------------------

    def _make_on_response(self, client_id: str):
        def on_response(seq: int, _body: bytes, latency: float) -> None:
            entry = self._inflight.pop((client_id, seq), None)
            if entry is None:
                return  # closed-loop traffic on the same proxy, not ours
            _alias, phase = entry
            self._completed += 1
            self._m_completed.inc()
            self._per_client[client_id]["completed"] += 1
            self._latencies.append(latency)
            self._phase_latencies.setdefault(phase, []).append(latency)
            self._m_latency_for(phase).observe(latency)
            if latency > self.config.deadline:
                self._slo_miss += 1
                self._m_slo_miss.inc()

        return on_response

    def _m_latency_for(self, phase: str):
        return self.deployment.metrics.histogram("load.latency", phase=phase)

    def _pick_client(self, alias: int) -> str:
        cfg = self.config
        if self._hot_clients and self._rng.random() < cfg.hot_fraction:
            return self._hot_clients[alias % len(self._hot_clients)]
        return self._clients[alias % len(self._clients)]

    def _arrival(self, t_rel: float) -> None:
        cfg = self.config
        self._offered += 1
        self._m_offered.inc()
        alias = self._alias_order[self._alias_cursor]
        self._alias_cursor = (self._alias_cursor + 1) % len(self._alias_order)
        self._aliases_used.add(alias)
        client_id = self._pick_client(alias)
        proxy = self._proxy_of(client_id)
        if proxy.outstanding >= cfg.max_inflight:
            # Open-loop honesty: the pool is saturated, so this arrival
            # is refused and *recorded* — not silently deferred.
            self._dropped += 1
            self._m_dropped.inc()
            self._per_client[client_id]["dropped"] += 1
            return
        keys = self._alias_keyspace(alias, client_id)
        key = keys[self._rng.randrange(len(keys))]
        size = self._rng.randint(cfg.value_bytes_min, cfg.value_bytes_max)
        body = f"SET {key} a{alias}:{self._offered}:".encode() + b"v" * size
        phase = phase_at(self._spec, t_rel)
        seq = proxy.next_seq
        self._inflight[(client_id, seq)] = (alias, phase)
        self._admitted += 1
        self._m_admitted.inc()
        self._per_client[client_id]["admitted"] += 1
        self._submit_via[client_id].submit(body)

    # -- results -------------------------------------------------------------

    def stats(self) -> LoadStats:
        cfg = self.config
        ordered = sorted(self._latencies)
        per_shard: Dict[str, Dict[str, int]] = {}
        for cid, row in self._per_client.items():
            shard = f"s{self._shard_of(cid)}"
            agg = per_shard.setdefault(
                shard, {"admitted": 0, "completed": 0, "dropped": 0}
            )
            for field_name, value in row.items():
                agg[field_name] += value
        stats = LoadStats(
            profile=cfg.profile,
            offered_rate=cfg.rate,
            duration=cfg.duration,
            aliases=cfg.aliases,
            pool_clients=len(getattr(self, "_clients", ())) or
            len(self._submitters()),
            offered=self._offered,
            admitted=self._admitted,
            dropped=self._dropped,
            completed=self._completed,
            slo_miss=self._slo_miss,
            timeouts=self._admitted - self._completed,
            aliases_active=len(self._aliases_used),
            latency_p50_ms=round(percentile(ordered, 50) * 1000, 3),
            latency_p99_ms=round(percentile(ordered, 99) * 1000, 3),
            p99_by_phase_ms={
                phase: round(percentile(sorted(values), 99) * 1000, 3)
                for phase, values in sorted(self._phase_latencies.items())
            },
            per_shard=per_shard if len(per_shard) > 1 else {},
        )
        return stats
