"""Seeded arrival processes for open-loop load generation.

An arrival process answers one question: *when does the next request
arrive?* — independent of how the system under test is doing. That
independence is what makes the generator open-loop: a saturated system
does not slow the arrivals down, it drops or queues them, and the
generator records that honestly.

Four profiles, all driven by a single seeded ``random.Random`` through
Lewis–Shedler thinning (draw candidate arrivals at the profile's peak
rate, accept each with probability ``rate_at(t) / peak``), so one stream
of draws deterministically produces the whole sequence:

``poisson``
    Homogeneous Poisson at ``rate``: exponential interarrivals, the
    memoryless baseline every queueing result assumes.

``bursty``
    On/off duty cycle: silent for ``off_seconds``, then Poisson at a
    rate inflated so the *mean over the whole cycle* is still ``rate``.
    Models field devices that batch-report.

``diurnal``
    A triangular ramp with period ``period``: the instantaneous rate
    climbs monotonically from ``floor_fraction * rate`` to the peak over
    the first half-period and descends over the second. Mean over a full
    period is ``rate``. Models the day/night cycle in miniature.

``storm``
    Poisson at ``rate``, except inside ``[storm_at, storm_at +
    storm_duration)`` where the rate multiplies by ``storm_multiplier``
    — the retransmission/failover storm that follows a failure.

Every function is substrate-neutral: the sim generator converts the gap
sequence into kernel timeouts, the live rt driver into asyncio sleeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator

from repro.errors import ConfigurationError

PROFILES = ("poisson", "bursty", "diurnal", "storm")


@dataclass(frozen=True)
class ArrivalSpec:
    """One arrival process: profile name, mean rate, profile parameters.

    ``rate`` is the *mean* offered rate in arrivals per second, averaged
    over the profile's cycle — so sweeping ``rate`` compares profiles at
    equal total offered load.
    """

    profile: str = "poisson"
    rate: float = 10.0
    params: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.profile not in PROFILES:
            raise ConfigurationError(
                f"unknown arrival profile {self.profile!r}; "
                f"expected one of {PROFILES}"
            )
        if self.rate <= 0:
            raise ConfigurationError(f"arrival rate must be > 0, got {self.rate}")

    def param(self, name: str, default: float) -> float:
        return float(self.params.get(name, default))

    # -- profile parameters (with their defaults) ---------------------------

    @property
    def on_seconds(self) -> float:
        return self.param("on_seconds", 1.0)

    @property
    def off_seconds(self) -> float:
        return self.param("off_seconds", 2.0)

    @property
    def period(self) -> float:
        return self.param("period", 8.0)

    @property
    def floor_fraction(self) -> float:
        return self.param("floor_fraction", 0.2)

    @property
    def storm_at(self) -> float:
        return self.param("storm_at", 3.0)

    @property
    def storm_duration(self) -> float:
        return self.param("storm_duration", 2.0)

    @property
    def storm_multiplier(self) -> float:
        return self.param("storm_multiplier", 5.0)


def rate_at(spec: ArrivalSpec, t: float) -> float:
    """Instantaneous arrival rate λ(t) for ``spec`` at time ``t`` (t is
    relative to the process's own start)."""
    if spec.profile == "poisson":
        return spec.rate
    if spec.profile == "bursty":
        cycle = spec.on_seconds + spec.off_seconds
        if cycle <= 0:
            return spec.rate
        # Inflate the on-rate so the cycle mean is still spec.rate.
        on_rate = spec.rate * cycle / spec.on_seconds
        return on_rate if (t % cycle) < spec.on_seconds else 0.0
    if spec.profile == "diurnal":
        period = spec.period
        if period <= 0:
            return spec.rate
        floor = spec.floor_fraction * spec.rate
        # Triangular: mean of a symmetric ramp floor->peak->floor is
        # (floor + peak) / 2, so peak = 2*rate - floor keeps the mean.
        peak = 2.0 * spec.rate - floor
        phase = (t % period) / period
        ramp = 2.0 * phase if phase < 0.5 else 2.0 * (1.0 - phase)
        return floor + (peak - floor) * ramp
    # storm
    in_storm = spec.storm_at <= t < spec.storm_at + spec.storm_duration
    return spec.rate * spec.storm_multiplier if in_storm else spec.rate


def peak_rate(spec: ArrivalSpec) -> float:
    """The profile's maximum instantaneous rate (the thinning envelope)."""
    if spec.profile == "poisson":
        return spec.rate
    if spec.profile == "bursty":
        cycle = spec.on_seconds + spec.off_seconds
        return spec.rate * cycle / spec.on_seconds if cycle > 0 else spec.rate
    if spec.profile == "diurnal":
        return 2.0 * spec.rate - spec.floor_fraction * spec.rate
    return spec.rate * spec.storm_multiplier


def phase_at(spec: ArrivalSpec, t: float) -> str:
    """A coarse label for where ``t`` falls in the profile's cycle.

    Used to label latency histograms (``load.latency{phase=...}``) so a
    sweep can report p99 *by phase* — burst-on latency vs burst-off,
    storm vs background.
    """
    if spec.profile == "poisson":
        return "steady"
    if spec.profile == "bursty":
        cycle = spec.on_seconds + spec.off_seconds
        if cycle <= 0:
            return "steady"
        return "on" if (t % cycle) < spec.on_seconds else "off"
    if spec.profile == "diurnal":
        period = spec.period
        if period <= 0:
            return "steady"
        return "rise" if (t % period) / period < 0.5 else "fall"
    in_storm = spec.storm_at <= t < spec.storm_at + spec.storm_duration
    return "storm" if in_storm else "base"


def arrival_times(
    spec: ArrivalSpec, rng: random.Random, duration: float, start: float = 0.0
) -> Iterator[float]:
    """Yield absolute arrival times in ``[start, start + duration)``.

    Deterministic given the seeded ``rng``: the same (seed, spec,
    duration) always produces the same sequence. Times are strictly
    increasing. Implementation is Lewis–Shedler thinning against the
    profile's peak rate, so every profile consumes the rng stream the
    same way (one exponential + one uniform per candidate).
    """
    peak = peak_rate(spec)
    if peak <= 0:
        return
    t = 0.0
    while True:
        t += rng.expovariate(peak)
        if t >= duration:
            return
        if rng.random() * peak < rate_at(spec, t):
            yield start + t


def arrival_gaps(
    spec: ArrivalSpec, rng: random.Random, duration: float
) -> Iterator[float]:
    """Yield interarrival gaps (the Timeout/sleep sequence a driver needs).

    The first gap is measured from the process start; gaps sum to less
    than ``duration``.
    """
    last = 0.0
    for t in arrival_times(spec, rng, duration):
        yield t - last
        last = t
