"""Shared closed-loop driver and reporting helpers.

Before LoadLab, three benchmarks (``bench_hotpath`` via :mod:`repro.perf`,
``bench_shard_scaling``, ``bench_rt_live``) each carried their own copy of
the percentile math, the latency-stats dict, and — for the sim — the
closed-loop "submit, wait for the threshold-verified response, sleep the
interval, repeat" chain driver. This module is the single home for those
pieces, so the closed-loop arms and LoadLab's open-loop arms share
configuration and reporting code and their numbers stay comparable.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(sorted_values: Sequence[float], p: float) -> float:
    """Linear-interpolated percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = rank - low
    return sorted_values[low] * (1 - fraction) + sorted_values[high] * fraction


def latency_stats(latencies: Sequence[float], completed: int, elapsed: float) -> Dict:
    """The standard closed-loop report: throughput + latency percentiles."""
    ordered = sorted(latencies)
    return {
        "updates_completed": completed,
        "workload_seconds": round(elapsed, 3),
        "throughput_per_s": round(completed / elapsed, 2) if elapsed > 0 else 0.0,
        "latency_p50_ms": round(percentile(ordered, 50) * 1000, 2),
        "latency_p99_ms": round(percentile(ordered, 99) * 1000, 2),
        "latency_mean_ms": round(
            sum(ordered) / len(ordered) * 1000 if ordered else 0.0, 2
        ),
    }


def run_closed_loop_sim(
    config,
    updates_per_client: int,
    update_interval: float,
    start_at: float = 0.5,
    run_until: float = 600.0,
):
    """Drive a sim deployment exactly like the live ``ClientDriver``:
    one in-flight update per client — submit, wait for the verified
    response, sleep the interval, repeat, ``updates_per_client`` times.

    Returns ``(deployment, latencies, elapsed)`` where ``elapsed`` is the
    virtual time from ``start_at`` to the last completion. The deployment
    is returned un-shutdown so callers can inspect metrics/traces; call
    ``deployment.shutdown()`` when done.
    """
    from repro.system import build

    deployment = build(config)
    deployment.start()
    kernel = deployment.kernel
    remaining = {cid: updates_per_client for cid in deployment.proxies}
    last_completion = [0.0]

    def submit(cid):
        proxy = deployment.proxies[cid]
        seq = proxy.next_seq
        proxy.submit(f"SET {cid} {seq}".encode())

    def chain(cid):
        def on_response(_seq, _body, _latency):
            last_completion[0] = kernel.now
            remaining[cid] -= 1
            if remaining[cid] > 0:
                kernel.call_later(update_interval, submit, cid)

        deployment.proxies[cid].on_response(on_response)

    for cid in deployment.proxies:
        chain(cid)
        kernel.call_at(start_at, submit, cid)
    deployment.run(until=run_until)
    latencies: List[float] = [
        latency
        for proxy in deployment.proxies.values()
        for _seq, latency in proxy.latencies()
    ]
    return deployment, latencies, last_completion[0] - start_at
