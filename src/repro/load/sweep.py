"""Saturation sweeps: step offered load, find the knee.

A sweep runs the open-loop generator at a ladder of offered rates and
records, per rate, what the system actually delivered: admitted/s,
goodput/s (completions within the SLO deadline), drops, timeouts, and
latency percentiles. Plotting goodput against offered load gives the
saturation curve; :func:`detect_knee` finds the last rung where the
system still keeps up.

Because the simulation measures *virtual* time, every number here is
exactly reproducible on any machine — which is why ``--check`` can
enforce hard floors (a knee must exist, the batched knee must not fall
below the singleton knee, and neither may regress against the committed
baseline) instead of fuzzy wall-clock comparisons. This is the same
trick ``bench_shard_scaling --check`` uses.

Results land in ``benchmarks/results/BENCH_load.json`` with one curve
per configuration (``singleton`` = intro_batch_size 1, ``batched`` =
intro_batch_size 8), generated from ≥1000 distinct client aliases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.load.generator import LoadConfig, LoadGenerator

REPO_ROOT = Path(__file__).resolve().parents[3]
DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "BENCH_load.json"

#: A rung still "keeps up" when goodput is at least this fraction of the
#: offered rate; the knee is the last such rung.
KNEE_GOODPUT_FRACTION = 0.85

#: The two configurations every sweep measures, per the acceptance bar.
SWEEP_CONFIGS = {"singleton": 1, "batched": 8}

FULL = {
    "rates": (5.0, 10.0, 20.0, 40.0, 80.0, 160.0),
    "aliases": 1000,
    "duration": 8.0,
    "clients": 10,
}
QUICK = {
    "rates": (5.0, 80.0),
    "aliases": 200,
    "duration": 4.0,
    "clients": 8,
}


def run_point(
    rate: float,
    *,
    profile: str = "poisson",
    aliases: int = 1000,
    duration: float = 8.0,
    clients: int = 10,
    seed: int = 11,
    intro_batch_size: int = 1,
    shards: int = 1,
    max_inflight: int = 4,
    deadline: float = 4.0,
    drain: float = 4.0,
    profile_params: Optional[Dict[str, float]] = None,
) -> Dict:
    """One open-loop run at one offered rate; returns the stats dict."""
    from repro.shard.builder import build_sharded
    from repro.system import build
    from repro.system.config import SystemConfig

    config = SystemConfig(
        seed=seed,
        f=1,
        num_clients=clients,
        # The closed-loop workload never starts; the generator is the
        # only traffic source. Tracing off keeps big sweeps fast.
        update_interval=1.0,
        checkpoint_interval=50,
        intro_batch_size=intro_batch_size,
        shards=shards,
        tracing=False,
    )
    deployment = build_sharded(config) if shards > 1 else build(config)
    deployment.start()
    generator = LoadGenerator(
        deployment,
        LoadConfig(
            profile=profile,
            rate=rate,
            profile_params=dict(profile_params or {}),
            aliases=aliases,
            duration=duration,
            max_inflight=max_inflight,
            deadline=deadline,
        ),
    )
    generator.start()
    deployment.run(until=generator.config.start_at + duration + drain)
    stats = generator.stats()
    deployment.shutdown()
    doc = stats.to_dict()
    doc["intro_batch_size"] = intro_batch_size
    doc["shards"] = shards
    return doc


def detect_knee(points: Sequence[Dict],
                fraction: float = KNEE_GOODPUT_FRACTION) -> Optional[Dict]:
    """The saturation knee of one curve.

    The knee is the last point (in offered-rate order) whose goodput is
    at least ``fraction`` of its offered rate. Returns ``None`` when even
    the lowest rung is past saturation; otherwise a dict with the knee's
    rate/goodput and ``saturated`` — whether any higher rung fell below
    the fraction (False means the sweep never reached saturation and the
    knee is only a lower bound).
    """
    ordered = sorted(points, key=lambda p: p["offered_rate"])
    knee_idx = None
    saturated = False
    for idx, point in enumerate(ordered):
        if point["goodput_per_s"] >= fraction * point["offered_per_s"]:
            knee_idx = idx
        else:
            saturated = True
    if knee_idx is None:
        return None
    knee = ordered[knee_idx]
    return {
        "offered_rate": knee["offered_rate"],
        "offered_per_s": knee["offered_per_s"],
        "goodput_per_s": knee["goodput_per_s"],
        "latency_p99_ms": knee["latency_p99_ms"],
        "saturated": saturated,
    }


def run_sweep(
    quick: bool = False,
    seed: int = 11,
    profile: str = "poisson",
    rates: Optional[Sequence[float]] = None,
) -> Dict:
    """Sweep offered load for every configuration in :data:`SWEEP_CONFIGS`."""
    params = QUICK if quick else FULL
    ladder = tuple(rates) if rates else tuple(params["rates"])
    configs: Dict[str, Dict] = {}
    for name, batch_size in SWEEP_CONFIGS.items():
        points = [
            run_point(
                rate,
                profile=profile,
                aliases=params["aliases"],
                duration=params["duration"],
                clients=params["clients"],
                seed=seed,
                intro_batch_size=batch_size,
            )
            for rate in ladder
        ]
        configs[name] = {
            "intro_batch_size": batch_size,
            "points": points,
            "knee": detect_knee(points),
        }
    return {
        "benchmark": "load_sweep",
        "quick": quick,
        "seed": seed,
        "profile": profile,
        "aliases": params["aliases"],
        "duration": params["duration"],
        "clients": params["clients"],
        "rates": list(ladder),
        "knee_goodput_fraction": KNEE_GOODPUT_FRACTION,
        "configs": configs,
    }


def check_load(result: Dict, baseline: Optional[Dict],
               tolerance: float = 0.25) -> List[str]:
    """Machine-independent regression guard over a sweep result.

    Floors enforced unconditionally:

    * every configuration has a detected knee;
    * the batched knee's offered rate is no lower than the singleton's
      (batch amortization must not *reduce* capacity);
    * every point's accounting balances (offered = admitted + dropped).

    When a comparable baseline (same quick flag) is given, each
    configuration's knee goodput must stay within ``tolerance`` of the
    baseline's.
    """
    failures: List[str] = []
    knees: Dict[str, Dict] = {}
    for name, curve in result.get("configs", {}).items():
        knee = curve.get("knee")
        if knee is None:
            failures.append(f"{name}: no saturation knee detected "
                            "(every rung past saturation)")
            continue
        knees[name] = knee
        for point in curve.get("points", ()):
            if point["offered"] != point["admitted"] + point["dropped"]:
                failures.append(
                    f"{name}@{point['offered_rate']}: accounting imbalance "
                    f"(offered {point['offered']} != admitted "
                    f"{point['admitted']} + dropped {point['dropped']})"
                )
    if "singleton" in knees and "batched" in knees:
        if knees["batched"]["offered_rate"] < knees["singleton"]["offered_rate"]:
            failures.append(
                f"batched knee ({knees['batched']['offered_rate']}/s) below "
                f"singleton knee ({knees['singleton']['offered_rate']}/s)"
            )
    if baseline is not None and baseline.get("quick") == result.get("quick"):
        for name, knee in knees.items():
            base_knee = baseline.get("configs", {}).get(name, {}).get("knee")
            if base_knee is None:
                continue
            floor = base_knee["goodput_per_s"] * (1 - tolerance)
            if knee["goodput_per_s"] < floor:
                failures.append(
                    f"{name}: knee goodput {knee['goodput_per_s']}/s regressed "
                    f"below baseline {base_knee['goodput_per_s']}/s "
                    f"(tolerance {tolerance:.0%})"
                )
    return failures


def write_results(result: Dict, path: Optional[Path] = None) -> Path:
    out = path or (REPO_ROOT / DEFAULT_RESULTS_PATH)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return out


def load_results(path: Optional[Path] = None) -> Optional[Dict]:
    src = path or (REPO_ROOT / DEFAULT_RESULTS_PATH)
    if not Path(src).exists():
        return None
    return json.loads(Path(src).read_text())
