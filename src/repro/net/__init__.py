"""Network substrate: geography, intrusion-tolerant overlay, transport,
and attack injection.

- :mod:`repro.net.topology` — sites, hosts, link latencies, the canonical
  East-Coast evaluation topology,
- :mod:`repro.net.overlay` — Spines-model routing around failures,
- :mod:`repro.net.network` — message delivery with latency, bandwidth,
  queueing and jitter,
- :mod:`repro.net.attacks` — scripted site isolation and link cuts.
"""

from repro.net.attacks import AttackController, AttackEvent
from repro.net.network import Network
from repro.net.overlay import Overlay
from repro.net.topology import (
    CLIENT_SITE,
    CONTROL_CENTER_A,
    CONTROL_CENTER_B,
    DATA_CENTER_1,
    DATA_CENTER_2,
    DATA_CENTER_3,
    Site,
    SiteKind,
    Topology,
    east_coast_topology,
)

__all__ = [
    "AttackController",
    "AttackEvent",
    "Network",
    "Overlay",
    "Site",
    "SiteKind",
    "Topology",
    "east_coast_topology",
    "CLIENT_SITE",
    "CONTROL_CENTER_A",
    "CONTROL_CENTER_B",
    "DATA_CENTER_1",
    "DATA_CENTER_2",
    "DATA_CENTER_3",
]
