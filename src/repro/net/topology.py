"""Sites, hosts, and the geographic latency model.

The paper's evaluation emulates control centers and data centers "spanning
about 250 miles of the US East Coast" on a LAN, with inter-site latencies
emulated. We reproduce that: a :class:`Topology` knows every site, every
host's site, one-way propagation latencies between sites, and LAN latency
inside a site. :func:`east_coast_topology` builds the canonical evaluation
topology used by the Table II and Figure 2 benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError


class SiteKind(enum.Enum):
    """What a site is, which decides what its replicas are allowed to do."""

    ON_PREMISES = "on_premises"
    DATA_CENTER = "data_center"
    CLIENT = "client"


@dataclass
class Site:
    """A geographic site hosting replicas or clients."""

    name: str
    kind: SiteKind
    hosts: List[str] = field(default_factory=list)

    @property
    def is_on_premises(self) -> bool:
        return self.kind is SiteKind.ON_PREMISES

    @property
    def is_data_center(self) -> bool:
        return self.kind is SiteKind.DATA_CENTER


class Topology:
    """The static picture: sites, hosts, and raw link latencies.

    Latencies are *one-way propagation* times in seconds for the direct
    physical link between two sites; the overlay layer decides routing when
    direct links fail. Latency entries are symmetric.
    """

    def __init__(self, lan_latency: float = 0.0005):
        self.lan_latency = lan_latency
        self._sites: Dict[str, Site] = {}
        self._host_site: Dict[str, str] = {}
        self._links: Dict[Tuple[str, str], float] = {}

    # -- construction --------------------------------------------------------

    def add_site(self, name: str, kind: SiteKind) -> Site:
        if name in self._sites:
            raise ConfigurationError(f"duplicate site {name!r}")
        site = Site(name=name, kind=kind)
        self._sites[name] = site
        return site

    def add_host(self, host: str, site_name: str) -> None:
        if host in self._host_site:
            raise ConfigurationError(f"duplicate host {host!r}")
        site = self._require_site(site_name)
        site.hosts.append(host)
        self._host_site[host] = site_name

    def add_link(self, site_a: str, site_b: str, one_way_latency: float) -> None:
        """Declare a direct physical link between two sites."""
        self._require_site(site_a)
        self._require_site(site_b)
        if site_a == site_b:
            raise ConfigurationError("a site does not link to itself")
        if one_way_latency <= 0:
            raise ConfigurationError("link latency must be positive")
        self._links[_ordered(site_a, site_b)] = one_way_latency

    # -- queries --------------------------------------------------------------

    @property
    def sites(self) -> List[Site]:
        return list(self._sites.values())

    @property
    def links(self) -> Dict[Tuple[str, str], float]:
        return dict(self._links)

    def site_of(self, host: str) -> Site:
        site_name = self._host_site.get(host)
        if site_name is None:
            raise ConfigurationError(f"unknown host {host!r}")
        return self._sites[site_name]

    def get_site(self, name: str) -> Site:
        return self._require_site(name)

    def has_host(self, host: str) -> bool:
        return host in self._host_site

    def link_latency(self, site_a: str, site_b: str) -> Optional[float]:
        """Direct link latency, or None if no direct link exists."""
        return self._links.get(_ordered(site_a, site_b))

    def hosts_in(self, site_name: str) -> List[str]:
        return list(self._require_site(site_name).hosts)

    def _require_site(self, name: str) -> Site:
        site = self._sites.get(name)
        if site is None:
            raise ConfigurationError(f"unknown site {name!r}")
        return site


def _ordered(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


# Canonical evaluation sites. Latencies are one-way seconds, chosen so that
# an East-Coast deployment (~250 miles between the furthest sites) gives the
# Spire f=1 baseline an average update latency near the paper's ~52 ms once
# the Prime round structure is accounted for.
CONTROL_CENTER_A = "cc-a"
CONTROL_CENTER_B = "cc-b"
DATA_CENTER_1 = "dc-1"
DATA_CENTER_2 = "dc-2"
DATA_CENTER_3 = "dc-3"
CLIENT_SITE = "field"


def east_coast_topology(
    num_data_centers: int = 2,
    lan_latency: float = 0.0005,
) -> Topology:
    """The emulated East-Coast SCADA deployment from Section VII.

    Two control centers (on-premises) roughly 5 ms apart, data centers
    8-12 ms from the control centers, and a client site (substation field
    network) near the control centers. Every pair of sites has a direct
    link; the overlay can also route around a cut link through a third
    site, mirroring a Spines mesh.
    """
    if not 1 <= num_data_centers <= 3:
        raise ConfigurationError("evaluation topology supports 1-3 data centers")
    topo = Topology(lan_latency=lan_latency)
    topo.add_site(CONTROL_CENTER_A, SiteKind.ON_PREMISES)
    topo.add_site(CONTROL_CENTER_B, SiteKind.ON_PREMISES)
    topo.add_site(CLIENT_SITE, SiteKind.CLIENT)
    dc_names = [DATA_CENTER_1, DATA_CENTER_2, DATA_CENTER_3][:num_data_centers]
    for name in dc_names:
        topo.add_site(name, SiteKind.DATA_CENTER)

    # One-way latencies (seconds), mirroring the Spire testbed geometry:
    # the two control centers sit at the ends of the ~250-mile corridor
    # (~6 ms one way) with the commercial data centers *between* them, so
    # quorums that include a data-center replica are no slower than the
    # direct control-center path. Clients (substations) are near the CCs.
    topo.add_link(CONTROL_CENTER_A, CONTROL_CENTER_B, 0.0085)
    topo.add_link(CLIENT_SITE, CONTROL_CENTER_A, 0.0040)
    topo.add_link(CLIENT_SITE, CONTROL_CENTER_B, 0.0045)
    dc_latencies = {
        DATA_CENTER_1: (0.0040, 0.0060),   # (to cc-a, to cc-b)
        DATA_CENTER_2: (0.0060, 0.0040),
        DATA_CENTER_3: (0.0050, 0.0050),
    }
    for name in dc_names:
        to_a, to_b = dc_latencies[name]
        topo.add_link(name, CONTROL_CENTER_A, to_a)
        topo.add_link(name, CONTROL_CENTER_B, to_b)
    # Inter-data-center links complete the Spines mesh.
    for i, name_i in enumerate(dc_names):
        for name_j in dc_names[i + 1 :]:
            topo.add_link(name_i, name_j, 0.0020)
    return topo
