"""Intrusion-tolerant overlay routing (the Spines model).

Spire connects its sites with the Spines intrusion-tolerant overlay, whose
job in the paper's threat model is to reduce "a broad range of network
attacks" to the single remaining attack: a resource-intensive DoS that
isolates one whole site. We reproduce that reduction:

- the overlay maintains the site graph from the topology,
- it routes messages over the lowest-latency *functioning* path, so a cut
  link is survived transparently (with the latency of the detour),
- an *isolated* site has every incident link suppressed; no detour exists
  and traffic to/from it is dropped, exactly the residual attack the
  protocols must tolerate.

Routing is recomputed lazily whenever link state changes; path computation
is plain Dijkstra over a handful of sites, so cost is negligible.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Topology, _ordered


class Overlay:
    """Site-level routing with mutable link/site health."""

    def __init__(self, topology: Topology):
        self._topology = topology
        self._cut_links: Set[Tuple[str, str]] = set()
        self._isolated_sites: Set[str] = set()
        self._route_cache: Dict[Tuple[str, str], Optional[Tuple[float, int]]] = {}

    # -- attack surface (driven by repro.net.attacks) -------------------------

    def cut_link(self, site_a: str, site_b: str) -> None:
        if self._topology.link_latency(site_a, site_b) is None:
            raise ConfigurationError(f"no link between {site_a} and {site_b}")
        self._cut_links.add(_ordered(site_a, site_b))
        self._route_cache.clear()

    def restore_link(self, site_a: str, site_b: str) -> None:
        self._cut_links.discard(_ordered(site_a, site_b))
        self._route_cache.clear()

    def isolate_site(self, site: str) -> None:
        """Model a DoS that disconnects every link touching ``site``."""
        self._topology.get_site(site)
        self._isolated_sites.add(site)
        self._route_cache.clear()

    def reconnect_site(self, site: str) -> None:
        self._isolated_sites.discard(site)
        self._route_cache.clear()

    def is_isolated(self, site: str) -> bool:
        return site in self._isolated_sites

    @property
    def isolated_sites(self) -> Set[str]:
        return set(self._isolated_sites)

    # -- routing ---------------------------------------------------------------

    def path_latency(self, site_a: str, site_b: str) -> Optional[float]:
        """One-way latency of the best live route, or None if unreachable."""
        route = self.route(site_a, site_b)
        return None if route is None else route[0]

    def route(self, site_a: str, site_b: str) -> Optional[Tuple[float, int]]:
        """(latency, hop_count) of the best live route, or None.

        Same-site routing is free (handled by the LAN model upstream).
        """
        if site_a == site_b:
            return (0.0, 0)
        key = (site_a, site_b)
        if key in self._route_cache:
            return self._route_cache[key]
        result = self._dijkstra(site_a, site_b)
        self._route_cache[key] = result
        return result

    def _live_neighbors(self, site: str) -> List[Tuple[str, float]]:
        if site in self._isolated_sites:
            return []
        neighbors = []
        for (a, b), latency in self._topology.links.items():
            if a != site and b != site:
                continue
            other = b if a == site else a
            if other in self._isolated_sites:
                continue
            if _ordered(a, b) in self._cut_links:
                continue
            neighbors.append((other, latency))
        return neighbors

    def _dijkstra(self, start: str, goal: str) -> Optional[Tuple[float, int]]:
        best: Dict[str, float] = {start: 0.0}
        heap: List[Tuple[float, int, str]] = [(0.0, 0, start)]
        while heap:
            dist, hops, site = heapq.heappop(heap)
            if site == goal:
                return (dist, hops)
            if dist > best.get(site, float("inf")):
                continue
            for neighbor, latency in self._live_neighbors(site):
                candidate = dist + latency
                if candidate < best.get(neighbor, float("inf")):
                    best[neighbor] = candidate
                    heapq.heappush(heap, (candidate, hops + 1, neighbor))
        return None
