"""Attack injection: the adversary's network-level playbook.

The residual network attack under the paper's threat model (after the
Spines reduction) is a sophisticated DoS that isolates one geographic site.
This module scripts such attacks against the overlay, plus finer-grained
link cuts used by robustness tests.

Attacks can be driven two ways:

- imperatively (``controller.isolate_site("cc-a")``) from test code,
- declaratively as a schedule of :class:`AttackEvent` entries executed by
  :meth:`AttackController.install_schedule`, which is how the Figure 2
  benchmark reproduces the paper's timeline of disconnections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.net.overlay import Overlay
from repro.sim.kernel import Kernel
from repro.sim.trace import Tracer


@dataclass(frozen=True)
class AttackEvent:
    """One scheduled attack action.

    ``action`` is one of ``isolate``, ``reconnect``, ``cut_link``,
    ``restore_link``. ``target`` is a site name, or "siteA|siteB" for link
    actions.
    """

    time: float
    action: str
    target: str

    _ACTIONS = ("isolate", "reconnect", "cut_link", "restore_link", "degrade", "restore")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ValueError(f"unknown attack action {self.action!r}")


class AttackController:
    """Executes network attacks against an overlay, with tracing."""

    def __init__(
        self,
        kernel: Kernel,
        overlay: Overlay,
        tracer: Optional[Tracer] = None,
        network=None,
    ):
        self.kernel = kernel
        self.overlay = overlay
        self.tracer = tracer
        self.network = network
        self.log: List[AttackEvent] = []

    # -- imperative interface ----------------------------------------------------

    def isolate_site(self, site: str) -> None:
        """Launch a DoS isolating ``site`` from every other site, now."""
        self.overlay.isolate_site(site)
        self._record("isolate", site)

    def reconnect_site(self, site: str) -> None:
        """End the DoS against ``site``; its links come back immediately."""
        self.overlay.reconnect_site(site)
        self._record("reconnect", site)

    def degrade_site(
        self,
        site: str,
        bandwidth_divisor: float = 10.0,
        added_latency: float = 0.020,
        loss_probability: float = 0.02,
    ) -> None:
        """Partial DoS: throttle, delay, and drop (but do not sever)
        every WAN flow touching ``site``."""
        if self.network is None:
            raise RuntimeError("attack controller has no network reference")
        self.network.degrade_site(
            site, bandwidth_divisor, added_latency, loss_probability
        )
        self._record("degrade", site)

    def restore_site(self, site: str) -> None:
        """Lift a partial DoS."""
        if self.network is None:
            raise RuntimeError("attack controller has no network reference")
        self.network.restore_site(site)
        self._record("restore", site)

    def cut_link(self, site_a: str, site_b: str) -> None:
        self.overlay.cut_link(site_a, site_b)
        self._record("cut_link", f"{site_a}|{site_b}")

    def restore_link(self, site_a: str, site_b: str) -> None:
        self.overlay.restore_link(site_a, site_b)
        self._record("restore_link", f"{site_a}|{site_b}")

    # -- declarative schedule -------------------------------------------------------

    def install_schedule(self, events: Iterable[AttackEvent]) -> None:
        """Schedule a scripted attack timeline on the kernel."""
        for event in events:
            self.kernel.call_at(event.time, self._execute, event)

    def _execute(self, event: AttackEvent) -> None:
        if event.action == "isolate":
            self.isolate_site(event.target)
        elif event.action == "reconnect":
            self.reconnect_site(event.target)
        elif event.action == "cut_link":
            site_a, site_b = event.target.split("|")
            self.cut_link(site_a, site_b)
        elif event.action == "restore_link":
            site_a, site_b = event.target.split("|")
            self.restore_link(site_a, site_b)
        elif event.action == "degrade":
            self.degrade_site(event.target)
        elif event.action == "restore":
            self.restore_site(event.target)

    def _record(self, action: str, target: str) -> None:
        event = AttackEvent(time=self.kernel.now, action=action, target=target)
        self.log.append(event)
        if self.tracer:
            self.tracer.record("attack", "adversary", action=action, target=target)
