"""Message transport: latency, bandwidth, queueing, jitter, drops.

This is the runtime counterpart of :mod:`repro.net.topology` (static
geography) and :mod:`repro.net.overlay` (routing/health). It delivers
payload objects between named hosts with:

- propagation delay from the overlay route (LAN latency inside a site),
- serialization delay and FIFO queueing on a per-directed-site-pair pipe,
  which is what makes post-reconnection state-transfer bursts congest the
  network and produce the 200-450 ms latency spikes of Figure 2,
- bounded random jitter (Prime assumes bounded latency variance; the
  default jitter respects that),
- silent drops when the overlay has no route (isolated site) or the
  destination host is down.

Payloads are ordinary Python objects; if a payload defines ``wire_size()``
it is used for serialization cost, otherwise a default size applies.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.cache import BoundedLru, FrameCache
from repro.errors import ConfigurationError
from repro.net.overlay import Overlay
from repro.net.topology import Topology
from repro.obs.registry import MetricsRegistry, NULL_METRICS
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

Handler = Callable[[str, Any], None]

DEFAULT_MESSAGE_SIZE = 256          # bytes, when payload declares nothing
# Instrument-handle maps are keyed by message type name (plus drop
# reason); the live set is small, the bound only guards FaultLab sweeps
# that register many dynamic types.
_INSTRUMENT_CAPACITY = 256
DEFAULT_WAN_BANDWIDTH = 100e6 / 8   # 100 Mbit/s in bytes/second
DEFAULT_LAN_BANDWIDTH = 1e9 / 8     # 1 Gbit/s in bytes/second


class Network:
    """Delivers messages between registered hosts over the overlay."""

    def __init__(
        self,
        kernel: Kernel,
        topology: Topology,
        overlay: Overlay,
        rng: RngRegistry,
        tracer: Optional[Tracer] = None,
        wan_bandwidth: float = DEFAULT_WAN_BANDWIDTH,
        lan_bandwidth: float = DEFAULT_LAN_BANDWIDTH,
        jitter_fraction: float = 0.05,
        wan_loss_probability: float = 0.0,
        metrics: Optional[MetricsRegistry] = None,
        frame_cache_enabled: bool = True,
        frame_cache_capacity: int = 1024,
    ):
        self.kernel = kernel
        self.topology = topology
        self.overlay = overlay
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        # Per-message-type instrument handles, cached so the hot send path
        # pays one dict lookup instead of a registry lookup per message.
        # Bounded: the registry owns the counts; eviction only drops a
        # handle, which is re-fetched on the next use.
        self._send_instruments: BoundedLru = BoundedLru(_INSTRUMENT_CAPACITY)
        self._recv_instruments: BoundedLru = BoundedLru(_INSTRUMENT_CAPACITY)
        self._drop_counters: BoundedLru = BoundedLru(_INSTRUMENT_CAPACITY)
        # Identity-keyed wire_size memo: a broadcast fan-out (or a
        # retransmit of the same stored message object) computes the size
        # estimate once instead of once per destination. Sizes are a pure
        # function of the message, so traces are unchanged.
        self.frame_cache_enabled = frame_cache_enabled
        self._frame_cache = FrameCache(
            frame_cache_capacity,
            hit_counter=self.metrics.counter("net.frame_cache_hit"),
            miss_counter=self.metrics.counter("net.frame_cache_miss"),
        )
        self._rng = rng.stream("net.jitter")
        self._handlers: Dict[str, Handler] = {}
        self._down_hosts: Dict[str, bool] = {}
        self._pipe_free_at: Dict[Tuple[str, str], float] = {}
        self._wan_bandwidth = wan_bandwidth
        self._lan_bandwidth = lan_bandwidth
        self._jitter_fraction = jitter_fraction
        # Random per-message loss on inter-site links. The intrusion-
        # tolerant overlay absorbs most real loss via rerouting; residual
        # loss exercises the protocols' retransmission paths.
        self.wan_loss_probability = wan_loss_probability
        self._loss_rng = rng.stream("net.loss")
        # Partial-DoS state: per-site degradation (bandwidth divisor,
        # added one-way latency, extra loss probability). A weaker attack
        # than full isolation: traffic still flows, but slowly.
        self._degraded_sites: Dict[str, Tuple[float, float, float]] = {}
        # Clock-skew model: every delivery *into* a skewed site arrives
        # this many seconds late, as if the site's receive timestamps ran
        # behind. Prime assumes bounded latency variance; FaultLab uses
        # skew windows to probe that assumption.
        self._site_skew: Dict[str, float] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_sent = 0
        # Optional delivery inspector (the confidentiality auditor hooks
        # here): called as inspector(dst_host, payload) on every delivery.
        self.inspector: Optional[Callable[[str, Any], None]] = None

    # -- membership -------------------------------------------------------------

    def register(self, host: str, handler: Handler) -> None:
        """Attach the receive handler for ``host`` (must be in the topology)."""
        if not self.topology.has_host(host):
            raise ConfigurationError(f"host {host!r} is not in the topology")
        self._handlers[host] = handler

    def set_host_down(self, host: str, down: bool) -> None:
        """Mark a host crashed/recovering; messages to it are dropped."""
        self._down_hosts[host] = down

    def degrade_site(
        self,
        site: str,
        bandwidth_divisor: float = 10.0,
        added_latency: float = 0.020,
        loss_probability: float = 0.02,
    ) -> None:
        """Apply a partial DoS to every WAN flow touching ``site``."""
        self._degraded_sites[site] = (bandwidth_divisor, added_latency, loss_probability)

    def restore_site(self, site: str) -> None:
        """Lift a partial DoS installed by :meth:`degrade_site`."""
        self._degraded_sites.pop(site, None)

    def site_is_degraded(self, site: str) -> bool:
        return site in self._degraded_sites

    def set_delivery_skew(self, site: str, skew: float) -> None:
        """Delay every delivery into ``site`` by ``skew`` seconds."""
        if skew < 0:
            raise ConfigurationError(f"negative skew {skew!r}")
        self._site_skew[site] = skew
        if self.tracer:
            self.tracer.record("net.skew", site, skew=skew)

    def clear_delivery_skew(self, site: str) -> None:
        """Lift a delivery skew installed by :meth:`set_delivery_skew`."""
        self._site_skew.pop(site, None)
        if self.tracer:
            self.tracer.record("net.skew", site, skew=0.0)

    def delivery_skew(self, site: str) -> float:
        return self._site_skew.get(site, 0.0)

    def set_wan_loss(self, probability: float) -> None:
        """Set the residual WAN loss probability (message-loss windows)."""
        self.wan_loss_probability = probability
        if self.tracer:
            self.tracer.record("net.loss-window", "network", probability=probability)

    def host_is_down(self, host: str) -> bool:
        return self._down_hosts.get(host, False)

    # -- metrics helpers -------------------------------------------------------------

    def _count_send(self, type_name: str, size: int) -> None:
        pair = self._send_instruments.get(type_name, None)
        if pair is None:
            pair = (
                self.metrics.counter("net.send", type=type_name),
                self.metrics.counter("net.send_bytes", type=type_name),
            )
            self._send_instruments.put(type_name, pair)
        pair[0].inc()
        pair[1].inc(size)

    def _count_recv(self, type_name: str, size: int) -> None:
        pair = self._recv_instruments.get(type_name, None)
        if pair is None:
            pair = (
                self.metrics.counter("net.recv", type=type_name),
                self.metrics.counter("net.recv_bytes", type=type_name),
            )
            self._recv_instruments.put(type_name, pair)
        pair[0].inc()
        pair[1].inc(size)

    def _count_drop(self, type_name: str, reason: str) -> None:
        key = (type_name, reason)
        counter = self._drop_counters.get(key, None)
        if counter is None:
            counter = self.metrics.counter("net.drop", type=type_name, reason=reason)
            self._drop_counters.put(key, counter)
        counter.inc()

    def _cached_size(self, payload: Any) -> int:
        """``_payload_size`` memoized on payload identity (when enabled)."""
        if not self.frame_cache_enabled:
            return _payload_size(payload)
        return self._frame_cache.get_or_build(payload, _payload_size)

    # -- sending ------------------------------------------------------------------

    def send(self, src: str, dst: str, payload: Any, size: Optional[int] = None) -> bool:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (delivery may still
        be dropped if the destination goes down in flight); False if there
        was no route, so the caller can observe partitions if it wants to.
        Protocol code generally ignores the return value: BFT protocols
        must tolerate silent loss anyway.
        """
        self.messages_sent += 1
        size = size if size is not None else self._cached_size(payload)
        self.bytes_sent += size
        type_name = type(payload).__name__
        self._count_send(type_name, size)
        src_site = self.topology.site_of(src).name
        dst_site = self.topology.site_of(dst).name

        if src_site == dst_site:
            if self.overlay.is_isolated(src_site):
                # Intra-site traffic still flows during an external DoS: the
                # attack saturates the site's uplinks, not its LAN.
                pass
            latency = self.topology.lan_latency
            bandwidth = self._lan_bandwidth
        else:
            route = self.overlay.path_latency(src_site, dst_site)
            if route is None:
                self.messages_dropped += 1
                self._count_drop(type_name, "no-route")
                if self.tracer:
                    self.tracer.record(
                        "net.drop", src, dst=dst, reason="no-route", size=size
                    )
                return False
            latency = route
            bandwidth = self._wan_bandwidth
            loss = self.wan_loss_probability
            for site in (src_site, dst_site):
                degradation = self._degraded_sites.get(site)
                if degradation is not None:
                    divisor, extra_latency, extra_loss = degradation
                    bandwidth = bandwidth / divisor
                    latency += extra_latency
                    loss += extra_loss
            if loss > 0.0 and self._loss_rng.random() < loss:
                self.messages_dropped += 1
                self._count_drop(type_name, "loss")
                if self.tracer:
                    self.tracer.record(
                        "net.drop", src, dst=dst, reason="loss", size=size
                    )
                return False

        tx_time = size / bandwidth
        pipe = (src_site, dst_site)
        now = self.kernel.now
        start = max(now, self._pipe_free_at.get(pipe, 0.0))
        self._pipe_free_at[pipe] = start + tx_time
        jitter = self._rng.uniform(0, self._jitter_fraction * latency)
        arrival = start + tx_time + latency + jitter + self._site_skew.get(dst_site, 0.0)
        self.kernel.call_at(arrival, self._deliver, src, dst, payload, size)
        return True

    def multicast(self, src: str, dsts, payload: Any, size: Optional[int] = None) -> None:
        """Send the same payload to every host in ``dsts`` (excluding src).

        The payload's size estimate is computed once for the whole fan-out
        (it is a pure function of the immutable message, so per-destination
        behavior is byte-identical to computing it per send).
        """
        if size is None and self.frame_cache_enabled:
            size = self._cached_size(payload)
        for dst in dsts:
            if dst != src:
                self.send(src, dst, payload, size=size)

    # -- delivery -------------------------------------------------------------------

    def _deliver(self, src: str, dst: str, payload: Any, size: int) -> None:
        if self._down_hosts.get(dst, False):
            self.messages_dropped += 1
            self._count_drop(type(payload).__name__, "host-down")
            if self.tracer:
                self.tracer.record("net.drop", src, dst=dst, reason="host-down", size=size)
            return
        # Re-check reachability at arrival time: a partition that started
        # while the message was in flight kills it (DoS saturates the last
        # hop too).
        src_site = self.topology.site_of(src).name
        dst_site = self.topology.site_of(dst).name
        if src_site != dst_site and self.overlay.path_latency(src_site, dst_site) is None:
            self.messages_dropped += 1
            self._count_drop(type(payload).__name__, "partitioned")
            if self.tracer:
                self.tracer.record("net.drop", src, dst=dst, reason="partitioned", size=size)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.messages_dropped += 1
            self._count_drop(type(payload).__name__, "no-handler")
            return
        self.messages_delivered += 1
        self._count_recv(type(payload).__name__, size)
        if self.inspector is not None:
            self.inspector(dst, payload)
        handler(src, payload)


#: Payload types that hit the DEFAULT_MESSAGE_SIZE fallback, with a count of
#: how often. A message type in here is lying about its bandwidth footprint;
#: tests assert the map stays empty after an integration run.
FALLBACK_SIZES: Dict[str, int] = {}


def _payload_size(payload: Any) -> int:
    wire_size = getattr(payload, "wire_size", None)
    if callable(wire_size):
        return int(wire_size())
    name = type(payload).__name__
    FALLBACK_SIZES[name] = FALLBACK_SIZES.get(name, 0) + 1
    return DEFAULT_MESSAGE_SIZE
