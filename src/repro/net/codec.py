"""Binary wire codec for every protocol message.

The simulation passes Python objects between hosts for speed, but a
deployable system needs a wire format; this module defines one and the
test suite proves it round-trips every message type. It also lets tools
measure *exact* message sizes (``encoded_size``) where the protocol
layer's ``wire_size()`` methods give fast estimates.

Format: one tag byte selecting the message type, then the type's fields
in order. Primitives:

- unsigned integers: LEB128 varints,
- byte strings: varint length + raw bytes,
- strings: UTF-8 via the byte-string encoding,
- maps/sequences: varint count + elements (maps sorted by key, so
  encoding is canonical and encode(decode(x)) == x),
- nested messages: recursively tagged, so heterogeneous payloads
  (an ordered batch holds encrypted updates next to key proposals)
  decode without out-of-band type information.

``Sensitive`` wrappers survive the trip: tag-prefixed inside blob fields,
so a decoded Spire-baseline checkpoint is still recognizably plaintext to
the confidentiality auditor.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple, Type

from repro.cache import FrameCache
from repro.core.confidentiality import Sensitive
from repro.core.messages import (
    BatchProposal,
    BatchRecord,
    BatchShare,
    CertifiedResponse,
    CheckpointDeltaMsg,
    CheckpointMsg,
    ClientResponse,
    ClientUpdate,
    EncryptedUpdate,
    IntroShare,
    KeyProposal,
    ResponseBatchShare,
    ResponseShare,
    ResumePoint,
    SignedUpdateBatch,
    StateXferResponse,
    StateXferSolicit,
    XferRequest,
)
from repro.crypto.merkle import MerkleProof
from repro.crypto.threshold import PartialSignature, ShareProof
from repro.errors import ProtocolError
from repro.shard.messages import (
    CrossShardCommit,
    CrossShardIntent,
    CrossShardPrepare,
    ShardMapAnnounce,
)
from repro.prime.messages import (
    BatchFetch,
    BatchFetchReply,
    Commit,
    Heartbeat,
    NewView,
    OpaqueUpdate,
    PoAck,
    PoAru,
    PoFetch,
    PoFetchReply,
    PoRequest,
    PreparedCert,
    PrePrepare,
    Prepare,
    Suspect,
    VcState,
)

# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


def write_varint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ProtocolError(f"cannot encode negative varint {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, offset: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise ProtocolError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise ProtocolError("varint too long")


def write_bytes(out: bytearray, value: bytes) -> None:
    write_varint(out, len(value))
    out.extend(value)


def read_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    length, offset = read_varint(data, offset)
    if offset + length > len(data):
        raise ProtocolError("truncated byte string")
    return bytes(data[offset : offset + length]), offset + length


def write_str(out: bytearray, value: str) -> None:
    write_bytes(out, value.encode("utf-8"))


def read_str(data: bytes, offset: int) -> Tuple[str, int]:
    raw, offset = read_bytes(data, offset)
    return raw.decode("utf-8"), offset


def write_int_map(out: bytearray, mapping) -> None:
    items = sorted(mapping.items())
    write_varint(out, len(items))
    for key, value in items:
        write_str(out, key)
        write_varint(out, value)


def read_int_map(data: bytes, offset: int) -> Tuple[Dict[str, int], int]:
    count, offset = read_varint(data, offset)
    mapping: Dict[str, int] = {}
    for _ in range(count):
        key, offset = read_str(data, offset)
        value, offset = read_varint(data, offset)
        mapping[key] = value
    return mapping, offset


def _write_blob(out: bytearray, blob) -> None:
    """A blob is ciphertext bytes (0) or Sensitive plaintext (1)."""
    if isinstance(blob, Sensitive):
        out.append(1)
        write_str(out, blob.label)
        write_bytes(out, blob.data)
    else:
        out.append(0)
        write_bytes(out, blob)


def _read_blob(data: bytes, offset: int):
    kind = data[offset]
    offset += 1
    if kind == 1:
        label, offset = read_str(data, offset)
        raw, offset = read_bytes(data, offset)
        return Sensitive(raw, label=label), offset
    raw, offset = read_bytes(data, offset)
    return raw, offset


def _write_bigint(out: bytearray, value: int) -> None:
    write_bytes(out, value.to_bytes((value.bit_length() + 7) // 8 or 1, "big"))


def _read_bigint(data: bytes, offset: int) -> Tuple[int, int]:
    raw, offset = read_bytes(data, offset)
    return int.from_bytes(raw, "big"), offset


def _write_partial(out: bytearray, partial: PartialSignature) -> None:
    write_varint(out, partial.signer)
    _write_bigint(out, partial.value)
    if partial.proof is not None:
        out.append(1)
        _write_bigint(out, partial.proof.challenge)
        _write_bigint(out, partial.proof.response)
    else:
        out.append(0)


def _read_partial(data: bytes, offset: int) -> Tuple[PartialSignature, int]:
    signer, offset = read_varint(data, offset)
    value, offset = _read_bigint(data, offset)
    has_proof = data[offset]
    offset += 1
    proof = None
    if has_proof:
        challenge, offset = _read_bigint(data, offset)
        response, offset = _read_bigint(data, offset)
        proof = ShareProof(challenge=challenge, response=response)
    return PartialSignature(signer=signer, value=value, proof=proof), offset


def _write_resume(out: bytearray, resume: ResumePoint) -> None:
    write_varint(out, resume.batch_seq)
    write_varint(out, resume.ordinal)
    write_int_map(out, dict(resume.ordered_through))


def _read_resume(data: bytes, offset: int) -> Tuple[ResumePoint, int]:
    batch_seq, offset = read_varint(data, offset)
    ordinal, offset = read_varint(data, offset)
    ordered, offset = read_int_map(data, offset)
    return (
        ResumePoint(
            batch_seq=batch_seq,
            ordinal=ordinal,
            ordered_through=tuple(sorted(ordered.items())),
        ),
        offset,
    )


# ---------------------------------------------------------------------------
# per-type encoders/decoders
# ---------------------------------------------------------------------------

_ENCODERS: Dict[Type, Tuple[int, Callable]] = {}
_DECODERS: Dict[int, Callable] = {}


def _register(tag: int, message_type: Type):
    def wrap(pair):
        encode, decode = pair
        _ENCODERS[message_type] = (tag, encode)
        _DECODERS[tag] = decode
        return pair

    return wrap


def encode_message(message: Any) -> bytes:
    """Serialize any protocol message to bytes."""
    entry = _ENCODERS.get(type(message))
    if entry is None:
        raise ProtocolError(f"no codec for {type(message).__name__}")
    tag, encode = entry
    out = bytearray([tag])
    encode(out, message)
    return bytes(out)


def decode_message(data: bytes, offset: int = 0) -> Tuple[Any, int]:
    """Deserialize one message; returns (message, next_offset)."""
    if offset >= len(data):
        raise ProtocolError("empty buffer")
    decode = _DECODERS.get(data[offset])
    if decode is None:
        raise ProtocolError(f"unknown message tag {data[offset]}")
    return decode(data, offset + 1)


# Identity-keyed memo for encode_message. Messages are frozen
# dataclasses, so a given object's encoding never changes; broadcast
# fan-outs, nested re-encodes (OpaqueUpdate / BatchRecord / state
# transfer), and encoded_size probes reuse the same bytes instead of
# re-serializing. Bounded LRU; entries pin the keyed object so ids
# cannot be recycled while an entry lives.
_PAYLOAD_CACHE = FrameCache(capacity=4096)
_payload_cache_enabled = True


def set_payload_cache_enabled(enabled: bool) -> bool:
    """Toggle the module-level payload cache; returns the previous
    setting. Disabling also clears the cache."""
    global _payload_cache_enabled
    previous = _payload_cache_enabled
    _payload_cache_enabled = bool(enabled)
    if not enabled:
        _PAYLOAD_CACHE.clear()
    return previous


def payload_cache_enabled() -> bool:
    return _payload_cache_enabled


def clear_payload_cache() -> None:
    _PAYLOAD_CACHE.clear()


def payload_cache_len() -> int:
    return len(_PAYLOAD_CACHE)


def encode_message_cached(message: Any) -> bytes:
    """``encode_message`` memoized on message object identity."""
    if not _payload_cache_enabled:
        return encode_message(message)
    return _PAYLOAD_CACHE.get_or_build(message, encode_message)


def encoded_size(message: Any) -> int:
    """Exact wire size of a message under this codec."""
    return len(encode_message_cached(message))


# -- Prime engine messages ----------------------------------------------------

_register(1, PoRequest)(
    (
        lambda out, m: (
            write_str(out, m.origin),
            write_varint(out, m.seq),
            _encode_opaque(out, m.update),
        ),
        lambda data, o: _decode_po_request(data, o),
    )
)


def _encode_opaque(out: bytearray, update: OpaqueUpdate) -> None:
    write_bytes(out, update.digest)
    write_varint(out, update.size)
    nested = update.encoded
    if nested is None:
        nested = encode_message_cached(update.payload)
    write_bytes(out, nested)


def _decode_opaque(data: bytes, offset: int) -> Tuple[OpaqueUpdate, int]:
    digest, offset = read_bytes(data, offset)
    size, offset = read_varint(data, offset)
    nested, offset = read_bytes(data, offset)
    payload, _ = decode_message(nested)
    return (
        OpaqueUpdate(digest=digest, payload=payload, size=size, encoded=nested),
        offset,
    )


def _decode_po_request(data: bytes, offset: int) -> Tuple[PoRequest, int]:
    origin, offset = read_str(data, offset)
    seq, offset = read_varint(data, offset)
    update, offset = _decode_opaque(data, offset)
    return PoRequest(origin=origin, seq=seq, update=update), offset


_register(2, PoAck)(
    (
        lambda out, m: (
            write_str(out, m.origin),
            write_varint(out, m.seq),
            write_bytes(out, m.digest),
        ),
        lambda data, o: _decode_po_ack(data, o),
    )
)


def _decode_po_ack(data, offset):
    origin, offset = read_str(data, offset)
    seq, offset = read_varint(data, offset)
    digest, offset = read_bytes(data, offset)
    return PoAck(origin=origin, seq=seq, digest=digest), offset


_register(3, PoAru)(
    (
        lambda out, m: write_int_map(out, dict(m.vector)),
        lambda data, o: _decode_po_aru(data, o),
    )
)


def _decode_po_aru(data, offset):
    vector, offset = read_int_map(data, offset)
    return PoAru(vector=vector), offset


_register(4, PrePrepare)(
    (
        lambda out, m: (
            write_varint(out, m.view),
            write_varint(out, m.seq),
            write_int_map(out, dict(m.cutoffs)),
        ),
        lambda data, o: _decode_pre_prepare(data, o),
    )
)


def _decode_pre_prepare(data, offset):
    view, offset = read_varint(data, offset)
    seq, offset = read_varint(data, offset)
    cutoffs, offset = read_int_map(data, offset)
    return PrePrepare(view=view, seq=seq, cutoffs=cutoffs), offset


def _vote_codec(message_type):
    def encode(out, m):
        write_varint(out, m.view)
        write_varint(out, m.seq)
        write_bytes(out, m.content_digest)

    def decode(data, offset):
        view, offset = read_varint(data, offset)
        seq, offset = read_varint(data, offset)
        digest, offset = read_bytes(data, offset)
        return message_type(view=view, seq=seq, content_digest=digest), offset

    return encode, decode


_register(5, Prepare)(_vote_codec(Prepare))
_register(6, Commit)(_vote_codec(Commit))

_register(7, Heartbeat)(
    (
        lambda out, m: write_varint(out, m.view),
        lambda data, o: (lambda v, o2: (Heartbeat(view=v), o2))(*read_varint(data, o)),
    )
)

_register(8, Suspect)(
    (
        lambda out, m: write_varint(out, m.target_view),
        lambda data, o: (lambda v, o2: (Suspect(target_view=v), o2))(*read_varint(data, o)),
    )
)


def _write_cert(out: bytearray, cert: PreparedCert) -> None:
    write_varint(out, cert.view)
    write_varint(out, cert.seq)
    write_int_map(out, dict(cert.cutoffs))


def _read_cert(data, offset):
    view, offset = read_varint(data, offset)
    seq, offset = read_varint(data, offset)
    cutoffs, offset = read_int_map(data, offset)
    return PreparedCert(view=view, seq=seq, cutoffs=cutoffs), offset


def _encode_vc_state(out, m: VcState):
    write_varint(out, m.view)
    write_varint(out, m.last_committed)
    write_varint(out, len(m.prepared))
    for cert in m.prepared:
        _write_cert(out, cert)


def _decode_vc_state(data, offset):
    view, offset = read_varint(data, offset)
    last_committed, offset = read_varint(data, offset)
    count, offset = read_varint(data, offset)
    certs = []
    for _ in range(count):
        cert, offset = _read_cert(data, offset)
        certs.append(cert)
    return VcState(view=view, last_committed=last_committed, prepared=tuple(certs)), offset


_register(9, VcState)((_encode_vc_state, _decode_vc_state))


def _encode_new_view(out, m: NewView):
    write_varint(out, m.view)
    write_varint(out, m.start_seq)
    write_varint(out, len(m.adopted))
    for cert in m.adopted:
        _write_cert(out, cert)


def _decode_new_view(data, offset):
    view, offset = read_varint(data, offset)
    start_seq, offset = read_varint(data, offset)
    count, offset = read_varint(data, offset)
    certs = []
    for _ in range(count):
        cert, offset = _read_cert(data, offset)
        certs.append(cert)
    return NewView(view=view, start_seq=start_seq, adopted=tuple(certs)), offset


_register(10, NewView)((_encode_new_view, _decode_new_view))

_register(11, PoFetch)(
    (
        lambda out, m: (write_str(out, m.origin), write_varint(out, m.seq)),
        lambda data, o: _decode_po_fetch(data, o),
    )
)


def _decode_po_fetch(data, offset):
    origin, offset = read_str(data, offset)
    seq, offset = read_varint(data, offset)
    return PoFetch(origin=origin, seq=seq), offset


_register(12, PoFetchReply)(
    (
        lambda out, m: write_bytes(out, encode_message_cached(m.request)),
        lambda data, o: _decode_po_fetch_reply(data, o),
    )
)


def _decode_po_fetch_reply(data, offset):
    nested, offset = read_bytes(data, offset)
    request, _ = decode_message(nested)
    return PoFetchReply(request=request), offset


def _encode_batch_fetch(out, m: BatchFetch):
    write_varint(out, len(m.seqs))
    for seq in m.seqs:
        write_varint(out, seq)


def _decode_batch_fetch(data, offset):
    count, offset = read_varint(data, offset)
    seqs = []
    for _ in range(count):
        seq, offset = read_varint(data, offset)
        seqs.append(seq)
    return BatchFetch(seqs=tuple(seqs)), offset


_register(13, BatchFetch)((_encode_batch_fetch, _decode_batch_fetch))

_register(14, BatchFetchReply)(
    (
        lambda out, m: (
            write_varint(out, m.seq),
            write_int_map(out, dict(m.cutoffs)),
        ),
        lambda data, o: _decode_batch_fetch_reply(data, o),
    )
)


def _decode_batch_fetch_reply(data, offset):
    seq, offset = read_varint(data, offset)
    cutoffs, offset = read_int_map(data, offset)
    return BatchFetchReply(seq=seq, cutoffs=cutoffs), offset


# -- CP-ITM messages ------------------------------------------------------------

def _encode_client_update(out, m: ClientUpdate):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_str(out, m.body.label)
    write_bytes(out, m.body.data)
    write_bytes(out, m.signature)


def _decode_client_update(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    label, offset = read_str(data, offset)
    body, offset = read_bytes(data, offset)
    signature, offset = read_bytes(data, offset)
    return (
        ClientUpdate(
            client_id=client_id,
            client_seq=client_seq,
            body=Sensitive(body, label=label),
            signature=signature,
        ),
        offset,
    )


_register(20, ClientUpdate)((_encode_client_update, _decode_client_update))


def _encode_encrypted_update(out, m: EncryptedUpdate):
    write_str(out, m.alias)
    write_varint(out, m.client_seq)
    write_bytes(out, m.ciphertext)
    write_bytes(out, m.threshold_sig)


def _decode_encrypted_update(data, offset):
    alias, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    ciphertext, offset = read_bytes(data, offset)
    threshold_sig, offset = read_bytes(data, offset)
    return (
        EncryptedUpdate(
            alias=alias,
            client_seq=client_seq,
            ciphertext=ciphertext,
            threshold_sig=threshold_sig,
        ),
        offset,
    )


_register(21, EncryptedUpdate)((_encode_encrypted_update, _decode_encrypted_update))


def _encode_intro_share(out, m: IntroShare):
    write_str(out, m.alias)
    write_varint(out, m.client_seq)
    write_bytes(out, m.update_digest)
    _write_partial(out, m.partial)


def _decode_intro_share(data, offset):
    alias, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    digest, offset = read_bytes(data, offset)
    partial, offset = _read_partial(data, offset)
    return (
        IntroShare(
            alias=alias, client_seq=client_seq, update_digest=digest, partial=partial
        ),
        offset,
    )


_register(22, IntroShare)((_encode_intro_share, _decode_intro_share))


def _encode_response_share(out, m: ResponseShare):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_bytes(out, m.response_digest)
    _write_partial(out, m.partial)


def _decode_response_share(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    digest, offset = read_bytes(data, offset)
    partial, offset = _read_partial(data, offset)
    return (
        ResponseShare(
            client_id=client_id,
            client_seq=client_seq,
            response_digest=digest,
            partial=partial,
        ),
        offset,
    )


_register(23, ResponseShare)((_encode_response_share, _decode_response_share))


def _encode_client_response(out, m: ClientResponse):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_str(out, m.body.label)
    write_bytes(out, m.body.data)
    write_bytes(out, m.threshold_sig)


def _decode_client_response(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    label, offset = read_str(data, offset)
    body, offset = read_bytes(data, offset)
    threshold_sig, offset = read_bytes(data, offset)
    return (
        ClientResponse(
            client_id=client_id,
            client_seq=client_seq,
            body=Sensitive(body, label=label),
            threshold_sig=threshold_sig,
        ),
        offset,
    )


_register(24, ClientResponse)((_encode_client_response, _decode_client_response))


def _encode_key_proposal(out, m: KeyProposal):
    write_str(out, m.alias)
    write_varint(out, m.range_start)
    write_varint(out, m.range_end)
    write_str(out, m.proposer)
    write_bytes(out, m.encrypted_seed)


def _decode_key_proposal(data, offset):
    alias, offset = read_str(data, offset)
    range_start, offset = read_varint(data, offset)
    range_end, offset = read_varint(data, offset)
    proposer, offset = read_str(data, offset)
    seed, offset = read_bytes(data, offset)
    return (
        KeyProposal(
            alias=alias,
            range_start=range_start,
            range_end=range_end,
            proposer=proposer,
            encrypted_seed=seed,
        ),
        offset,
    )


_register(25, KeyProposal)((_encode_key_proposal, _decode_key_proposal))


def _encode_checkpoint(out, m: CheckpointMsg):
    write_varint(out, m.ordinal)
    _write_resume(out, m.resume)
    _write_blob(out, m.blob)
    write_str(out, m.signer)


def _decode_checkpoint(data, offset):
    ordinal, offset = read_varint(data, offset)
    resume, offset = _read_resume(data, offset)
    blob, offset = _read_blob(data, offset)
    signer, offset = read_str(data, offset)
    return CheckpointMsg(ordinal=ordinal, resume=resume, blob=blob, signer=signer), offset


_register(26, CheckpointMsg)((_encode_checkpoint, _decode_checkpoint))

def _encode_solicit(out, m: StateXferSolicit):
    write_str(out, m.requester)
    write_varint(out, m.nonce)
    write_varint(out, m.have_seq)
    write_varint(out, m.have_ordinal)


def _decode_solicit(data, offset):
    requester, offset = read_str(data, offset)
    nonce, offset = read_varint(data, offset)
    have_seq, offset = read_varint(data, offset)
    have_ordinal, offset = read_varint(data, offset)
    return (
        StateXferSolicit(
            requester=requester, nonce=nonce, have_seq=have_seq, have_ordinal=have_ordinal
        ),
        offset,
    )


_register(27, StateXferSolicit)((_encode_solicit, _decode_solicit))


def _encode_xfer_request(out, m: XferRequest):
    write_str(out, m.requester)
    write_varint(out, m.nonce)
    write_varint(out, m.have_seq)
    write_varint(out, m.have_ordinal)


def _decode_xfer_request(data, offset):
    requester, offset = read_str(data, offset)
    nonce, offset = read_varint(data, offset)
    have_seq, offset = read_varint(data, offset)
    have_ordinal, offset = read_varint(data, offset)
    return (
        XferRequest(
            requester=requester, nonce=nonce, have_seq=have_seq, have_ordinal=have_ordinal
        ),
        offset,
    )


_register(28, XferRequest)((_encode_xfer_request, _decode_xfer_request))


def _encode_batch_record(out, m: BatchRecord):
    write_varint(out, m.batch_seq)
    _write_resume(out, m.resume)
    write_varint(out, len(m.entries))
    for ordinal, payload in m.entries:
        write_varint(out, ordinal)
        write_bytes(out, encode_message_cached(payload))


def _decode_batch_record(data, offset):
    batch_seq, offset = read_varint(data, offset)
    resume, offset = _read_resume(data, offset)
    count, offset = read_varint(data, offset)
    entries = []
    for _ in range(count):
        ordinal, offset = read_varint(data, offset)
        nested, offset = read_bytes(data, offset)
        payload, _ = decode_message(nested)
        entries.append((ordinal, payload))
    return BatchRecord(batch_seq=batch_seq, resume=resume, entries=tuple(entries)), offset


_register(29, BatchRecord)((_encode_batch_record, _decode_batch_record))


def _encode_xfer_response(out, m: StateXferResponse):
    write_str(out, m.requester)
    write_varint(out, m.nonce)
    out.append(1 if m.checkpoint is not None else 0)
    if m.checkpoint is not None:
        write_bytes(out, encode_message_cached(m.checkpoint))
    write_varint(out, len(m.batches))
    for record in m.batches:
        write_bytes(out, encode_message_cached(record))
    write_varint(out, m.view)
    write_str(out, m.responder)
    write_varint(out, m.part_index)
    write_varint(out, m.part_count)
    write_varint(out, len(m.deltas))
    for delta in m.deltas:
        write_bytes(out, encode_message_cached(delta))


def _decode_xfer_response(data, offset):
    requester, offset = read_str(data, offset)
    nonce, offset = read_varint(data, offset)
    has_checkpoint = data[offset]
    offset += 1
    checkpoint = None
    if has_checkpoint:
        nested, offset = read_bytes(data, offset)
        checkpoint, _ = decode_message(nested)
    count, offset = read_varint(data, offset)
    batches = []
    for _ in range(count):
        nested, offset = read_bytes(data, offset)
        record, _ = decode_message(nested)
        batches.append(record)
    view, offset = read_varint(data, offset)
    responder, offset = read_str(data, offset)
    part_index, offset = read_varint(data, offset)
    part_count, offset = read_varint(data, offset)
    delta_count, offset = read_varint(data, offset)
    deltas = []
    for _ in range(delta_count):
        nested, offset = read_bytes(data, offset)
        delta, _ = decode_message(nested)
        deltas.append(delta)
    return (
        StateXferResponse(
            requester=requester,
            nonce=nonce,
            checkpoint=checkpoint,
            batches=tuple(batches),
            view=view,
            responder=responder,
            part_index=part_index,
            part_count=part_count,
            deltas=tuple(deltas),
        ),
        offset,
    )


_register(30, StateXferResponse)((_encode_xfer_response, _decode_xfer_response))


def _encode_checkpoint_delta(out, m: CheckpointDeltaMsg):
    write_varint(out, m.ordinal)
    write_varint(out, m.base_ordinal)
    write_varint(out, m.full_ordinal)
    _write_resume(out, m.resume)
    _write_blob(out, m.blob)
    write_str(out, m.signer)


def _decode_checkpoint_delta(data, offset):
    ordinal, offset = read_varint(data, offset)
    base_ordinal, offset = read_varint(data, offset)
    full_ordinal, offset = read_varint(data, offset)
    resume, offset = _read_resume(data, offset)
    blob, offset = _read_blob(data, offset)
    signer, offset = read_str(data, offset)
    return (
        CheckpointDeltaMsg(
            ordinal=ordinal,
            base_ordinal=base_ordinal,
            full_ordinal=full_ordinal,
            resume=resume,
            blob=blob,
            signer=signer,
        ),
        offset,
    )


_register(40, CheckpointDeltaMsg)((_encode_checkpoint_delta, _decode_checkpoint_delta))


# -- BatchLab messages ---------------------------------------------------------


def _write_proof(out: bytearray, proof: MerkleProof) -> None:
    write_varint(out, proof.leaf_index)
    write_varint(out, len(proof.path))
    for sibling, sibling_is_right in proof.path:
        write_bytes(out, sibling)
        out.append(1 if sibling_is_right else 0)


def _read_proof(data: bytes, offset: int) -> Tuple[MerkleProof, int]:
    leaf_index, offset = read_varint(data, offset)
    count, offset = read_varint(data, offset)
    path = []
    for _ in range(count):
        sibling, offset = read_bytes(data, offset)
        sibling_is_right = bool(data[offset])
        offset += 1
        path.append((sibling, sibling_is_right))
    return MerkleProof(leaf_index=leaf_index, path=tuple(path)), offset


def _encode_batch_proposal(out, m: BatchProposal):
    write_str(out, m.proposer)
    write_varint(out, m.batch_no)
    write_varint(out, len(m.items))
    for item in m.items:
        write_bytes(out, encode_message_cached(item))


def _decode_batch_proposal(data, offset):
    proposer, offset = read_str(data, offset)
    batch_no, offset = read_varint(data, offset)
    count, offset = read_varint(data, offset)
    items = []
    for _ in range(count):
        nested, offset = read_bytes(data, offset)
        item, _ = decode_message(nested)
        items.append(item)
    return (
        BatchProposal(proposer=proposer, batch_no=batch_no, items=tuple(items)),
        offset,
    )


_register(31, BatchProposal)((_encode_batch_proposal, _decode_batch_proposal))


def _encode_batch_share(out, m: BatchShare):
    write_str(out, m.proposer)
    write_varint(out, m.batch_no)
    write_bytes(out, m.root)
    write_varint(out, m.count)
    _write_partial(out, m.partial)


def _decode_batch_share(data, offset):
    proposer, offset = read_str(data, offset)
    batch_no, offset = read_varint(data, offset)
    root, offset = read_bytes(data, offset)
    count, offset = read_varint(data, offset)
    partial, offset = _read_partial(data, offset)
    return (
        BatchShare(
            proposer=proposer, batch_no=batch_no, root=root, count=count, partial=partial
        ),
        offset,
    )


_register(32, BatchShare)((_encode_batch_share, _decode_batch_share))


def _encode_signed_batch(out, m: SignedUpdateBatch):
    write_bytes(out, m.root)
    write_varint(out, len(m.items))
    for item in m.items:
        write_bytes(out, encode_message_cached(item))
    write_bytes(out, m.threshold_sig)


def _decode_signed_batch(data, offset):
    root, offset = read_bytes(data, offset)
    count, offset = read_varint(data, offset)
    items = []
    for _ in range(count):
        nested, offset = read_bytes(data, offset)
        item, _ = decode_message(nested)
        items.append(item)
    threshold_sig, offset = read_bytes(data, offset)
    return (
        SignedUpdateBatch(root=root, items=tuple(items), threshold_sig=threshold_sig),
        offset,
    )


_register(33, SignedUpdateBatch)((_encode_signed_batch, _decode_signed_batch))


def _encode_response_batch_share(out, m: ResponseBatchShare):
    write_bytes(out, m.root)
    write_varint(out, m.count)
    _write_partial(out, m.partial)


def _decode_response_batch_share(data, offset):
    root, offset = read_bytes(data, offset)
    count, offset = read_varint(data, offset)
    partial, offset = _read_partial(data, offset)
    return ResponseBatchShare(root=root, count=count, partial=partial), offset


_register(34, ResponseBatchShare)(
    (_encode_response_batch_share, _decode_response_batch_share)
)


def _encode_certified_response(out, m: CertifiedResponse):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_str(out, m.body.label)
    write_bytes(out, m.body.data)
    write_bytes(out, m.batch_root)
    write_varint(out, m.batch_count)
    write_bytes(out, m.batch_sig)
    _write_proof(out, m.proof)


def _decode_certified_response(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    label, offset = read_str(data, offset)
    body, offset = read_bytes(data, offset)
    batch_root, offset = read_bytes(data, offset)
    batch_count, offset = read_varint(data, offset)
    batch_sig, offset = read_bytes(data, offset)
    proof, offset = _read_proof(data, offset)
    return (
        CertifiedResponse(
            client_id=client_id,
            client_seq=client_seq,
            body=Sensitive(body, label=label),
            batch_root=batch_root,
            batch_count=batch_count,
            batch_sig=batch_sig,
            proof=proof,
        ),
        offset,
    )


_register(35, CertifiedResponse)(
    (_encode_certified_response, _decode_certified_response)
)


# ---------------------------------------------------------------------------
# ShardLab (tags 36-39)
# ---------------------------------------------------------------------------


def _encode_shard_map_announce(out, m: ShardMapAnnounce):
    write_varint(out, m.seed)
    write_varint(out, m.shards)
    write_varint(out, m.version)


def _decode_shard_map_announce(data, offset):
    seed, offset = read_varint(data, offset)
    shards, offset = read_varint(data, offset)
    version, offset = read_varint(data, offset)
    return ShardMapAnnounce(seed=seed, shards=shards, version=version), offset


_register(36, ShardMapAnnounce)(
    (_encode_shard_map_announce, _decode_shard_map_announce)
)


def _encode_xshard_intent(out, m: CrossShardIntent):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_varint(out, m.home_shard)
    write_varint(out, len(m.targets))
    for target in m.targets:
        write_varint(out, target)
    _write_blob(out, m.body)


def _decode_xshard_intent(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    home_shard, offset = read_varint(data, offset)
    count, offset = read_varint(data, offset)
    targets = []
    for _ in range(count):
        target, offset = read_varint(data, offset)
        targets.append(target)
    body, offset = _read_blob(data, offset)
    return (
        CrossShardIntent(
            client_id=client_id,
            client_seq=client_seq,
            home_shard=home_shard,
            targets=tuple(targets),
            body=body,
        ),
        offset,
    )


_register(37, CrossShardIntent)((_encode_xshard_intent, _decode_xshard_intent))


def _encode_xshard_prepare(out, m: CrossShardPrepare):
    write_str(out, m.client_id)
    write_varint(out, m.client_seq)
    write_varint(out, m.home_shard)
    write_bytes(out, m.intent_digest)
    write_varint(out, m.cert_kind)
    write_bytes(out, m.cert_sig)
    write_bytes(out, m.batch_root)
    write_varint(out, m.batch_count)
    if m.proof is not None:
        out.append(1)
        _write_proof(out, m.proof)
    else:
        out.append(0)


def _decode_xshard_prepare(data, offset):
    client_id, offset = read_str(data, offset)
    client_seq, offset = read_varint(data, offset)
    home_shard, offset = read_varint(data, offset)
    intent_digest, offset = read_bytes(data, offset)
    cert_kind, offset = read_varint(data, offset)
    cert_sig, offset = read_bytes(data, offset)
    batch_root, offset = read_bytes(data, offset)
    batch_count, offset = read_varint(data, offset)
    has_proof = data[offset]
    offset += 1
    proof = None
    if has_proof:
        proof, offset = _read_proof(data, offset)
    return (
        CrossShardPrepare(
            client_id=client_id,
            client_seq=client_seq,
            home_shard=home_shard,
            intent_digest=intent_digest,
            cert_kind=cert_kind,
            cert_sig=cert_sig,
            batch_root=batch_root,
            batch_count=batch_count,
            proof=proof,
        ),
        offset,
    )


_register(38, CrossShardPrepare)((_encode_xshard_prepare, _decode_xshard_prepare))


def _encode_xshard_commit(out, m: CrossShardCommit):
    _encode_xshard_intent(out, m.intent)
    _encode_xshard_prepare(out, m.prepare)


def _decode_xshard_commit(data, offset):
    intent, offset = _decode_xshard_intent(data, offset)
    prepare, offset = _decode_xshard_prepare(data, offset)
    return CrossShardCommit(intent=intent, prepare=prepare), offset


_register(39, CrossShardCommit)((_encode_xshard_commit, _decode_xshard_commit))


def registered_types() -> List[Type]:
    """All message types this codec can carry (for coverage tests)."""
    return sorted(_ENCODERS, key=lambda t: t.__name__)
