"""Offline inspection of a FileStore directory (``repro store ...``).

Pure readers: nothing here mutates the store, so they are safe to run
against a live node's directory (the worst case is observing a frame
mid-append, which reports as a torn tail).
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.messages import BatchRecord
from repro.net.codec import decode_message
from repro.store.filestore import (
    SEGMENT_MAGIC,
    _FRAME_HEADER,
    _checkpoint_files,
    _verify_checkpoint_bytes,
)


def scan_segment(path: Path, is_last: bool) -> Dict:
    """Parse one segment file into a report dict.

    ``status`` is ``ok``, ``empty``, ``torn`` (partial final frame — only
    benign in the newest segment), or ``corrupt`` (CRC/decode/magic
    failure; the scan stops there).
    """
    data = Path(path).read_bytes()
    report: Dict = {
        "file": Path(path).name,
        "size": len(data),
        "records": 0,
        "min_seq": None,
        "max_seq": None,
        "status": "ok",
        "detail": "",
    }
    if len(data) < len(SEGMENT_MAGIC):
        report["status"] = "torn" if is_last else "corrupt"
        report["detail"] = "missing segment header"
        return report
    if not data.startswith(SEGMENT_MAGIC):
        report["status"] = "corrupt"
        report["detail"] = "bad segment magic"
        return report
    if len(data) == len(SEGMENT_MAGIC):
        report["status"] = "empty"
        return report
    offset = len(SEGMENT_MAGIC)
    records: List[Tuple[int, int]] = []
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            report["status"] = "torn" if is_last else "corrupt"
            report["detail"] = f"partial frame header at offset {offset}"
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        end = offset + _FRAME_HEADER.size + length
        if end > len(data):
            report["status"] = "torn" if is_last else "corrupt"
            report["detail"] = f"frame at offset {offset} extends past end of file"
            break
        body = data[offset + _FRAME_HEADER.size : end]
        if zlib.crc32(body) != crc:
            report["status"] = "corrupt"
            report["detail"] = f"CRC mismatch at offset {offset}"
            break
        try:
            record, _ = decode_message(body)
        except Exception:
            record = None
        if not isinstance(record, BatchRecord):
            report["status"] = "corrupt"
            report["detail"] = f"undecodable record at offset {offset}"
            break
        records.append((record.batch_seq, end - offset))
        offset = end
    if records:
        seqs = [seq for seq, _ in records]
        report["records"] = len(records)
        report["min_seq"] = min(seqs)
        report["max_seq"] = max(seqs)
    return report


def inspect_store(root) -> Dict:
    """Full report of a store directory: segments, checkpoints, totals."""
    root = Path(root)
    segment_paths = sorted((root / "segments").glob("seg-*.log"))
    segments = [
        scan_segment(path, is_last=(i == len(segment_paths) - 1))
        for i, path in enumerate(segment_paths)
    ]
    checkpoints = []
    for path, ordinal in sorted(_checkpoint_files(root / "checkpoints"), key=lambda po: po[1]):
        data = path.read_bytes()
        message = _verify_checkpoint_bytes(data)
        entry = {
            "file": path.name,
            "ordinal": ordinal,
            "size": len(data),
            "verified": message is not None,
        }
        if message is not None:
            entry["batch_seq"] = message.resume.batch_seq
            entry["signer"] = message.signer
        checkpoints.append(entry)
    seqs = [s["max_seq"] for s in segments if s["max_seq"] is not None]
    return {
        "root": str(root),
        "segments": segments,
        "checkpoints": checkpoints,
        "total_records": sum(s["records"] for s in segments),
        "max_seq": max(seqs) if seqs else None,
        "corrupt_segments": sum(1 for s in segments if s["status"] == "corrupt"),
        "torn_segments": sum(1 for s in segments if s["status"] == "torn"),
        "corrupt_checkpoints": sum(1 for c in checkpoints if not c["verified"]),
    }


def verify_store(root) -> Tuple[Dict, bool]:
    """(report, ok): ok is False on real corruption. A torn tail in the
    newest segment is a survivable crash artifact, not a failure."""
    report = inspect_store(root)
    ok = report["corrupt_segments"] == 0 and report["corrupt_checkpoints"] == 0
    return report, ok
