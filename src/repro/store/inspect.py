"""Offline inspection of a FileStore directory (``repro store ...``).

Pure readers: nothing here mutates the store, so they are safe to run
against a live node's directory (the worst case is observing a frame
mid-append, which reports as a torn tail).

CompactLab additions: per-segment live/dead record ratios (dead = below
the newest verified checkpoint chain's stable point, or shadowed by a
newer copy of the same ``batch_seq``), the delta-checkpoint chain report
(lineage, per-file verification, contiguity from the anchor), and the
count of leftover compaction artifacts (``.compact.tmp`` / ``.log.old``
files an interrupted swap leaves for open-time repair).
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.messages import BatchRecord
from repro.net.codec import decode_message
from repro.store.filestore import (
    SEGMENT_MAGIC,
    _COMPACT_OLD_SUFFIX,
    _COMPACT_TMP_SUFFIX,
    _FRAME_HEADER,
    _checkpoint_files,
    _delta_files,
    _verify_checkpoint_bytes,
    _verify_delta_bytes,
)


def scan_segment(path: Path, is_last: bool) -> Dict:
    """Parse one segment file into a report dict.

    ``status`` is ``ok``, ``empty``, ``torn`` (partial final frame — only
    benign in the newest segment), or ``corrupt`` (CRC/decode/magic
    failure; the scan stops there). ``seqs`` lists every decoded
    ``batch_seq`` in file order (used for the live/dead tally; dropped
    from the JSON report).
    """
    data = Path(path).read_bytes()
    report: Dict = {
        "file": Path(path).name,
        "size": len(data),
        "records": 0,
        "min_seq": None,
        "max_seq": None,
        "status": "ok",
        "detail": "",
        "seqs": [],
    }
    if len(data) < len(SEGMENT_MAGIC):
        report["status"] = "torn" if is_last else "corrupt"
        report["detail"] = "missing segment header"
        return report
    if not data.startswith(SEGMENT_MAGIC):
        report["status"] = "corrupt"
        report["detail"] = "bad segment magic"
        return report
    if len(data) == len(SEGMENT_MAGIC):
        report["status"] = "empty"
        return report
    offset = len(SEGMENT_MAGIC)
    records: List[Tuple[int, int]] = []
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            report["status"] = "torn" if is_last else "corrupt"
            report["detail"] = f"partial frame header at offset {offset}"
            break
        length, crc = _FRAME_HEADER.unpack_from(data, offset)
        end = offset + _FRAME_HEADER.size + length
        if end > len(data):
            report["status"] = "torn" if is_last else "corrupt"
            report["detail"] = f"frame at offset {offset} extends past end of file"
            break
        body = data[offset + _FRAME_HEADER.size : end]
        if zlib.crc32(body) != crc:
            report["status"] = "corrupt"
            report["detail"] = f"CRC mismatch at offset {offset}"
            break
        try:
            record, _ = decode_message(body)
        except Exception:
            record = None
        if not isinstance(record, BatchRecord):
            report["status"] = "corrupt"
            report["detail"] = f"undecodable record at offset {offset}"
            break
        records.append((record.batch_seq, end - offset))
        offset = end
    if records:
        seqs = [seq for seq, _ in records]
        report["records"] = len(records)
        report["min_seq"] = min(seqs)
        report["max_seq"] = max(seqs)
        report["seqs"] = seqs
    return report


def _tally_liveness(segments: List[Dict], stable_seq: int) -> None:
    """Annotate each segment report with live/dead record counts.

    A record is dead when its ``batch_seq`` is below the stable point or
    when a newer copy of the same ``batch_seq`` exists later on disk
    (post-recovery duplicate). The last copy in scan order wins — the
    same rule the compactor and the loader apply.
    """
    last_owner: Dict[int, Tuple[int, int]] = {}
    for seg_index, segment in enumerate(segments):
        for pos, seq in enumerate(segment["seqs"]):
            last_owner[seq] = (seg_index, pos)
    for seg_index, segment in enumerate(segments):
        live = 0
        for pos, seq in enumerate(segment["seqs"]):
            if seq >= stable_seq and last_owner.get(seq) == (seg_index, pos):
                live += 1
        segment["live_records"] = live
        segment["dead_records"] = segment["records"] - live
        segment["live_ratio"] = (
            round(live / segment["records"], 4) if segment["records"] else 1.0
        )
        del segment["seqs"]


def _delta_report(root: Path, anchor_ordinal: Optional[int]) -> Dict:
    """Verify every delta file and walk the chain anchored at the newest
    verified full snapshot."""
    entries = []
    by_base: Dict[int, Dict] = {}
    corrupt = 0
    for path, ordinal, full_ordinal in _delta_files(root / "checkpoints"):
        data = path.read_bytes()
        message = _verify_delta_bytes(data)
        entry = {
            "file": path.name,
            "ordinal": ordinal,
            "full_ordinal": full_ordinal,
            "size": len(data),
            "verified": message is not None,
        }
        if message is not None:
            entry["base_ordinal"] = message.base_ordinal
            entry["batch_seq"] = message.resume.batch_seq
            entry["signer"] = message.signer
            if message.full_ordinal == anchor_ordinal:
                by_base.setdefault(message.base_ordinal, entry)
        else:
            corrupt += 1
        entries.append(entry)
    chain: List[int] = []
    tip = anchor_ordinal
    if anchor_ordinal is not None:
        while tip in by_base:
            entry = by_base.pop(tip)
            entry["in_chain"] = True
            chain.append(entry["ordinal"])
            tip = entry["ordinal"]
    # Deltas of the anchor lineage that did not link are unusable; deltas
    # of older lineages are stale-but-benign leftovers GC will sweep.
    orphans = sum(
        1
        for entry in entries
        if entry["verified"]
        and entry["full_ordinal"] == anchor_ordinal
        and not entry.get("in_chain")
    )
    stale = sum(
        1
        for entry in entries
        if entry["verified"] and entry["full_ordinal"] != anchor_ordinal
    )
    return {
        "deltas": entries,
        "anchor_ordinal": anchor_ordinal,
        "chain_ordinals": chain,
        "chain_length": len(chain),
        "chain_tip": chain[-1] if chain else anchor_ordinal,
        "corrupt_deltas": corrupt,
        "orphan_deltas": orphans,
        "stale_deltas": stale,
    }


def inspect_store(root) -> Dict:
    """Full report of a store directory: segments (with live/dead
    ratios), checkpoints, the delta chain, compaction artifacts, totals."""
    root = Path(root)
    segment_paths = sorted((root / "segments").glob("seg-*.log"))
    segments = [
        scan_segment(path, is_last=(i == len(segment_paths) - 1))
        for i, path in enumerate(segment_paths)
    ]
    checkpoints = []
    newest_verified = None
    for path, ordinal in sorted(_checkpoint_files(root / "checkpoints"), key=lambda po: po[1]):
        data = path.read_bytes()
        message = _verify_checkpoint_bytes(data)
        entry = {
            "file": path.name,
            "ordinal": ordinal,
            "size": len(data),
            "verified": message is not None,
        }
        if message is not None:
            entry["batch_seq"] = message.resume.batch_seq
            entry["signer"] = message.signer
            newest_verified = message
        checkpoints.append(entry)
    chain = _delta_report(
        root, newest_verified.ordinal if newest_verified is not None else None
    )
    stable_seq = newest_verified.resume.batch_seq if newest_verified else 0
    # The stable point advances along the delta chain: dead-record
    # accounting must use the chain tip, not just the full snapshot.
    if chain["chain_ordinals"]:
        tip_seqs = [
            entry.get("batch_seq")
            for entry in chain["deltas"]
            if entry.get("in_chain") and entry["ordinal"] == chain["chain_tip"]
        ]
        if tip_seqs and tip_seqs[0] is not None:
            stable_seq = max(stable_seq, tip_seqs[0])
    _tally_liveness(segments, stable_seq)
    seg_dir = root / "segments"
    artifacts = 0
    if seg_dir.is_dir():
        artifacts = sum(1 for _ in seg_dir.glob(f"*{_COMPACT_TMP_SUFFIX}")) + sum(
            1 for _ in seg_dir.glob(f"*.log{_COMPACT_OLD_SUFFIX}")
        )
    seqs = [s["max_seq"] for s in segments if s["max_seq"] is not None]
    total_records = sum(s["records"] for s in segments)
    live_records = sum(s["live_records"] for s in segments)
    return {
        "root": str(root),
        "segments": segments,
        "checkpoints": checkpoints,
        "chain": chain,
        "total_records": total_records,
        "live_records": live_records,
        "dead_records": total_records - live_records,
        "stable_seq": stable_seq,
        "max_seq": max(seqs) if seqs else None,
        "compaction_artifacts": artifacts,
        "corrupt_segments": sum(1 for s in segments if s["status"] == "corrupt"),
        "torn_segments": sum(1 for s in segments if s["status"] == "torn"),
        "corrupt_checkpoints": sum(1 for c in checkpoints if not c["verified"]),
        "corrupt_deltas": chain["corrupt_deltas"],
    }


def verify_store(root) -> Tuple[Dict, bool]:
    """(report, ok): ok is False on real corruption. A torn tail in the
    newest segment is a survivable crash artifact, not a failure; so are
    leftover compaction artifacts (open-time repair resolves them) and
    stale deltas from superseded lineages (GC sweeps them). Corrupt
    deltas and chain-lineage deltas that fail to link are failures: the
    chain they belong to cannot be restored."""
    report = inspect_store(root)
    ok = (
        report["corrupt_segments"] == 0
        and report["corrupt_checkpoints"] == 0
        and report["corrupt_deltas"] == 0
        and report["chain"]["orphan_deltas"] == 0
    )
    return report, ok
