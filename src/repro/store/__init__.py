"""Durable storage for ordered encrypted updates and checkpoints.

See :mod:`repro.store.base` for the seam, :mod:`repro.store.memory` for
the simulation's volatile default, and :mod:`repro.store.filestore` for
the crash-recoverable on-disk implementation used by RtLab nodes.
"""

from repro.store.base import DurableStore, StoreLoad, StoreRecovery
from repro.store.filestore import FileStore
from repro.store.memory import MemoryStore

__all__ = [
    "DurableStore",
    "FileStore",
    "MemoryStore",
    "StoreLoad",
    "StoreRecovery",
]
