"""The simulation's store: append and forget, like the RAM it models.

The deterministic simulation models a crash as losing *everything* except
hardware-protected keys (``ReplicaBase.recover`` wipes all session
state). A store that handed data back after such a crash would change
recovery behaviour — and therefore traces — for every existing seed. So
:meth:`MemoryStore.load` always reports an empty store: the in-memory
deployment keeps its byte-identical traces, while the appended data stays
inspectable for tests and for GC accounting.
"""

from __future__ import annotations

from typing import Dict

from repro.core.messages import BatchRecord, CheckpointMsg
from repro.obs.registry import NULL_METRICS
from repro.store.base import DurableStore, StoreLoad


class MemoryStore(DurableStore):
    """Volatile store: retains writes for introspection, recovers nothing."""

    persistent = False

    def __init__(self, metrics=NULL_METRICS, host: str = ""):
        self.records: Dict[int, BatchRecord] = {}
        self.checkpoints: Dict[int, CheckpointMsg] = {}
        self._m_append = metrics.counter("store.append_records", host=host)
        self._m_ckpt = metrics.counter("store.checkpoints_saved", host=host)

    def append(self, record: BatchRecord) -> int:
        self.records[record.batch_seq] = record
        self._m_append.inc()
        return record.wire_size()

    def save_checkpoint(self, message: CheckpointMsg) -> int:
        self.checkpoints[message.ordinal] = message
        self._m_ckpt.inc()
        return message.wire_size()

    def gc(self, stable_ordinal: int, stable_seq: int) -> None:
        for seq in [s for s in self.records if s < stable_seq]:
            del self.records[seq]
        for ordinal in [o for o in self.checkpoints if o < stable_ordinal]:
            del self.checkpoints[ordinal]

    def load(self) -> StoreLoad:
        # Volatile RAM does not survive the modeled crash: recovery always
        # starts empty and catches up over the network, exactly as before
        # this store existed (the sim's trace byte-identity contract).
        return StoreLoad()
