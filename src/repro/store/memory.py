"""The simulation's store: append and forget, like the RAM it models.

The deterministic simulation models a crash as losing *everything* except
hardware-protected keys (``ReplicaBase.recover`` wipes all session
state). A store that handed data back after such a crash would change
recovery behaviour — and therefore traces — for every existing seed. So
:meth:`MemoryStore.load` always reports an empty store: the in-memory
deployment keeps its byte-identical traces, while the appended data stays
inspectable for tests and for GC accounting.
"""

from __future__ import annotations

from typing import Dict

from repro.core.messages import BatchRecord, CheckpointDeltaMsg, CheckpointMsg
from repro.obs.registry import NULL_METRICS
from repro.store.base import DurableStore, StoreLoad


class MemoryStore(DurableStore):
    """Volatile store: retains writes for introspection, recovers nothing."""

    persistent = False

    def __init__(self, metrics=NULL_METRICS, host: str = ""):
        self.records: Dict[int, BatchRecord] = {}
        self.checkpoints: Dict[int, CheckpointMsg] = {}
        self.deltas: Dict[int, CheckpointDeltaMsg] = {}
        self._m_append = metrics.counter("store.append_records", host=host)
        self._m_ckpt = metrics.counter("store.checkpoints_saved", host=host)
        # CompactLab families are created eagerly on every store so the
        # Prometheus export carries them in every bundle (check_obs_export
        # enforces the family whenever any store_* sample is present).
        self._m_compaction_runs = metrics.counter("store.compaction_runs", host=host)
        self._m_compaction_segments = metrics.counter(
            "store.compaction_segments", host=host
        )
        self._m_compaction_dropped = metrics.counter(
            "store.compaction_records_dropped", host=host
        )
        self._m_compaction_reclaimed = metrics.counter(
            "store.compaction_bytes_reclaimed", host=host
        )
        self._m_delta_saved = metrics.counter("store.delta_checkpoints_saved", host=host)
        self._m_delta_bytes = metrics.counter("store.delta_bytes", host=host)

    def append(self, record: BatchRecord) -> int:
        self.records[record.batch_seq] = record
        self._m_append.inc()
        return record.wire_size()

    def save_checkpoint(self, message: CheckpointMsg) -> int:
        self.checkpoints[message.ordinal] = message
        self._m_ckpt.inc()
        return message.wire_size()

    def save_delta(self, message: CheckpointDeltaMsg) -> int:
        self.deltas[message.ordinal] = message
        self._m_delta_saved.inc()
        self._m_delta_bytes.inc(message.wire_size())
        return message.wire_size()

    def gc(self, stable_ordinal: int, stable_seq: int) -> None:
        for seq in [s for s in self.records if s < stable_seq]:
            del self.records[seq]
        # Chain-aware retention: the newest full at/below the stable point
        # anchors any deltas above it, so it must survive its own GC.
        anchors = [o for o in self.checkpoints if o <= stable_ordinal]
        keep_full = max(anchors) if anchors else None
        for ordinal in [
            o for o in self.checkpoints if keep_full is not None and o < keep_full
        ]:
            del self.checkpoints[ordinal]
        for ordinal in [
            o
            for o, d in self.deltas.items()
            if keep_full is not None and d.full_ordinal < keep_full
        ]:
            del self.deltas[ordinal]

    def compact(self, budget_segments: int = 1) -> Dict[str, int]:
        # Volatile store has no segment files; count the tick for the
        # metric family and report no work.
        self._m_compaction_runs.inc()
        return {"segments": 0, "records_dropped": 0, "bytes_reclaimed": 0}

    def load(self) -> StoreLoad:
        # Volatile RAM does not survive the modeled crash: recovery always
        # starts empty and catches up over the network, exactly as before
        # this store existed (the sim's trace byte-identity contract).
        return StoreLoad()
