"""File-backed durable store: segmented CRC32 log + atomic checkpoints.

Layout under the store root (one root per replica)::

    <root>/segments/seg-00000001.log     append-only update log segments
    <root>/checkpoints/ckpt-000000000050 one file per stable checkpoint

Segment format: a 5-byte header (magic ``RSEG`` + format version), then
length-prefixed records::

    [u32 body length][u32 CRC32(body)][body = codec-encoded BatchRecord]

Checkpoint files carry the same magic discipline (``RCKP`` + version +
one CRC-framed codec-encoded CheckpointMsg) and are written via the
write-temp-then-rename idiom, so a checkpoint either exists whole or not
at all.

Durability policy (``fsync=``):

- ``always`` — fsync after every append: survives power loss, slowest;
- ``batch``  — fsync every few appends and at every checkpoint/close:
  bounded power-loss window, the default;
- ``never``  — rely on the OS to write back eventually: still survives
  SIGKILL (the page cache belongs to the kernel, not the process), which
  is the crash RtLab's launcher actually inflicts.

Every append is ``flush()``ed regardless of policy — a SIGKILLed process
loses user-space buffers but not what it handed to the kernel, and
surviving SIGKILL is the property the recovery path is built on.

Damage tolerance on :meth:`FileStore.load`:

- a partial frame at the *end of the newest segment* is a torn write
  (crash mid-append): expected, reported as ``truncated_tail``, the
  intact prefix is used;
- a CRC or decode failure anywhere else is corruption: the scan stops
  for that segment (frames are not self-resynchronizing), the damage is
  counted, and recovery falls back to network state transfer for
  whatever was lost. Corrupt data is never returned.

A fresh :class:`FileStore` always opens a *new* segment rather than
appending to the last one, so a torn tail from a previous incarnation is
never written after — it stays quarantined until GC removes it.

CompactLab additions:

- **Background compaction** (:meth:`FileStore.compact`): a bounded tick
  that rewrites sealed segments, dropping below-stable records and
  replayed duplicates (a newer copy of the same ``batch_seq`` exists
  later in the log). The swap is crash-safe: live records are copied to
  ``seg-N.compact.tmp``, the original is quarantined to ``seg-N.log.old``,
  the temp is renamed into place, and only then is the quarantine file
  removed. A crash at any point leaves artifacts the next open repairs
  deterministically (:meth:`_repair_interrupted_compaction`) — never two
  live copies, never zero.
- **Checkpoint deltas** (:meth:`FileStore.save_delta`): delta files
  (``RDLT`` magic, ``delta-<ordinal>-<full>`` names) persist the stable
  checkpoint chain between full snapshots; GC is chain-aware so the full
  snapshot anchoring the stable tip always survives.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.messages import BatchRecord, CheckpointDeltaMsg, CheckpointMsg
from repro.errors import ConfigurationError
from repro.net.codec import decode_message, encode_message
from repro.obs.registry import NULL_METRICS
from repro.store.base import DurableStore, StoreLoad

SEGMENT_MAGIC = b"RSEG\x01"
CHECKPOINT_MAGIC = b"RCKP\x01"
DELTA_MAGIC = b"RDLT\x01"
_FRAME_HEADER = struct.Struct(">II")  # (body length, CRC32 of body)

#: Suffixes used by the crash-safe compaction swap. Neither matches the
#: ``seg-*.log`` glob, so in-flight swap files are invisible to load/GC.
_COMPACT_TMP_SUFFIX = ".compact.tmp"
_COMPACT_OLD_SUFFIX = ".old"

FSYNC_POLICIES = ("always", "batch", "never")

#: ``batch`` policy: fsync once per this many appends.
_FSYNC_EVERY = 8


def _frame(body: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body


class FileStore(DurableStore):
    """Segmented append-only log + checkpoint files for one replica."""

    persistent = True

    def __init__(
        self,
        root,
        fsync: str = "batch",
        segment_bytes: int = 1 << 20,
        metrics=NULL_METRICS,
        host: str = "",
    ):
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"unknown fsync policy {fsync!r} (expected one of {FSYNC_POLICIES})"
            )
        if segment_bytes < 4096:
            raise ConfigurationError("segment_bytes must be at least 4096")
        self.root = Path(root)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.segments_dir = self.root / "segments"
        self.checkpoints_dir = self.root / "checkpoints"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)

        self._m_appends = metrics.counter("store.append_records", host=host)
        self._m_append_bytes = metrics.counter("store.append_bytes", host=host)
        self._m_fsyncs = metrics.counter("store.fsyncs", host=host)
        self._m_ckpts = metrics.counter("store.checkpoints_saved", host=host)
        self._m_ckpt_bytes = metrics.counter("store.checkpoint_bytes", host=host)
        self._m_gc_segments = metrics.counter("store.gc_segments", host=host)
        self._m_gc_ckpts = metrics.counter("store.gc_checkpoints", host=host)
        self._h_append = metrics.histogram("store.append_seconds", host=host)
        self._h_fsync = metrics.histogram("store.fsync_seconds", host=host)
        # CompactLab families, created eagerly so every export carries them.
        self._m_compaction_runs = metrics.counter("store.compaction_runs", host=host)
        self._m_compaction_segments = metrics.counter(
            "store.compaction_segments", host=host
        )
        self._m_compaction_dropped = metrics.counter(
            "store.compaction_records_dropped", host=host
        )
        self._m_compaction_reclaimed = metrics.counter(
            "store.compaction_bytes_reclaimed", host=host
        )
        self._m_delta_saved = metrics.counter("store.delta_checkpoints_saved", host=host)
        self._m_delta_bytes = metrics.counter("store.delta_bytes", host=host)

        self._repair_interrupted_compaction()

        self._fh = None
        self._segment_index = self._highest_segment_index()
        self._appends_since_sync = 0
        #: Max batch_seq per segment written by *this* process (sealed
        #: segments from earlier incarnations are scanned lazily by GC).
        self._segment_max_seq: Dict[int, int] = {}
        #: batch_seqs appended per segment by *this* process — lets the
        #: compactor prove duplicate-shadowing without rescanning.
        self._written_seqs: Dict[int, set] = {}
        #: Lazily scanned seq sets for sealed segments from earlier
        #: incarnations (None = unreadable, treated conservatively).
        self._segment_seq_cache: Dict[int, Optional[frozenset]] = {}
        #: The stable point last passed to :meth:`gc` — the compactor's
        #: threshold for dropping below-stable records.
        self._stable_seq = 0
        self._stable_ordinal = 0

    # -- segment plumbing ---------------------------------------------------------

    def _segment_path(self, index: int) -> Path:
        return self.segments_dir / f"seg-{index:08d}.log"

    def _highest_segment_index(self) -> int:
        highest = 0
        for path in self.segments_dir.glob("seg-*.log"):
            try:
                highest = max(highest, int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return highest

    def _roll_segment(self) -> None:
        if self._fh is not None:
            self._sync_current()
            self._fh.close()
        self._segment_index += 1
        self._fh = open(self._segment_path(self._segment_index), "ab")
        if self._fh.tell() == 0:
            self._fh.write(SEGMENT_MAGIC)
        self._fh.flush()

    def _sync_current(self) -> None:
        if self._fh is None or self.fsync_policy == "never":
            return
        started = time.perf_counter()
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._m_fsyncs.inc()
        self._h_fsync.observe(time.perf_counter() - started)
        self._appends_since_sync = 0

    # -- compaction ---------------------------------------------------------------

    def _repair_interrupted_compaction(self) -> None:
        """Finish or roll back a compaction swap a crash interrupted.

        The swap leaves at most two artifacts per segment: the quarantined
        original (``seg-N.log.old``) and the compacted copy
        (``seg-N.compact.tmp``). Exactly one of three crash windows is
        possible, each with a deterministic repair:

        - ``.log`` present + ``.old`` present: crash after the rename-in —
          the compacted copy is live, drop the quarantine file;
        - ``.log`` missing + ``.old`` present: crash between quarantine and
          rename-in — the temp may not be fully durable, so roll *back*:
          restore the original, discard the temp;
        - ``.log`` present + ``.tmp`` only: crash before quarantine — the
          original is untouched, discard the temp.
        """
        for old in sorted(self.segments_dir.glob("seg-*.log" + _COMPACT_OLD_SUFFIX)):
            log = old.with_name(old.name[: -len(_COMPACT_OLD_SUFFIX)])
            tmp = log.with_name(log.name[: -len(".log")] + _COMPACT_TMP_SUFFIX)
            if log.exists():
                old.unlink(missing_ok=True)
            else:
                old.replace(log)
            tmp.unlink(missing_ok=True)
        for tmp in sorted(self.segments_dir.glob("seg-*" + _COMPACT_TMP_SUFFIX)):
            tmp.unlink(missing_ok=True)
        self._fsync_dir(self.segments_dir)

    def compact(self, budget_segments: int = 1) -> Dict[str, int]:
        """One bounded compaction tick over the sealed segments.

        A record is dead when it is below the stable point, or when a
        newer copy of the same ``batch_seq`` exists later in the log
        (replayed duplicate — load() is last-write-wins, so only the
        newest copy is ever used). At most ``budget_segments`` segments
        are rewritten per call so the tick never stalls the hot path;
        damaged segments are left untouched for load() to classify.
        """
        stats = {"segments": 0, "records_dropped": 0, "bytes_reclaimed": 0}
        self._m_compaction_runs.inc()
        if budget_segments <= 0:
            return stats
        if self._fh is not None:
            self._fh.flush()
        sealed: List[Tuple[int, Path]] = []
        for path in sorted(self.segments_dir.glob("seg-*.log")):
            try:
                index = int(path.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            if index != self._segment_index:
                sealed.append((index, path))
        seq_sets = {index: self._segment_seqs(index, path) for index, path in sealed}
        for position, (index, path) in enumerate(sealed):
            if stats["segments"] >= budget_segments:
                break
            if seq_sets[index] is None:
                continue
            shadowing: set = set(self._written_seqs.get(self._segment_index, ()))
            for later_index, _later_path in sealed[position + 1 :]:
                later_set = seq_sets[later_index]
                if later_set is not None:
                    shadowing.update(later_set)
            result = self._compact_segment(index, path, shadowing)
            if result is None:
                continue
            dropped, reclaimed = result
            if dropped == 0:
                continue
            stats["segments"] += 1
            stats["records_dropped"] += dropped
            stats["bytes_reclaimed"] += reclaimed
        if stats["segments"]:
            self._m_compaction_segments.inc(stats["segments"])
            self._m_compaction_dropped.inc(stats["records_dropped"])
            self._m_compaction_reclaimed.inc(stats["bytes_reclaimed"])
        return stats

    def _compact_segment(
        self, index: int, path: Path, shadowing: set
    ) -> Optional[Tuple[int, int]]:
        """Rewrite one sealed segment; returns (records dropped, bytes
        reclaimed) or None when the segment is unreadable."""
        frames = _scan_segment_frames(path)
        if frames is None:
            self._segment_seq_cache[index] = None
            return None
        last_position = {seq: i for i, (seq, _frame) in enumerate(frames)}
        keep = [
            (seq, frame)
            for i, (seq, frame) in enumerate(frames)
            if seq >= self._stable_seq
            and seq not in shadowing
            and last_position[seq] == i
        ]
        dropped = len(frames) - len(keep)
        if dropped == 0:
            return (0, 0)
        old_size = path.stat().st_size
        if not keep:
            path.unlink(missing_ok=True)
            self._forget_segment(index)
            return (dropped, old_size)
        tmp = path.with_name(path.name[: -len(".log")] + _COMPACT_TMP_SUFFIX)
        old = path.with_name(path.name + _COMPACT_OLD_SUFFIX)
        with open(tmp, "wb") as fh:
            fh.write(SEGMENT_MAGIC)
            for _seq, frame in keep:
                fh.write(frame)
            fh.flush()
            if self.fsync_policy != "never":
                os.fsync(fh.fileno())
        new_size = tmp.stat().st_size
        path.replace(old)  # quarantine the original
        tmp.replace(path)  # atomic swap-in
        if self.fsync_policy != "never":
            self._fsync_dir(self.segments_dir)
        old.unlink(missing_ok=True)
        kept_seqs = frozenset(seq for seq, _frame in keep)
        self._segment_seq_cache[index] = kept_seqs
        self._segment_max_seq[index] = max(kept_seqs)
        self._written_seqs.pop(index, None)
        return (dropped, old_size - new_size)

    def _segment_seqs(self, index: int, path: Path) -> Optional[frozenset]:
        """All batch_seqs in a sealed segment (None when unreadable)."""
        written = self._written_seqs.get(index)
        if written is not None:
            return frozenset(written)
        cached = self._segment_seq_cache.get(index, _UNSCANNED)
        if cached is not _UNSCANNED:
            return cached
        scanned = _scan_segment_seqs(path)
        self._segment_seq_cache[index] = scanned
        return scanned

    def _forget_segment(self, index: int) -> None:
        self._segment_max_seq.pop(index, None)
        self._written_seqs.pop(index, None)
        self._segment_seq_cache.pop(index, None)

    # -- DurableStore ------------------------------------------------------------

    def append(self, record: BatchRecord) -> int:
        body = encode_message(record)
        frame = _frame(body)
        if self._fh is None or self._fh.tell() + len(frame) > self.segment_bytes:
            self._roll_segment()
        started = time.perf_counter()
        self._fh.write(frame)
        # flush() every time: the kernel's page cache survives SIGKILL,
        # user-space stdio buffers do not.
        self._fh.flush()
        if self.fsync_policy == "always":
            self._sync_current()
        elif self.fsync_policy == "batch":
            self._appends_since_sync += 1
            if self._appends_since_sync >= _FSYNC_EVERY:
                self._sync_current()
        self._h_append.observe(time.perf_counter() - started)
        self._m_appends.inc()
        self._m_append_bytes.inc(len(frame))
        current = self._segment_max_seq.get(self._segment_index, 0)
        self._segment_max_seq[self._segment_index] = max(current, record.batch_seq)
        self._written_seqs.setdefault(self._segment_index, set()).add(record.batch_seq)
        return len(frame)

    def save_checkpoint(self, message: CheckpointMsg) -> int:
        body = encode_message(message)
        payload = CHECKPOINT_MAGIC + _frame(body)
        final = self.checkpoints_dir / f"ckpt-{message.ordinal:012d}"
        tmp = final.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            if self.fsync_policy != "never":
                os.fsync(fh.fileno())
        tmp.replace(final)
        if self.fsync_policy != "never":
            self._fsync_dir(self.checkpoints_dir)
        # A stable checkpoint makes everything before it collectable, so
        # the log itself should be on disk before the checkpoint claims
        # to cover it.
        self._sync_current()
        self._m_ckpts.inc()
        self._m_ckpt_bytes.inc(len(payload))
        return len(payload)

    def save_delta(self, message: CheckpointDeltaMsg) -> int:
        body = encode_message(message)
        payload = DELTA_MAGIC + _frame(body)
        final = self.checkpoints_dir / (
            f"delta-{message.ordinal:012d}-{message.full_ordinal:012d}"
        )
        tmp = final.with_suffix(".tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            if self.fsync_policy != "never":
                os.fsync(fh.fileno())
        tmp.replace(final)
        if self.fsync_policy != "never":
            self._fsync_dir(self.checkpoints_dir)
        self._sync_current()
        self._m_delta_saved.inc()
        self._m_delta_bytes.inc(len(payload))
        return len(payload)

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass
        finally:
            os.close(fd)

    def gc(self, stable_ordinal: int, stable_seq: int) -> None:
        """Drop sealed segments and checkpoint-chain files the stable
        point covers.

        A sealed segment goes only when a *clean* scan proves every record
        in it is below ``stable_seq``; a segment with unreadable frames is
        kept so load() can still report the damage. Checkpoint retention
        is chain-aware: the newest full snapshot at/below
        ``stable_ordinal`` anchors any stable deltas above it, so it
        survives its own GC; older fulls and deltas from older lineages
        are dropped.
        """
        self._stable_seq = max(self._stable_seq, stable_seq)
        self._stable_ordinal = max(self._stable_ordinal, stable_ordinal)
        for path in sorted(self.segments_dir.glob("seg-*.log")):
            try:
                index = int(path.stem.split("-")[1])
            except (IndexError, ValueError):
                continue
            if index == self._segment_index:
                continue  # never the live segment
            max_seq = self._segment_max_seq.get(index)
            if max_seq is None:
                max_seq = _scan_segment_max_seq(path)
            if max_seq is not None and max_seq < stable_seq:
                path.unlink(missing_ok=True)
                self._forget_segment(index)
                self._m_gc_segments.inc()
        anchors = [
            ordinal
            for _path, ordinal in _checkpoint_files(self.checkpoints_dir)
            if ordinal <= stable_ordinal
        ]
        keep_full = max(anchors) if anchors else None
        if keep_full is None:
            return
        for path, ordinal in _checkpoint_files(self.checkpoints_dir):
            if ordinal < keep_full:
                path.unlink(missing_ok=True)
                self._m_gc_ckpts.inc()
        for path, _ordinal, full_ordinal in _delta_files(self.checkpoints_dir):
            if full_ordinal < keep_full:
                path.unlink(missing_ok=True)
                self._m_gc_ckpts.inc()

    def load(self) -> StoreLoad:
        load = StoreLoad()
        self._load_checkpoint(load)
        self._load_deltas(load)
        self._load_segments(load)
        return load

    def sync(self) -> None:
        self._sync_current()

    def close(self) -> None:
        if self._fh is not None:
            self._sync_current()
            self._fh.close()
            self._fh = None

    # -- load internals -----------------------------------------------------------

    def _load_checkpoint(self, load: StoreLoad) -> None:
        for path, _ordinal in sorted(
            _checkpoint_files(self.checkpoints_dir), key=lambda po: -po[1]
        ):
            data = path.read_bytes()
            message = _verify_checkpoint_bytes(data)
            if message is None:
                load.corrupt_checkpoints += 1
                continue
            load.checkpoint = message
            load.checkpoint_bytes = len(data)
            load.bytes_scanned += len(data)
            return

    def _load_deltas(self, load: StoreLoad) -> None:
        found = []
        for path, ordinal, _full in sorted(
            _delta_files(self.checkpoints_dir), key=lambda pof: pof[1]
        ):
            data = path.read_bytes()
            message = _verify_delta_bytes(data)
            if message is None:
                load.corrupt_deltas += 1
                continue
            found.append(message)
            load.delta_bytes += len(data)
            load.bytes_scanned += len(data)
        load.deltas = found

    def _load_segments(self, load: StoreLoad) -> None:
        paths = sorted(self.segments_dir.glob("seg-*.log"))
        by_seq: Dict[int, Tuple[BatchRecord, int]] = {}
        for position, path in enumerate(paths):
            is_last = position == len(paths) - 1
            self._stream_segment_records(path, is_last, load, by_seq)
        load.records = [by_seq[seq][0] for seq in sorted(by_seq)]
        load.record_bytes = {seq: size for seq, (_r, size) in by_seq.items()}

    def _stream_segment_records(
        self,
        path: Path,
        is_last: bool,
        load: StoreLoad,
        by_seq: Dict[int, Tuple[BatchRecord, int]],
    ) -> None:
        """Stream one segment's frames from the file handle.

        Recovery of an arbitrarily long log holds at most one frame in
        memory at a time instead of whole segment files. Damage
        semantics match the previous whole-file scan: a short magic or
        torn frame is a truncated tail only on the newest segment, any
        CRC/decode failure ends that segment's scan, and
        ``bytes_scanned`` counts the bytes actually read.
        """
        with path.open("rb") as fh:
            magic = fh.read(len(SEGMENT_MAGIC))
            load.bytes_scanned += len(magic)
            if len(magic) < len(SEGMENT_MAGIC):
                if is_last:
                    load.truncated_tail = True
                else:
                    load.corrupt_segments += 1
                return
            if magic != SEGMENT_MAGIC:
                load.corrupt_segments += 1
                return
            while True:
                header = fh.read(_FRAME_HEADER.size)
                if not header:
                    return  # clean end of segment
                load.bytes_scanned += len(header)
                if len(header) < _FRAME_HEADER.size:
                    if is_last:
                        load.truncated_tail = True
                    else:
                        load.corrupt_segments += 1
                    return
                length, crc = _FRAME_HEADER.unpack(header)
                body = fh.read(length)
                load.bytes_scanned += len(body)
                if len(body) < length:
                    if is_last:
                        load.truncated_tail = True
                    else:
                        load.corrupt_segments += 1
                    return
                if zlib.crc32(body) != crc:
                    load.corrupt_segments += 1
                    return
                try:
                    record, _ = decode_message(body)
                except Exception:
                    record = None
                if not isinstance(record, BatchRecord):
                    load.corrupt_segments += 1
                    return
                by_seq[record.batch_seq] = (record, _FRAME_HEADER.size + length)

    # -- fault injection (FaultLab torn_write / corrupt_segment) -------------------

    def damage_torn_write(self, nbytes: int = 64) -> Optional[Path]:
        """Truncate the tail of the newest non-empty segment, as a crash
        mid-append would; rolls to a fresh segment so later appends never
        touch the damaged file. Returns the damaged path (None if there
        was nothing to damage)."""
        target = self._newest_record_segment()
        if target is None:
            return None
        self._quarantine_current()
        torn_write_file(target, nbytes)
        return target

    def damage_corrupt_segment(self, offset: Optional[int] = None) -> Optional[Path]:
        """Flip one byte inside the newest non-empty segment (bit rot /
        hostile storage). Default offset lands in the first record's body,
        guaranteeing a CRC mismatch on the next load."""
        target = self._newest_record_segment()
        if target is None:
            return None
        self._quarantine_current()
        if offset is None:
            offset = len(SEGMENT_MAGIC) + _FRAME_HEADER.size
        flip_byte(target, offset)
        return target

    def damage_crash_during_compaction(self, stage: int = 2) -> Optional[Path]:
        """Leave the on-disk artifacts of a crash mid-compaction-swap.

        ``stage`` picks the crash window: 1 = after the compacted temp
        copy was written, 2 = after the original was quarantined, 3 =
        after the temp was renamed into place (cleanup never ran). The
        next open must repair to exactly one intact copy.
        """
        target = self._newest_record_segment()
        if target is None:
            return None
        self._quarantine_current()
        interrupt_compaction_files(target, stage)
        return target

    def damage_crash_mid_delta(self) -> Optional[Path]:
        """Damage the newest checkpoint-delta file as a crash or bit rot
        would: its tail is torn off, so verification fails, the chain is
        cut, and recovery must fall back to the full snapshot. With no
        delta on disk, an orphan ``.tmp`` is left instead (the
        crash-before-rename window), which load() must ignore."""
        self._quarantine_current()
        deltas = sorted(_delta_files(self.checkpoints_dir), key=lambda pof: pof[1])
        if deltas:
            target = deltas[-1][0]
            torn_write_file(target, nbytes=max(32, target.stat().st_size // 2))
            return target
        orphan = self.checkpoints_dir / "delta-000000000000-000000000000.tmp"
        orphan.write_bytes(DELTA_MAGIC)
        return orphan

    def _newest_record_segment(self) -> Optional[Path]:
        if self._fh is not None:
            self._fh.flush()
        for path in sorted(self.segments_dir.glob("seg-*.log"), reverse=True):
            if path.stat().st_size > len(SEGMENT_MAGIC):
                return path
        return None

    def _quarantine_current(self) -> None:
        """Seal the live segment (without fsync — the damage models a
        crash) and start a fresh one, so post-damage appends are clean."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None
        self._segment_index += 1
        self._fh = open(self._segment_path(self._segment_index), "ab")
        if self._fh.tell() == 0:
            self._fh.write(SEGMENT_MAGIC)
        self._fh.flush()


# ---------------------------------------------------------------------------
# module-level helpers (shared with the live fault injector and the CLI)
# ---------------------------------------------------------------------------


def torn_write_file(path, nbytes: int = 64) -> None:
    """Truncate up to ``nbytes`` off the end of ``path`` (>= header)."""
    path = Path(path)
    size = path.stat().st_size
    keep = max(len(SEGMENT_MAGIC) - 1, size - max(1, nbytes))
    with open(path, "rb+") as fh:
        fh.truncate(keep)


def flip_byte(path, offset: int) -> None:
    """XOR one byte of ``path`` at ``offset`` (clamped into the file)."""
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        return
    offset = min(max(0, offset), size - 1)
    with open(path, "rb+") as fh:
        fh.seek(offset)
        byte = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([byte[0] ^ 0xFF]))


def interrupt_compaction_files(target, stage: int = 2) -> None:
    """Reproduce a crash mid-compaction-swap at the file level.

    Shared between :meth:`FileStore.damage_crash_during_compaction` (sim)
    and the live fault injector, which damages a SIGKILLed node's store
    directory directly. The "compacted" temp is a byte-for-byte copy —
    the repair path never inspects contents, only which files exist.
    """
    target = Path(target)
    if stage not in (1, 2, 3):
        raise ValueError(f"stage must be 1, 2 or 3 (got {stage})")
    tmp = target.with_name(target.name[: -len(".log")] + _COMPACT_TMP_SUFFIX)
    old = target.with_name(target.name + _COMPACT_OLD_SUFFIX)
    tmp.write_bytes(target.read_bytes())
    if stage >= 2:
        target.replace(old)
    if stage >= 3:
        tmp.replace(target)


def _checkpoint_files(directory: Path) -> List[Tuple[Path, int]]:
    found: List[Tuple[Path, int]] = []
    for path in directory.glob("ckpt-*"):
        if path.suffix == ".tmp":
            continue
        try:
            found.append((path, int(path.name.split("-")[1])))
        except (IndexError, ValueError):
            continue
    return found


def _verify_checkpoint_bytes(data: bytes) -> Optional[CheckpointMsg]:
    message = _verify_framed_bytes(data, CHECKPOINT_MAGIC)
    return message if isinstance(message, CheckpointMsg) else None


def _delta_files(directory: Path) -> List[Tuple[Path, int, int]]:
    """(path, ordinal, full_ordinal) for every finished delta file."""
    found: List[Tuple[Path, int, int]] = []
    for path in directory.glob("delta-*"):
        if path.suffix == ".tmp":
            continue
        parts = path.name.split("-")
        try:
            found.append((path, int(parts[1]), int(parts[2])))
        except (IndexError, ValueError):
            continue
    return found


def _verify_delta_bytes(data: bytes) -> Optional[CheckpointDeltaMsg]:
    message = _verify_framed_bytes(data, DELTA_MAGIC)
    return message if isinstance(message, CheckpointDeltaMsg) else None


def _verify_framed_bytes(data: bytes, magic: bytes):
    if not data.startswith(magic):
        return None
    offset = len(magic)
    if offset + _FRAME_HEADER.size > len(data):
        return None
    length, crc = _FRAME_HEADER.unpack_from(data, offset)
    body = data[offset + _FRAME_HEADER.size : offset + _FRAME_HEADER.size + length]
    if len(body) != length or zlib.crc32(body) != crc:
        return None
    try:
        message, _ = decode_message(body)
    except Exception:
        return None
    return message


def _scan_segment_max_seq(path: Path) -> Optional[int]:
    """Max batch_seq of a sealed segment via a header-only scan.

    Reads each frame header plus a few body bytes (the codec tag and the
    leading batch_seq varint), seeking over the rest. Returns None if the
    scan hits anything unreadable — the caller then keeps the segment.
    """
    max_seq: Optional[int] = None
    try:
        with open(path, "rb") as fh:
            if fh.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
                return None
            size = path.stat().st_size
            while fh.tell() < size:
                header = fh.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size:
                    return None
                length, _crc = _FRAME_HEADER.unpack_from(header, 0)
                if fh.tell() + length > size:
                    return None
                peek = fh.read(min(length, 16))
                seq = _peek_batch_seq(peek)
                if seq is None:
                    return None
                max_seq = seq if max_seq is None else max(max_seq, seq)
                fh.seek(length - len(peek), os.SEEK_CUR)
    except OSError:
        return None
    return max_seq


def _scan_segment_seqs(path: Path) -> Optional[frozenset]:
    """All batch_seqs of a sealed segment via a header-only scan.

    Same discipline as :func:`_scan_segment_max_seq`: None on anything
    unreadable, so callers treat the segment conservatively.
    """
    seqs: set = set()
    try:
        with open(path, "rb") as fh:
            if fh.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
                return None
            size = path.stat().st_size
            while fh.tell() < size:
                header = fh.read(_FRAME_HEADER.size)
                if len(header) < _FRAME_HEADER.size:
                    return None
                length, _crc = _FRAME_HEADER.unpack_from(header, 0)
                if fh.tell() + length > size:
                    return None
                peek = fh.read(min(length, 16))
                seq = _peek_batch_seq(peek)
                if seq is None:
                    return None
                seqs.add(seq)
                fh.seek(length - len(peek), os.SEEK_CUR)
    except OSError:
        return None
    return frozenset(seqs)


def _scan_segment_frames(path: Path) -> Optional[List[Tuple[int, bytes]]]:
    """CRC-verified (batch_seq, frame) pairs of one segment, in file
    order; None if any frame fails verification (the compactor must never
    rewrite — and thereby launder — a damaged segment)."""
    frames: List[Tuple[int, bytes]] = []
    try:
        with open(path, "rb") as fh:
            if fh.read(len(SEGMENT_MAGIC)) != SEGMENT_MAGIC:
                return None
            while True:
                header = fh.read(_FRAME_HEADER.size)
                if not header:
                    return frames
                if len(header) < _FRAME_HEADER.size:
                    return None
                length, crc = _FRAME_HEADER.unpack(header)
                body = fh.read(length)
                if len(body) < length or zlib.crc32(body) != crc:
                    return None
                try:
                    record, _ = decode_message(body)
                except Exception:
                    return None
                if not isinstance(record, BatchRecord):
                    return None
                frames.append((record.batch_seq, header + body))
    except OSError:
        return None


#: Sentinel distinguishing "never scanned" from "scanned, unreadable".
_UNSCANNED = object()


def _peek_batch_seq(body_prefix: bytes) -> Optional[int]:
    """The leading batch_seq varint of an encoded BatchRecord body."""
    if not body_prefix:
        return None
    value = 0
    shift = 0
    for byte in body_prefix[1:]:  # skip the codec tag byte
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value
        shift += 7
        if shift > 70:
            return None
    return None
