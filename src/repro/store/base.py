"""The durable-store seam: what a replica persists and recovers.

The paper's data-center replicas "durably store encrypted updates and
checkpoints" (Sections IV, V-C); this package makes that storage real and
pluggable behind the same seam that already splits the deterministic
simulation from the live runtime:

- :class:`~repro.store.memory.MemoryStore` — the simulation's default.
  Volatile by design: a modeled crash loses RAM, so ``load()`` always
  returns nothing and existing traces stay byte-identical.
- :class:`~repro.store.filestore.FileStore` — a segmented append-only log
  plus an atomic checkpoint store on disk, used by RtLab nodes so a
  SIGKILLed process recovers its own prefix locally and only the missing
  suffix crosses the network.

The store holds exactly two kinds of objects, both already codec-framed
wire messages (:mod:`repro.net.codec`):

- :class:`~repro.core.messages.BatchRecord` — one executed batch of the
  global order (encrypted updates / key proposals, plus the engine resume
  point after the batch), appended by ``ReplicaBase._deliver``;
- :class:`~repro.core.messages.CheckpointMsg` — the replica's stable
  checkpoint, saved by :class:`~repro.core.checkpoint.CheckpointManager`
  whenever stability is reached or adopted.

Garbage collection mirrors the in-memory discipline: once a checkpoint at
ordinal ``O`` / batch ``S`` is stable, records below ``S`` and checkpoints
below ``O`` are dead weight and may be dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.messages import BatchRecord, CheckpointDeltaMsg, CheckpointMsg


@dataclass
class StoreLoad:
    """Everything a store could read back at boot, plus damage found.

    ``records`` may be sparse or overlapping (last write wins per
    ``batch_seq``); the *recovery* layer decides how much of it is usable
    (a contiguous run above the checkpoint). ``record_bytes`` maps each
    surviving ``batch_seq`` to its on-disk frame size so recovered bytes
    are measured in the same units as network-transfer bytes.
    """

    checkpoint: Optional[CheckpointMsg] = None
    records: List[BatchRecord] = field(default_factory=list)
    record_bytes: Dict[int, int] = field(default_factory=dict)
    checkpoint_bytes: int = 0
    bytes_scanned: int = 0
    #: Verified checkpoint deltas found on disk (any lineage, sorted by
    #: ordinal); the recovery layer extracts the contiguous chain that
    #: anchors at ``checkpoint`` and ignores orphans.
    deltas: List[CheckpointDeltaMsg] = field(default_factory=list)
    delta_bytes: int = 0
    #: Segments where a CRC/decode failure stopped the scan mid-file.
    corrupt_segments: int = 0
    #: Checkpoint files that failed verification (newer-but-broken ones).
    corrupt_checkpoints: int = 0
    #: Delta files that failed verification (torn or bit-flipped); the
    #: chain is cut before the damage and recovery degrades gracefully.
    corrupt_deltas: int = 0
    #: The newest segment ended in a partial frame (torn write / SIGKILL
    #: mid-append) — expected after a crash, handled by clean truncation.
    truncated_tail: bool = False

    @property
    def empty(self) -> bool:
        return self.checkpoint is None and not self.records

    @property
    def damaged(self) -> bool:
        return bool(
            self.corrupt_segments or self.corrupt_checkpoints or self.corrupt_deltas
        )

    def chain_deltas(self) -> List[CheckpointDeltaMsg]:
        """The contiguous delta chain anchored at ``checkpoint``.

        Walks ``deltas`` newest-first relevance: starting from the full
        snapshot's ordinal, repeatedly takes the delta whose
        ``base_ordinal`` equals the current tip and whose ``full_ordinal``
        matches the anchor. Orphans and post-gap deltas are skipped —
        recovery then falls back to the full snapshot plus log tail.
        """
        if self.checkpoint is None:
            return []
        anchor = self.checkpoint.ordinal
        by_base = {d.base_ordinal: d for d in self.deltas if d.full_ordinal == anchor}
        chain: List[CheckpointDeltaMsg] = []
        tip = anchor
        while tip in by_base:
            delta = by_base.pop(tip)
            chain.append(delta)
            tip = delta.ordinal
        return chain


@dataclass
class StoreRecovery:
    """What :meth:`ReplicaBase.recover_from_store` actually replayed.

    ``batch_seq``/``ordinal`` are the resume coordinates the replica holds
    after local replay; a subsequent state transfer advertises them as
    ``have_seq``/``have_ordinal`` so responders send only the suffix.
    """

    batch_seq: int = 0
    ordinal: int = 0
    records: int = 0
    bytes_replayed: int = 0
    corruption_detected: bool = False

    @property
    def empty(self) -> bool:
        return self.batch_seq == 0 and self.ordinal == 0 and self.records == 0


class DurableStore:
    """Interface every store implementation provides.

    All methods are synchronous: the simulation calls them inline on the
    virtual-time kernel, and the live runtime calls them from the asyncio
    loop (writes are small; fsync policy bounds the stalls).
    """

    #: Whether data written here survives a process crash.
    persistent = False

    def append(self, record: BatchRecord) -> int:
        """Durably append one executed batch; returns bytes written."""
        raise NotImplementedError

    def save_checkpoint(self, message: CheckpointMsg) -> int:
        """Atomically persist a stable checkpoint; returns bytes written."""
        raise NotImplementedError

    def save_delta(self, message: CheckpointDeltaMsg) -> int:
        """Atomically persist a stable checkpoint delta; returns bytes
        written. Deltas are chain links: GC keeps every link between the
        retained full snapshot and the stable tip."""
        raise NotImplementedError

    def gc(self, stable_ordinal: int, stable_seq: int) -> None:
        """Drop records below ``stable_seq`` and dead checkpoint-chain
        files below ``stable_ordinal``. Chain-aware: the newest full
        snapshot at or below ``stable_ordinal`` survives (deltas up to the
        stable tip need their anchor), older fulls and deltas from older
        lineages are dropped."""
        raise NotImplementedError

    def compact(self, budget_segments: int = 1) -> Dict[str, int]:
        """One bounded background-compaction tick: rewrite up to
        ``budget_segments`` sealed log segments, dropping below-stable and
        replayed-duplicate records. Returns a stats dict (``segments``,
        ``records_dropped``, ``bytes_reclaimed``). No-op if volatile."""
        return {"segments": 0, "records_dropped": 0, "bytes_reclaimed": 0}

    def load(self) -> StoreLoad:
        """Read back whatever survived; never raises on damaged data —
        damage is reported in the :class:`StoreLoad` instead."""
        raise NotImplementedError

    def sync(self) -> None:
        """Force outstanding writes to stable storage (no-op if volatile)."""

    def close(self) -> None:
        """Flush and release resources; the store may not be used after."""
