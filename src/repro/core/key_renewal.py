"""Automatic client key renewal (Section V-D).

Client key pairs are only valid for a bounded range of client sequence
numbers. Near the end of the active range, every on-premises replica
independently generates fresh randomness and proposes it — encrypted under
the hardware-protected key, so data-center replicas store the proposal
without learning it — by injecting it into the global order. The first
f+1 *valid* ordered proposals for a range determine the new key pair
deterministically (they include randomness from at least one correct
replica, so no coalition of f compromised replicas controls key choice).

Validity enforces logical time: a proposal for range [rs, re] only counts
if, at its ordering point, the client's ordered sequence has reached at
least ``rs - 1 - x`` (the slack parameter ``x``). This is what bounds the
disclosure window after a compromise: keys leaked by a replica can decrypt
at most ``V + x`` updates issued after that replica is recovered.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.core.encryption import KeyEpoch
from repro.core.messages import KeyProposal
from repro.crypto.symmetric import derive_keypair
from repro.errors import KeyScheduleError
from repro.prime.messages import OpaqueUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ExecutingReplica

RangeKey = Tuple[str, int]  # (alias, range_start)


class KeyRenewalManager:
    """Key renewal for one executing (on-premises) replica."""

    def __init__(
        self,
        replica: "ExecutingReplica",
        validity: int = 1000,
        slack: int = 10,
        enabled: bool = False,
    ):
        self._replica = replica
        metrics = replica.metrics
        self._m_proposals = metrics.counter("keyrenew.proposals")
        self._m_completed = metrics.counter("keyrenew.completed")
        self._m_hw_encrypt = metrics.counter("crypto.hw.encrypt")
        self._m_hw_decrypt = metrics.counter("crypto.hw.decrypt")
        self.validity = validity
        self.slack = slack
        self.enabled = enabled
        # Ordered, decrypted proposal seeds per pending range.
        self._pending: Dict[RangeKey, List[Tuple[str, bytes]]] = {}
        self._completed: Set[RangeKey] = set()
        self._my_proposals: Set[RangeKey] = set()
        self.renewals_completed = 0

    # -- trigger: watch client progress --------------------------------------------

    def on_client_progress(self, alias: str) -> None:
        """Called after each ordered update for ``alias``; maybe propose."""
        if not self.enabled:
            return
        replica = self._replica
        try:
            schedule = replica.key_manager.schedule_for(alias)
        except KeyScheduleError:
            return
        current_end = schedule.latest.end_seq
        ordered_seq = replica.executed_seq(alias)
        if ordered_seq < current_end - self.slack + 1:
            return
        range_key = (alias, current_end + 1)
        if range_key in self._my_proposals or range_key in self._completed:
            return
        self._my_proposals.add(range_key)
        self._propose(alias, current_end + 1, current_end + self.validity)

    def _propose(self, alias: str, range_start: int, range_end: int) -> None:
        replica = self._replica
        seed = replica.draw_random_bytes(32)
        self._m_proposals.inc()
        self._m_hw_encrypt.inc()
        encrypted_seed = replica.keystore.hardware_encrypt(seed)
        proposal = KeyProposal(
            alias=alias,
            range_start=range_start,
            range_end=range_end,
            proposer=replica.host,
            encrypted_seed=encrypted_seed,
        )
        replica.trace("keyrenew.propose", alias=alias, start=range_start)
        replica.engine.inject(
            OpaqueUpdate(
                digest=proposal.digest(), payload=proposal, size=proposal.wire_size()
            )
        )

    # -- ordered proposals ------------------------------------------------------------

    def on_ordered_proposal(self, proposal: KeyProposal) -> None:
        """Process a proposal at its position in the global order."""
        if not self.enabled:
            return
        replica = self._replica
        range_key = (proposal.alias, proposal.range_start)
        if range_key in self._completed:
            return
        if not self._valid_at_ordering(proposal):
            replica.trace(
                "keyrenew.invalid",
                alias=proposal.alias,
                start=proposal.range_start,
                proposer=proposal.proposer,
            )
            return
        seeds = self._pending.setdefault(range_key, [])
        if any(proposer == proposal.proposer for proposer, _ in seeds):
            return
        self._m_hw_decrypt.inc()
        seed = replica.keystore.hardware_decrypt(proposal.encrypted_seed)
        seeds.append((proposal.proposer, seed))
        if len(seeds) >= replica.f + 1:
            self._complete(proposal, seeds[: replica.f + 1])

    def _valid_at_ordering(self, proposal: KeyProposal) -> bool:
        """Logical-time validity (the slack rule) plus schedule contiguity."""
        replica = self._replica
        if proposal.proposer not in replica.on_premises_replicas():
            return False
        if proposal.range_end - proposal.range_start + 1 != self.validity:
            return False
        try:
            schedule = replica.key_manager.schedule_for(proposal.alias)
        except KeyScheduleError:
            return False
        if proposal.range_start != schedule.latest.end_seq + 1:
            return False
        ordered_seq = replica.executed_seq(proposal.alias)
        return ordered_seq >= proposal.range_start - 1 - self.slack

    def _complete(self, proposal: KeyProposal, seeds: List[Tuple[str, bytes]]) -> None:
        """Derive the new epoch from the first f+1 valid ordered proposals."""
        replica = self._replica
        range_key = (proposal.alias, proposal.range_start)
        material = b"|".join(
            proposer.encode("utf-8") + b":" + seed for proposer, seed in seeds
        )
        context = f"{proposal.alias}|{proposal.range_start}|{proposal.range_end}"
        keys = derive_keypair(material + context.encode("utf-8"))
        epoch = KeyEpoch(
            start_seq=proposal.range_start, end_seq=proposal.range_end, keys=keys
        )
        replica.key_manager.schedule_for(proposal.alias).extend(epoch)
        self._completed.add(range_key)
        self._pending.pop(range_key, None)
        self.renewals_completed += 1
        self._m_completed.inc()
        replica.trace(
            "keyrenew.complete", alias=proposal.alias, start=proposal.range_start
        )
        replica.intro.drain_awaiting_keys(proposal.alias)

    # -- checkpoint integration ----------------------------------------------------------

    def to_state(self) -> Dict:
        """Pending-proposal state for inclusion in encrypted checkpoints."""
        return {
            "pending": {
                f"{alias}|{start}": [
                    [proposer, seed.hex()] for proposer, seed in seeds
                ]
                for (alias, start), seeds in sorted(self._pending.items())
            },
            "completed": sorted(f"{a}|{s}" for a, s in self._completed),
        }

    def restore_state(self, state: Dict) -> None:
        self._pending = {}
        for key, seeds in state.get("pending", {}).items():
            alias, start = key.rsplit("|", 1)
            self._pending[(alias, int(start))] = [
                (proposer, bytes.fromhex(seed_hex)) for proposer, seed_hex in seeds
            ]
        self._completed = set()
        for key in state.get("completed", []):
            alias, start = key.rsplit("|", 1)
            self._completed.add((alias, int(start)))
