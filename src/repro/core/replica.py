"""Replica hosts: executing (on-premises) and storage (data-center) roles.

This module is the runtime embodiment of the paper's architecture split
(Section IV-A): every replica hosts a Prime engine and participates fully
in ordering, but only *executing* replicas host an application instance,
hold client keys, decrypt updates, and generate responses; *storage*
replicas store encrypted updates and checkpoints, relay checkpoint
stability votes, and serve state transfer — nothing else.

The Spire 1.2 baseline is expressed with the same classes: every replica
(including those in data centers) is an :class:`ExecutingReplica` with
``confidential=False``, which skips encryption and threshold introduction;
the confidentiality auditor then records the resulting plaintext exposure
at data-center hosts, quantifying the gap Confidential Spire closes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.app import Application
from repro.core.checkpoint import CheckpointManager
from repro.core.confidentiality import Auditor, Sensitive
from repro.core.encryption import KeyManager
from repro.core.intro import IntroductionManager
from repro.core.key_renewal import KeyRenewalManager
from repro.core.messages import (
    BatchProposal,
    BatchRecord,
    BatchShare,
    CertifiedResponse,
    CheckpointDeltaMsg,
    CheckpointMsg,
    ClientResponse,
    ClientUpdate,
    EncryptedUpdate,
    IntroShare,
    KeyProposal,
    ResponseBatchShare,
    ResponseShare,
    ResumePoint,
    SignedUpdateBatch,
    StateXferResponse,
    StateXferSolicit,
    XferRequest,
    client_alias,
    response_batch_signing_bytes,
    unpack_update,
)
from repro.core.state_transfer import StateTransferManager
from repro.core.statedelta import apply_delta, diff_state
from repro.costs import CostModel
from repro.crypto.keystore import HardwareKeyStore
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.symmetric import SymmetricKeyPair
from repro.crypto.merkle import merkle_proof, merkle_root
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdKeyShare,
    ThresholdPublicKey,
    combine_via,
    combine_with_retry,
    sign_partial_via,
)
from repro.crypto.verifycache import verify_with
from repro.errors import ProtocolError, SignatureError
from repro.obs.registry import NULL_METRICS
from repro.rt.substrate import Scheduler, Transport
from repro.store.base import DurableStore, StoreRecovery
from repro.store.memory import MemoryStore
from repro.prime.config import PrimeConfig
from repro.sim.cpu import Cpu
from repro.prime.engine import PrimeReplica
from repro.prime.messages import (
    BatchFetch,
    BatchFetchReply,
    Commit,
    Heartbeat,
    NewView,
    OpaqueUpdate,
    PoAck,
    PoAru,
    PoFetch,
    PoFetchReply,
    PoRequest,
    PrePrepare,
    Prepare,
    Suspect,
    VcState,
)

def batch_digest(entries) -> str:
    """Stable short digest of an executed batch's (ordinal, payload) pairs.

    Used by the ordering-safety invariant: two correct replicas executing
    the same batch sequence must produce identical digests.
    """
    import hashlib

    hasher = hashlib.sha256()
    for ordinal, _origin, _po_seq, update in entries:
        hasher.update(str(ordinal).encode("ascii"))
        hasher.update(update.digest)
    return hasher.hexdigest()[:16]


_PRIME_TYPES = (
    PoRequest,
    PoAck,
    PoAru,
    PoFetch,
    PoFetchReply,
    BatchFetch,
    BatchFetchReply,
    PrePrepare,
    Prepare,
    Commit,
    Heartbeat,
    Suspect,
    VcState,
    NewView,
)


@dataclass
class ReplicaEnv:
    """Shared deployment context handed to every replica.

    Built once by :mod:`repro.system.builder`; replicas treat it as
    read-only configuration.
    """

    kernel: Scheduler
    network: Transport
    costs: CostModel
    prime_config: PrimeConfig
    confidential: bool
    all_replicas: Tuple[str, ...]
    on_premises: Tuple[str, ...]
    executing: Tuple[str, ...]
    intro_public: Optional[ThresholdPublicKey]
    response_public: ThresholdPublicKey
    client_registry: Dict[str, RsaPublicKey]
    alias_to_client: Dict[str, str]
    proxy_of_client: Dict[str, str]
    initial_client_keys: Dict[str, SymmetricKeyPair]
    checkpoint_interval: int = 100
    # CompactLab: full snapshot every N checkpoints with state deltas
    # between (0/1 = every checkpoint full, the legacy behaviour).
    checkpoint_delta_interval: int = 0
    # CompactLab: background log-compaction tick. 0 disables (the sim's
    # default — trace byte-identity); > 0 schedules a bounded compaction
    # of up to store_compaction_budget sealed segments per tick.
    store_compaction_interval: float = 0.0
    store_compaction_budget: int = 2
    key_validity: int = 1000
    key_slack: int = 10
    key_renewal_enabled: bool = False
    failover_delay: float = 0.120
    lagging_debounce: float = 1.0
    # Flow control for state-transfer responses: when set, responses are
    # split into parts of at most this many bytes, paced xfer_chunk_interval
    # apart (None reproduces the paper prototype's single-burst behaviour).
    xfer_chunk_bytes: Optional[int] = 65536
    xfer_chunk_interval: float = 0.004
    tracer: Optional[object] = None
    auditor: Optional[Auditor] = None
    rng: Optional[object] = None
    metrics: Optional[object] = None
    # Durable-store seam: host -> DurableStore. None means the volatile
    # MemoryStore (the deterministic sim's default; traces byte-identical).
    store_factory: Optional[Callable[[str], DurableStore]] = None
    # Shared signature-verification memo (repro.crypto.verifycache). None
    # verifies directly; simulated crypto costs are charged either way.
    verify_cache: Optional[object] = None
    # BatchLab: introduction batching window. 1 = the singleton path,
    # byte-identical to pre-batching traces; > 1 aggregates up to this
    # many updates under one threshold signature per window.
    intro_batch_size: int = 1
    intro_batch_window: float = 0.02
    # Optional repro.crypto.pool.CryptoPool: threshold sign/combine are
    # evaluated in worker processes when set (live runtime), in-process
    # when None (the sim default; results are bit-identical either way).
    crypto_pool: Optional[object] = None


class ClientProgress:
    """Execution-dedup record for one client: which sequences ran.

    The global total order may interleave one client's updates out of
    sequence-number order (two introducers, independent pre-order
    streams); execution follows the total order, so dedup must handle
    holes. Stored compactly as a contiguous watermark plus the sparse set
    above it.
    """

    __slots__ = ("contiguous", "extras")

    def __init__(self, contiguous: int = 0, extras: Optional[Set[int]] = None):
        self.contiguous = contiguous
        self.extras: Set[int] = set(extras or ())
        self._compact()

    def is_executed(self, seq: int) -> bool:
        return seq <= self.contiguous or seq in self.extras

    def mark(self, seq: int) -> None:
        if self.is_executed(seq):
            return
        self.extras.add(seq)
        self._compact()

    def _compact(self) -> None:
        while (self.contiguous + 1) in self.extras:
            self.contiguous += 1
            self.extras.discard(self.contiguous)

    @property
    def high_watermark(self) -> int:
        return max(self.extras) if self.extras else self.contiguous

    def to_state(self):
        return [self.contiguous, sorted(self.extras)]

    @staticmethod
    def from_state(state) -> "ClientProgress":
        contiguous, extras = state
        return ClientProgress(int(contiguous), {int(s) for s in extras})


class ReplicaBase:
    """Shared machinery: engine lifecycle, dispatch, logs, recovery."""

    hosts_application = False

    def __init__(self, env: ReplicaEnv, host: str, keystore: HardwareKeyStore):
        self.env = env
        self.host = host
        self.keystore = keystore
        self.kernel = env.kernel
        self.costs = env.costs
        self.confidential = env.confidential
        self.metrics = env.metrics if env.metrics is not None else NULL_METRICS
        self.online = False
        self.incarnation = 0
        self.cpu = Cpu(env.kernel)
        self.store: DurableStore = (
            env.store_factory(host)
            if env.store_factory is not None
            else MemoryStore(metrics=self.metrics, host=host)
        )
        self.update_log: Dict[int, BatchRecord] = {}
        self.checkpoints = CheckpointManager(
            self, env.checkpoint_interval, env.checkpoint_delta_interval
        )
        self.xfer = StateTransferManager(self)
        self.engine = self._make_engine()
        self._last_lagging_xfer = -1e9
        self._compaction_scheduled = False
        # Hook for the Byzantine adversary (repro.system.adversary): maps
        # (dst, message) -> message-or-None on everything this host sends.
        self.outbound_filter = None
        env.network.register(host, self.on_message)

    # -- properties ------------------------------------------------------------

    @property
    def f(self) -> int:
        return self.env.prime_config.f

    @property
    def quorum(self) -> int:
        return self.env.prime_config.quorum

    def all_peers(self) -> List[str]:
        return [r for r in self.env.all_replicas if r != self.host]

    def on_premises_replicas(self) -> List[str]:
        return list(self.env.on_premises)

    def on_premises_peers(self) -> List[str]:
        return [r for r in self.env.on_premises if r != self.host]

    def executing_peers(self) -> List[str]:
        return [r for r in self.env.executing if r != self.host]

    # -- engine lifecycle ----------------------------------------------------------

    def _make_engine(self) -> PrimeReplica:
        return PrimeReplica(
            kernel=self.kernel,
            config=self.env.prime_config,
            replica_id=self.host,
            send=self.network_send,
            multicast=self._multicast_replicas,
            deliver=self._deliver,
            validate=self._validate,
            on_lagging=self._on_lagging,
            costs=self.costs,
            tracer=self.env.tracer,
            incarnation=self.incarnation,
            metrics=self.env.metrics,
        )

    def start(self) -> None:
        """Bring the replica online at deployment start."""
        self.online = True
        self.engine.start()
        self._schedule_compaction()

    # -- background log compaction (CompactLab) -----------------------------------

    def _schedule_compaction(self) -> None:
        """Arm the periodic compaction tick (sim kernel or live scheduler —
        both provide ``call_later``). Disabled (interval 0) by default so
        existing sim traces stay byte-identical; the tick itself is pure
        disk work with zero simulated cost, so enabling it never perturbs
        protocol timing either."""
        interval = self.env.store_compaction_interval
        if interval > 0 and not self._compaction_scheduled:
            self._compaction_scheduled = True
            self.kernel.call_later(interval, self._compaction_tick)

    def _compaction_tick(self) -> None:
        interval = self.env.store_compaction_interval
        if interval <= 0:
            self._compaction_scheduled = False
            return
        if self.online:
            # Offline = the modeled process is dead; its disk does not
            # compact itself. The timer keeps ticking so compaction
            # resumes with recovery.
            self.store.compact(self.env.store_compaction_budget)
        self.kernel.call_later(interval, self._compaction_tick)

    # -- networking ---------------------------------------------------------------------

    def network_send(self, dst: str, message: object) -> None:
        if self.outbound_filter is not None:
            message = self.outbound_filter(dst, message)
            if message is None:
                return
        self.env.network.send(self.host, dst, message)

    def _multicast_replicas(self, message: object) -> None:
        for dst in self.env.all_replicas:
            if dst != self.host:
                self.network_send(dst, message)

    def on_message(self, src: str, message: object) -> None:
        """Network entry point: queue the message behind the host CPU.

        Every replica-to-replica message costs CPU (deserialization plus
        Prime's per-message authentication check); the FIFO CPU model is
        what makes message-volume growth show up as latency.
        """
        self.cpu.run(self.costs.message_processing, self._process_message, src, message)

    def _process_message(self, src: str, message: object) -> None:
        if not self.online:
            return
        if isinstance(message, _PRIME_TYPES):
            self.engine.handle(src, message)
        elif isinstance(message, ClientUpdate):
            self.on_client_update(src, message)
        elif isinstance(message, IntroShare):
            self.on_intro_share(src, message)
        elif isinstance(message, BatchProposal):
            self.on_batch_proposal(src, message)
        elif isinstance(message, BatchShare):
            self.on_batch_share(src, message)
        elif isinstance(message, ResponseShare):
            self.on_response_share(src, message)
        elif isinstance(message, ResponseBatchShare):
            self.on_response_batch_share(src, message)
        elif isinstance(message, (CheckpointMsg, CheckpointDeltaMsg)):
            self.checkpoints.on_checkpoint(src, message)
        elif isinstance(message, StateXferSolicit):
            self.xfer.on_solicit(src, message)
        elif isinstance(message, StateXferResponse):
            self.xfer.on_response(src, message)
        else:
            raise ProtocolError(
                f"{self.host}: unhandled message type {type(message).__name__}"
            )

    # Role-specific handlers overridden by ExecutingReplica.

    def on_client_update(self, src: str, message: ClientUpdate) -> None:
        self.trace("replica.unexpected-client-update", src=src)

    def on_intro_share(self, src: str, message: IntroShare) -> None:
        self.trace("replica.unexpected-intro-share", src=src)

    def on_batch_proposal(self, src: str, message: BatchProposal) -> None:
        self.trace("replica.unexpected-batch-proposal", src=src)

    def on_batch_share(self, src: str, message: BatchShare) -> None:
        self.trace("replica.unexpected-batch-share", src=src)

    def on_response_share(self, src: str, message: ResponseShare) -> None:
        self.trace("replica.unexpected-response-share", src=src)

    def on_response_batch_share(self, src: str, message: ResponseBatchShare) -> None:
        self.trace("replica.unexpected-response-batch-share", src=src)

    # -- scheduling helper ------------------------------------------------------------------

    def after(self, cost: float, fn: Callable, *args) -> None:
        """Run ``fn`` after ``cost`` seconds of this host's CPU time."""
        if cost > 0:
            self.cpu.run(cost, fn, *args)
        else:
            fn(*args)

    def trace(self, category: str, **detail) -> None:
        if self.env.tracer is not None:
            self.env.tracer.record(category, self.host, **detail)

    def observe_plaintext(self, label: str, channel: str = "local") -> None:
        if self.env.auditor is not None:
            self.env.auditor.observe(self.host, label, channel)

    def draw_random_bytes(self, n: int) -> bytes:
        if self.env.rng is None:
            raise ProtocolError("no RNG registry configured")
        return self.env.rng.randbytes(f"replica.{self.host}.{self.incarnation}", n)

    # -- ordered batch processing -----------------------------------------------------------

    def _deliver(self, entries, batch_seq: int) -> None:
        for ordinal, _origin, _po_seq, update in entries:
            self.process_entry(ordinal, update.payload)
        batch_seq_r, ordinal_r, ordered_through = self.engine.resume_point()
        record = BatchRecord(
            batch_seq=batch_seq,
            resume=ResumePoint.from_engine(batch_seq_r, ordinal_r, ordered_through),
            entries=tuple((ordinal, update.payload) for ordinal, _o, _p, update in entries),
        )
        self.update_log[batch_seq] = record
        self.store.append(record)
        tracer = self.env.tracer
        if tracer is not None and tracer.enabled:
            # Ordering-safety tap (FaultLab): every replica attests what it
            # executed at this sequence; any two hosts disagreeing on the
            # digest of the same batch_seq is a safety violation.
            tracer.record(
                "order.batch",
                self.host,
                batch_seq=batch_seq,
                digest=batch_digest(entries),
            )
        self.checkpoints.maybe_generate(record.resume.ordinal, record.resume)
        self.on_batch_delivered()

    def process_entry(self, ordinal: int, payload: object) -> None:
        if isinstance(payload, XferRequest):
            self.xfer.on_ordered_request(payload)
        elif isinstance(
            payload, (EncryptedUpdate, ClientUpdate, KeyProposal, SignedUpdateBatch)
        ):
            self.store_entry(ordinal, payload)
        else:
            raise ProtocolError(
                f"{self.host}: unknown ordered payload {type(payload).__name__}"
            )

    def store_entry(self, ordinal: int, payload: object) -> None:
        """Storage behaviour: nothing beyond the update log (kept by
        :meth:`_deliver`); executing replicas override."""

    def on_batch_delivered(self) -> None:
        """Post-delivery hook: executing replicas flush the response batch
        accumulated while processing the ordered batch (BatchLab)."""

    # -- update validation (Prime callback) ----------------------------------------------------

    def _validate(self, update: OpaqueUpdate) -> bool:
        payload = update.payload
        if isinstance(payload, EncryptedUpdate):
            if self.env.intro_public is None:
                return False
            return verify_with(
                self.env.verify_cache,
                self.env.intro_public,
                payload.signing_bytes(),
                payload.threshold_sig,
            )
        if isinstance(payload, ClientUpdate):
            if self.confidential:
                # Plaintext client updates must never be ordered in
                # Confidential Spire.
                return False
            public = self.env.client_registry.get(payload.client_id)
            return public is not None and verify_with(
                self.env.verify_cache,
                public,
                payload.signing_bytes(),
                payload.signature,
            )
        if isinstance(payload, SignedUpdateBatch):
            if self.env.intro_public is None or not payload.items:
                return False
            # The root must re-derive from the member digests: the
            # signature then covers every item, and no item can be
            # swapped without invalidating it.
            root = merkle_root([item.digest() for item in payload.items])
            if root != payload.root:
                return False
            return verify_with(
                self.env.verify_cache,
                self.env.intro_public,
                payload.signing_bytes(),
                payload.threshold_sig,
            )
        if isinstance(payload, KeyProposal):
            return payload.proposer in self.env.on_premises
        if isinstance(payload, XferRequest):
            return True
        return False

    # -- lagging detection / state transfer ---------------------------------------------------------

    def _on_lagging(self, target_seq: int) -> None:
        now = self.kernel.now
        if now - self._last_lagging_xfer < self.env.lagging_debounce:
            return
        if self.xfer.in_progress:
            return
        self._last_lagging_xfer = now
        self.trace("replica.lagging", target=target_seq)
        self.xfer.initiate(reason=f"lagging@{target_seq}")

    def executed_ordinal(self) -> int:
        return self.engine.order.ordinal

    def update_log_after(self, batch_seq: int) -> List[BatchRecord]:
        return [
            self.update_log[seq]
            for seq in sorted(self.update_log)
            if seq > batch_seq
        ]

    def prune_update_log(self, before_seq: int) -> None:
        for seq in [s for s in self.update_log if s < before_seq]:
            del self.update_log[seq]

    # -- state transfer application ----------------------------------------------------------------------

    def apply_state_transfer(
        self,
        checkpoint: Optional[CheckpointMsg],
        batches: List[BatchRecord],
        view: int,
        deltas: Tuple[CheckpointDeltaMsg, ...] = (),
    ) -> None:
        if deltas and checkpoint is None and self.checkpoints.stable is None:
            # A chain without its anchor is unusable; the requester-side
            # agreement should never let this through, but never crash on
            # a malformed combination — just ignore the chain.
            deltas = ()
        if checkpoint is not None or deltas:
            # Capture the local anchor *before* adopting: when responders
            # omitted the full snapshot (our have_ordinal proved we hold
            # it), the chain applies on top of our own stable chain.
            anchor = checkpoint if checkpoint is not None else self.checkpoints.stable
            prior = (
                tuple(self.checkpoints.stable_deltas) if checkpoint is None else ()
            )
            self.checkpoints.adopt_chain(checkpoint, deltas)
            if deltas:
                self.restore_from_chain(anchor, prior + tuple(deltas))
            else:
                self.restore_from_checkpoint(checkpoint)
        for record in batches:
            self.update_log[record.batch_seq] = record
            self.store.append(record)
            for ordinal, payload in record.entries:
                self.replay_entry(ordinal, payload)
        if batches:
            resume = batches[-1].resume
        elif deltas:
            resume = deltas[-1].resume
        elif checkpoint is not None:
            resume = checkpoint.resume
        else:
            resume = None
        if resume is not None:
            self.engine.fast_forward(
                resume.batch_seq,
                resume.ordinal,
                resume.ordered_through_dict(),
                view=view,
            )
        elif view > self.engine.view:
            self.engine.fast_forward(0, 0, {}, view=view)
        self.checkpoints.retry_stability()
        self.on_state_transfer_done()

    def restore_from_checkpoint(self, checkpoint: CheckpointMsg) -> None:
        """Storage replicas keep the blob opaque; nothing to apply."""

    def restore_from_chain(
        self,
        checkpoint: CheckpointMsg,
        deltas: Tuple[CheckpointDeltaMsg, ...],
    ) -> None:
        """Storage replicas keep chain blobs opaque; nothing to apply."""

    def replay_entry(self, ordinal: int, payload: object) -> None:
        """Storage replicas only store; executing replicas re-execute."""

    def on_state_transfer_done(self) -> None:
        order = self.engine.order
        if order.committed and (order.last_executed + 1) not in order.committed:
            # Batches committed while the transfer was in flight and we
            # still miss their predecessors: run one more round (each
            # round closes the window to the traffic of the previous one).
            self.trace("replica.post-transfer-gap", ordinal=self.executed_ordinal())
            self.xfer.initiate(reason="post-transfer-gap")
            return
        self.trace("replica.caught-up", ordinal=self.executed_ordinal())

    # -- checkpoint hooks --------------------------------------------------------------------------------------

    def build_checkpoint_blob(self):
        raise ProtocolError(f"{self.host}: storage replicas do not checkpoint")

    def build_checkpoint_state(self) -> dict:
        raise ProtocolError(f"{self.host}: storage replicas do not checkpoint")

    def encode_checkpoint_state(self, state: dict):
        raise ProtocolError(f"{self.host}: storage replicas do not checkpoint")

    def build_delta_blob(self, base_state: dict, state: dict):
        raise ProtocolError(f"{self.host}: storage replicas do not checkpoint")

    # -- proactive recovery -------------------------------------------------------------------------------------

    def go_down(self) -> None:
        """Crash / begin proactive recovery: drop off the network."""
        self.online = False
        self.engine.stop()
        self.env.network.set_host_down(self.host, True)
        self.trace("replica.down")

    def recover(self) -> None:
        """Finish proactive recovery: wipe session state, rejoin, catch up.

        Hardware-protected keys survive (the keystore's contract); all
        session state — engine, logs, checkpoints, application state — is
        rebuilt from scratch and then recovered via state transfer.
        """
        self.keystore.wipe()
        self.incarnation += 1
        self.update_log = {}
        self.checkpoints = CheckpointManager(
            self, self.env.checkpoint_interval, self.env.checkpoint_delta_interval
        )
        self.xfer = StateTransferManager(self)
        self.reset_role_state()
        self.engine = self._make_engine()
        self.env.network.set_host_down(self.host, False)
        self.online = True
        self.engine.start()
        self.trace("replica.recovered", incarnation=self.incarnation)
        recovered = self.recover_from_store()
        if recovered.empty:
            self.xfer.initiate(reason="proactive-recovery")
        else:
            self.xfer.initiate(
                reason="proactive-recovery",
                have_seq=recovered.batch_seq,
                have_ordinal=recovered.ordinal,
            )

    def recover_from_store(self) -> StoreRecovery:
        """Replay whatever the durable store preserved across the crash.

        Restores the newest verified checkpoint, replays the *contiguous*
        run of logged batches above it (gaps and anything beyond them are
        left for network state transfer), and fast-forwards the engine to
        the resulting resume point. Damage is detected, traced, and
        degraded around — never served: a corrupt checkpoint or segment
        simply shrinks what recovers locally.

        With the sim's :class:`MemoryStore` (``load()`` always empty) this
        is a no-op, preserving trace byte-identity for existing seeds.
        """
        recovery = StoreRecovery()
        load = self.store.load()
        if load.damaged:
            recovery.corruption_detected = True
            self.metrics.counter("store.corruption_detected", host=self.host).inc()
            self.trace(
                "store.corrupted",
                segments=load.corrupt_segments,
                checkpoints=load.corrupt_checkpoints,
                deltas=load.corrupt_deltas,
            )
        if load.truncated_tail:
            self.trace("store.truncated")
        if load.empty:
            return recovery
        checkpoint = load.checkpoint
        chain = load.chain_deltas() if checkpoint is not None else []
        base_seq = 0
        if checkpoint is not None and chain:
            try:
                self.restore_from_chain(checkpoint, tuple(chain))
            except Exception:
                # A delta verified (magic + CRC) but its content does not
                # decrypt/parse or apply. The chain is broken: fall back
                # to the full snapshot alone (plus the log tail).
                recovery.corruption_detected = True
                self.metrics.counter("store.corruption_detected", host=self.host).inc()
                self.trace("store.corrupted", stage="delta-restore")
                chain = []
            else:
                self.checkpoints.adopt_chain(checkpoint, tuple(chain))
                base_seq = chain[-1].resume.batch_seq
                recovery.ordinal = chain[-1].ordinal
                recovery.bytes_replayed += load.checkpoint_bytes + load.delta_bytes
        if checkpoint is not None and not chain:
            try:
                self.restore_from_checkpoint(checkpoint)
            except Exception:
                # The file verified (magic + CRC) but the content does not
                # decrypt/parse — e.g. bit rot below CRC collision odds or
                # a hostile rewrite. Fall back to the network entirely.
                recovery.corruption_detected = True
                self.metrics.counter("store.corruption_detected", host=self.host).inc()
                self.trace("store.corrupted", stage="checkpoint-restore")
                checkpoint = None
            else:
                self.checkpoints.adopt_stable(checkpoint)
                base_seq = checkpoint.resume.batch_seq
                recovery.ordinal = checkpoint.ordinal
                recovery.bytes_replayed += load.checkpoint_bytes
        if chain:
            resume = chain[-1].resume
        elif checkpoint is not None:
            resume = checkpoint.resume
        else:
            resume = None
        next_seq = base_seq + 1
        for record in load.records:
            if record.batch_seq < next_seq:
                continue
            if record.batch_seq > next_seq:
                break  # a gap: the rest must come over the network
            self.update_log[record.batch_seq] = record
            for ordinal, payload in record.entries:
                self.replay_entry(ordinal, payload)
            resume = record.resume
            recovery.records += 1
            recovery.bytes_replayed += load.record_bytes.get(record.batch_seq, 0)
            next_seq += 1
        if resume is not None:
            self.engine.fast_forward(
                resume.batch_seq,
                resume.ordinal,
                resume.ordered_through_dict(),
                view=self.engine.view,
            )
            recovery.batch_seq = resume.batch_seq
        if not recovery.empty:
            self.metrics.counter("store.recovered_bytes", host=self.host).inc(
                recovery.bytes_replayed
            )
            self.metrics.counter("store.recovered_records", host=self.host).inc(
                recovery.records
            )
            self.trace(
                "store.recovered",
                ordinal=recovery.ordinal,
                batch_seq=recovery.batch_seq,
                records=recovery.records,
                bytes=recovery.bytes_replayed,
            )
        return recovery

    def reset_role_state(self) -> None:
        """Subclass hook: clear role-specific session state."""


class StorageReplica(ReplicaBase):
    """A data-center replica: orders and stores, never executes.

    This class deliberately has *no* application instance, no client keys,
    and no decryption capability — confidentiality by construction, and
    the auditor verifies it dynamically as well.
    """

    hosts_application = False

    def stored_ciphertext_count(self) -> int:
        """How many encrypted updates this replica currently stores."""
        count = 0
        for record in self.update_log.values():
            for _ordinal, payload in record.entries:
                if isinstance(payload, EncryptedUpdate):
                    count += 1
                elif isinstance(payload, SignedUpdateBatch):
                    count += len(payload.items)
        return count


class ExecutingReplica(ReplicaBase):
    """An application-hosting replica (on-premises in Confidential Spire;
    every replica in the Spire baseline)."""

    hosts_application = True

    #: Responses retained per client for retransmit replay; must exceed
    #: the number of updates a proxy can pipeline while one reply is lost
    #: (retransmit window / update interval).
    response_cache_window = 32

    def __init__(
        self,
        env: ReplicaEnv,
        host: str,
        keystore: HardwareKeyStore,
        app_factory: Callable[[], Application],
        intro_share: Optional[ThresholdKeyShare],
        response_share: ThresholdKeyShare,
    ):
        self._app_factory = app_factory
        self.app: Application = app_factory()
        self.intro_share = intro_share
        self.response_share = response_share
        super().__init__(env, host, keystore)
        self.intro = IntroductionManager(self, failover_delay=env.failover_delay)
        self.key_manager = KeyManager()
        self.renewal = KeyRenewalManager(
            self,
            validity=env.key_validity,
            slack=env.key_slack,
            enabled=env.key_renewal_enabled,
        )
        self._executed: Dict[str, ClientProgress] = {}
        # Recent threshold-signed responses, kept per client for a window
        # of sequence numbers: the proxy pipelines updates, so the reply
        # for seq n must stay replayable to retransmits even after seqs
        # n+1.. complete (a single "last response" slot loses it).
        self._response_cache: Dict[str, Dict[int, ClientResponse]] = {}
        self._response_shares: Dict[Tuple[str, int, bytes], Dict[int, PartialSignature]] = {}
        self._pending_responses: Dict[Tuple[str, int], bytes] = {}
        self._responses_combined: Set[Tuple[str, int]] = set()
        # BatchLab: responses produced while executing one ordered batch,
        # certified together under one threshold signature per batch.
        self._response_batch_buffer: List[Tuple[str, int, bytes]] = []
        self._response_batch_cost = 0.0
        self._pending_response_batches: Dict[bytes, Tuple[Tuple[str, int, bytes], ...]] = {}
        self._response_batch_shares: Dict[bytes, Dict[int, PartialSignature]] = {}
        self._response_batches_combined: Set[bytes] = set()
        metrics = self.metrics
        self._m_executed = metrics.counter("replica.updates_executed")
        self._m_resp_partial = metrics.counter("crypto.threshold.partial", op="response")
        self._m_resp_combine = metrics.counter("crypto.threshold.combine", op="response")
        self._m_resp_combined = metrics.counter("response.combined")
        self._m_aes_decrypt = metrics.counter("crypto.aes.decrypt")
        self._m_hw_encrypt = metrics.counter("crypto.hw.encrypt")
        self._m_hw_decrypt = metrics.counter("crypto.hw.decrypt")
        self._install_initial_keys()

    @property
    def client_registry(self) -> Dict[str, RsaPublicKey]:
        return self.env.client_registry

    @property
    def intro_public(self) -> ThresholdPublicKey:
        if self.env.intro_public is None:
            raise ProtocolError("no intro threshold key configured")
        return self.env.intro_public

    def _install_initial_keys(self) -> None:
        if not self.confidential:
            return
        validity = (
            self.env.key_validity if self.env.key_renewal_enabled else 10 ** 12
        )
        for alias, keys in self.env.initial_client_keys.items():
            self.key_manager.register_client(alias, keys, validity)

    # -- client path ------------------------------------------------------------------

    def on_client_update(self, src: str, message: ClientUpdate) -> None:
        self.observe_plaintext(message.body.label, channel="client-network")
        self.intro.on_client_update(message)

    def on_intro_share(self, src: str, message: IntroShare) -> None:
        self.intro.on_intro_share(src, message)

    def on_batch_proposal(self, src: str, message: BatchProposal) -> None:
        self.intro.on_batch_proposal(src, message)

    def on_batch_share(self, src: str, message: BatchShare) -> None:
        self.intro.on_batch_share(src, message)

    @property
    def batching(self) -> bool:
        return self.env.intro_batch_size > 1

    def executed_seq(self, alias: str) -> int:
        """Highest client sequence seen executed (renewal trigger input)."""
        progress = self._executed.get(alias)
        return progress.high_watermark if progress else 0

    def is_executed(self, alias: str, client_seq: int) -> bool:
        progress = self._executed.get(alias)
        return progress is not None and progress.is_executed(client_seq)

    def _mark_executed(self, alias: str, client_seq: int) -> None:
        self._executed.setdefault(alias, ClientProgress()).mark(client_seq)

    # -- ordered entries ----------------------------------------------------------------

    def store_entry(self, ordinal: int, payload: object) -> None:
        if isinstance(payload, EncryptedUpdate):
            self._execute_encrypted(payload)
        elif isinstance(payload, SignedUpdateBatch):
            for item in payload.items:
                self._execute_encrypted(item)
        elif isinstance(payload, ClientUpdate):
            self._execute_plain(payload)
        elif isinstance(payload, KeyProposal):
            self.renewal.on_ordered_proposal(payload)

    def _execute_encrypted(self, payload: EncryptedUpdate) -> None:
        if self.is_executed(payload.alias, payload.client_seq):
            return
        packed = self.key_manager.decrypt_update(
            payload.alias, payload.client_seq, payload.ciphertext
        )
        self._m_aes_decrypt.inc()
        client_id, client_seq, body = unpack_update(packed)
        self.observe_plaintext("client-update-body", channel="decryption")
        self._apply_update(
            payload.alias,
            client_id,
            client_seq,
            body,
            extra_cost=self.costs.update_decrypt,
        )

    def _execute_plain(self, payload: ClientUpdate) -> None:
        alias = client_alias(payload.client_id)
        if self.is_executed(alias, payload.client_seq):
            return
        self.observe_plaintext(payload.body.label, channel="execution")
        self._apply_update(alias, payload.client_id, payload.client_seq, payload.body.data)

    def _apply_update(
        self,
        alias: str,
        client_id: str,
        client_seq: int,
        body: bytes,
        extra_cost: float = 0.0,
    ) -> None:
        response_body = self.app.execute(client_id, client_seq, body)
        self._mark_executed(alias, client_seq)
        self.intro.mark_executed(alias, client_seq)
        self.renewal.on_client_progress(alias)
        self._m_executed.inc()
        self.trace("replica.executed", client=alias, seq=client_seq)
        if response_body is not None:
            if self.batching:
                # The threshold partial is amortised over every response
                # from this ordered batch; per-update costs accumulate and
                # are charged once at the flush.
                self._response_batch_buffer.append(
                    (client_id, client_seq, response_body)
                )
                self._response_batch_cost += extra_cost + self.costs.app_execute
                return
            cost = extra_cost + self.costs.app_execute + self.costs.threshold_partial
            self.after(cost, self._share_response, client_id, client_seq, response_body)

    # -- response pipeline -----------------------------------------------------------------

    def _share_response(self, client_id: str, client_seq: int, body: bytes) -> None:
        if not self.online:
            return
        response = ClientResponse(
            client_id=client_id,
            client_seq=client_seq,
            body=Sensitive(body, label="client-response"),
            threshold_sig=b"",
        )
        signing = response.signing_bytes()
        self._m_resp_partial.inc()
        partial = self.response_share.sign_partial(signing)
        import hashlib

        digest = hashlib.sha256(signing).digest()
        self._pending_responses[(client_id, client_seq)] = body
        share = ResponseShare(
            client_id=client_id,
            client_seq=client_seq,
            response_digest=digest,
            partial=partial,
        )
        for peer in self.executing_peers():
            self.network_send(peer, share)
        self.on_response_share(self.host, share)

    def on_response_share(self, src: str, message: ResponseShare) -> None:
        key = (message.client_id, message.client_seq, message.response_digest)
        partials = self._response_shares.setdefault(key, {})
        partials[message.partial.signer] = message.partial
        pending_key = (message.client_id, message.client_seq)
        if (
            len(partials) >= self.env.response_public.threshold
            and pending_key in self._pending_responses
            and pending_key not in self._responses_combined
        ):
            self._responses_combined.add(pending_key)
            self.after(
                self.costs.threshold_combine, self._combine_response, pending_key, key
            )

    def _combine_response(self, pending_key, vote_key) -> None:
        if not self.online:
            return
        body = self._pending_responses.get(pending_key)
        if body is None:
            return
        client_id, client_seq = pending_key
        response = ClientResponse(
            client_id=client_id,
            client_seq=client_seq,
            body=Sensitive(body, label="client-response"),
            threshold_sig=b"",
        )
        partials = list(self._response_shares.get(vote_key, {}).values())
        self._m_resp_combine.inc()
        try:
            signature = combine_with_retry(
                self.env.response_public, response.signing_bytes(), partials
            )
        except SignatureError:
            # Not enough honest shares yet (Byzantine co-signers); clear
            # the in-progress marker so a later share retriggers us.
            self.trace("response.combine-failed", client=client_id, seq=client_seq)
            self._responses_combined.discard(pending_key)
            return
        del self._pending_responses[pending_key]
        signed = ClientResponse(
            client_id=client_id,
            client_seq=client_seq,
            body=response.body,
            threshold_sig=signature,
        )
        cache = self._response_cache.setdefault(client_id, {})
        cache[client_seq] = signed
        while len(cache) > self.response_cache_window:
            del cache[min(cache)]
        self._response_shares.pop(vote_key, None)
        self._m_resp_combined.inc()
        # Span milestone: the response is fully threshold-signed here; what
        # remains is the network trip back to the proxy plus verification.
        self.trace(
            "response.combined", alias=client_alias(client_id), seq=client_seq
        )
        self._maybe_send_response(signed)

    # -- batched response pipeline (BatchLab) -------------------------------------

    def on_batch_delivered(self) -> None:
        if not self._response_batch_buffer:
            return
        items = tuple(self._response_batch_buffer)
        self._response_batch_buffer = []
        cost = self._response_batch_cost + self.costs.threshold_partial
        self._response_batch_cost = 0.0
        self.after(cost, self._share_response_batch, items)

    @staticmethod
    def _response_leaf(client_id: str, client_seq: int, body: bytes) -> bytes:
        # Matches ClientResponse.signing_bytes / CertifiedResponse.leaf:
        # the Merkle leaf is the digest of the bytes a singleton response
        # would have threshold-signed directly.
        return hashlib.sha256(
            f"response|{client_id}|{client_seq}|".encode("utf-8") + body
        ).digest()

    def _share_response_batch(self, items) -> None:
        if not self.online:
            return
        leaves = [self._response_leaf(cid, seq, body) for cid, seq, body in items]
        root = merkle_root(leaves)
        self._pending_response_batches[root] = items
        self._m_resp_partial.inc()
        partial = sign_partial_via(
            self.env.crypto_pool,
            self.response_share,
            response_batch_signing_bytes(root, len(items)),
        )
        share = ResponseBatchShare(root=root, count=len(items), partial=partial)
        for peer in self.executing_peers():
            self.network_send(peer, share)
        self.on_response_batch_share(self.host, share)

    def on_response_batch_share(self, src: str, message: ResponseBatchShare) -> None:
        partials = self._response_batch_shares.setdefault(message.root, {})
        partials[message.partial.signer] = message.partial
        if (
            len(partials) >= self.env.response_public.threshold
            and message.root in self._pending_response_batches
            and message.root not in self._response_batches_combined
        ):
            self._response_batches_combined.add(message.root)
            self.after(
                self.costs.threshold_combine,
                self._combine_response_batch,
                message.root,
            )

    def _combine_response_batch(self, root: bytes) -> None:
        if not self.online:
            return
        items = self._pending_response_batches.get(root)
        if items is None:
            return
        partials = list(self._response_batch_shares.get(root, {}).values())
        self._m_resp_combine.inc()
        try:
            batch_sig = combine_via(
                self.env.crypto_pool,
                self.env.response_public,
                response_batch_signing_bytes(root, len(items)),
                partials,
            )
        except SignatureError:
            self.trace("response.batch-combine-failed", count=len(items))
            self._response_batches_combined.discard(root)
            return
        del self._pending_response_batches[root]
        self._response_batch_shares.pop(root, None)
        leaves = [self._response_leaf(cid, seq, body) for cid, seq, body in items]
        for index, (client_id, client_seq, body) in enumerate(items):
            certified = CertifiedResponse(
                client_id=client_id,
                client_seq=client_seq,
                body=Sensitive(body, label="client-response"),
                batch_root=root,
                batch_count=len(items),
                batch_sig=batch_sig,
                proof=merkle_proof(leaves, index),
            )
            cache = self._response_cache.setdefault(client_id, {})
            cache[client_seq] = certified
            while len(cache) > self.response_cache_window:
                del cache[min(cache)]
            self._m_resp_combined.inc()
            self.trace(
                "response.combined", alias=client_alias(client_id), seq=client_seq
            )
            self._maybe_send_response(certified)

    def _maybe_send_response(self, response) -> None:
        """Send to the proxy if this replica is in the client's responder
        set (first f+1 on-premises replicas in preference order)."""
        site = self.env.network.topology.site_of(self.host)
        if not site.is_on_premises:
            return
        alias = client_alias(response.client_id)
        rank = self.intro.introducer_rank(alias)
        if rank > self.f:
            return
        proxy = self.env.proxy_of_client.get(response.client_id)
        if proxy is not None:
            self.network_send(proxy, response)

    def resend_response(self, client_id: str, client_seq: int) -> None:
        """A retransmitted update for an already-executed sequence: resend
        the cached threshold-signed response (Section V-C)."""
        cached = self._response_cache.get(client_id, {}).get(client_seq)
        if cached is not None:
            proxy = self.env.proxy_of_client.get(client_id)
            if proxy is not None:
                self.network_send(proxy, cached)

    # -- checkpointing --------------------------------------------------------------------------

    @staticmethod
    def _response_to_state(seq: int, response) -> list:
        if isinstance(response, CertifiedResponse):
            # Versioned by length: certified entries carry the batch
            # certificate and inclusion proof alongside the body.
            return [
                seq,
                response.body.data.hex(),
                response.batch_sig.hex(),
                response.batch_root.hex(),
                response.batch_count,
                response.proof.leaf_index,
                [[sib.hex(), int(right)] for sib, right in response.proof.path],
            ]
        return [seq, response.body.data.hex(), response.threshold_sig.hex()]

    @staticmethod
    def _response_from_state(client: str, entry: list):
        from repro.crypto.merkle import MerkleProof

        if len(entry) == 3:
            seq, body_hex, sig_hex = entry
            return ClientResponse(
                client_id=client,
                client_seq=int(seq),
                body=Sensitive(bytes.fromhex(body_hex), label="client-response"),
                threshold_sig=bytes.fromhex(sig_hex),
            )
        seq, body_hex, sig_hex, root_hex, count, leaf_index, path = entry
        return CertifiedResponse(
            client_id=client,
            client_seq=int(seq),
            body=Sensitive(bytes.fromhex(body_hex), label="client-response"),
            batch_root=bytes.fromhex(root_hex),
            batch_count=int(count),
            batch_sig=bytes.fromhex(sig_hex),
            proof=MerkleProof(
                leaf_index=int(leaf_index),
                path=tuple((bytes.fromhex(sib), bool(right)) for sib, right in path),
            ),
        )

    #: Hex characters per ``app`` block in the delta-friendly state shape.
    _APP_BLOCK_HEX = 1024

    def build_checkpoint_state(self) -> dict:
        """The delta-friendly state document (CompactLab chains).

        Structured so :func:`repro.core.statedelta.diff_state` produces
        small diffs between consecutive checkpoints: the app contributes
        its structured :meth:`~repro.core.app.Application.state_doc` when
        it has one (only changed keys ship), falling back to the opaque
        snapshot split into fixed-size hex blocks keyed by index (only
        touched blocks ship); each client's response cache is keyed by
        sequence number (only new/evicted entries ship). The legacy
        full-blob shape (:meth:`build_checkpoint_blob`) is kept verbatim
        for the delta-off path — its bytes are a trace-identity
        contract."""
        doc = self.app.state_doc()
        if doc is not None:
            app_state: dict = {"doc": doc}
        else:
            blob_hex = self.app.snapshot().hex()
            app_state = {
                "blocks": {
                    f"{index:08d}": blob_hex[offset : offset + self._APP_BLOCK_HEX]
                    for index, offset in enumerate(
                        range(0, len(blob_hex), self._APP_BLOCK_HEX)
                    )
                }
            }
        state = {
            "app": app_state,
            "executed": {
                alias: progress.to_state()
                for alias, progress in sorted(self._executed.items())
            },
            "responses": {
                client: {
                    str(seq): self._response_to_state(seq, r)
                    for seq, r in sorted(cache.items())
                }
                for client, cache in sorted(self._response_cache.items())
            },
        }
        if self.confidential:
            state["keys"] = self.key_manager.to_state()
            state["renewal"] = self.renewal.to_state()
        return state

    def encode_checkpoint_state(self, state: dict):
        packed = json.dumps(state, sort_keys=True).encode("utf-8")
        self.observe_plaintext("state-snapshot", channel="checkpoint")
        if self.confidential:
            self._m_hw_encrypt.inc()
            return self.keystore.hardware_encrypt(packed)
        return Sensitive(packed, label="state-snapshot")

    def build_checkpoint_blob(self):
        state = {
            "app": self.app.snapshot().hex(),
            "executed": {
                alias: progress.to_state()
                for alias, progress in sorted(self._executed.items())
            },
            "responses": {
                client: [
                    self._response_to_state(seq, r)
                    for seq, r in sorted(cache.items())
                ]
                for client, cache in sorted(self._response_cache.items())
            },
        }
        if self.confidential:
            state["keys"] = self.key_manager.to_state()
            state["renewal"] = self.renewal.to_state()
        return self.encode_checkpoint_state(state)

    def build_delta_blob(self, base_state: dict, state: dict):
        """Encode the diff ``base_state -> state`` exactly like a full blob
        (hardware-encrypted when confidential): a delta leaks no more than
        the snapshot it abbreviates."""
        delta = diff_state(base_state, state)
        packed = json.dumps(delta, sort_keys=True).encode("utf-8")
        self.observe_plaintext("state-delta", channel="checkpoint")
        if self.confidential:
            self._m_hw_encrypt.inc()
            return self.keystore.hardware_encrypt(packed)
        return Sensitive(packed, label="state-delta")

    def decode_checkpoint_blob(self, blob_bytes: bytes) -> dict:
        if self.confidential:
            self._m_hw_decrypt.inc()
            packed = self.keystore.hardware_decrypt(blob_bytes)
        else:
            packed = blob_bytes
        return json.loads(packed.decode("utf-8"))

    def restore_from_checkpoint(self, checkpoint: CheckpointMsg) -> None:
        state = self.decode_checkpoint_blob(checkpoint.blob_bytes())
        self._install_state(state)

    def restore_from_chain(
        self,
        checkpoint: CheckpointMsg,
        deltas: Tuple[CheckpointDeltaMsg, ...],
    ) -> None:
        state = self.decode_checkpoint_blob(checkpoint.blob_bytes())
        for delta in deltas:
            patch = self.decode_checkpoint_blob(delta.blob_bytes())
            state = apply_delta(state, patch)
        self._install_state(state)

    def _install_state(self, state: dict) -> None:
        app = state["app"]
        if isinstance(app, dict) and "doc" in app:
            # Delta-friendly shape: the app's structured state document.
            self.app.restore_state_doc(app["doc"])
        else:
            if isinstance(app, dict):
                # Delta-friendly fallback: fixed-size hex blocks by index.
                blocks = app["blocks"]
                app = "".join(blocks[key] for key in sorted(blocks))
            self.app.restore(bytes.fromhex(app))
        self._executed = {
            alias: ClientProgress.from_state(progress_state)
            for alias, progress_state in state["executed"].items()
        }
        self._response_cache = {}
        for client, entries in state["responses"].items():
            cache = self._response_cache.setdefault(client, {})
            # Legacy shape: a list of entries; delta-friendly shape: a
            # dict keyed by str(client_seq). Entries are identical.
            if isinstance(entries, dict):
                entries = [entries[key] for key in sorted(entries, key=int)]
            for entry in entries:
                response = self._response_from_state(client, entry)
                cache[response.client_seq] = response
        if self.confidential and "keys" in state:
            self.key_manager.restore_state(state["keys"])
            self.renewal.restore_state(state.get("renewal", {}))
        self.observe_plaintext("state-snapshot", channel="state-transfer")

    # -- state transfer replay ---------------------------------------------------------------------

    def replay_entry(self, ordinal: int, payload: object) -> None:
        if isinstance(payload, SignedUpdateBatch):
            for item in payload.items:
                self.replay_entry(ordinal, item)
        elif isinstance(payload, EncryptedUpdate):
            if self.is_executed(payload.alias, payload.client_seq):
                return
            packed = self.key_manager.decrypt_update(
                payload.alias, payload.client_seq, payload.ciphertext
            )
            client_id, client_seq, body = unpack_update(packed)
            self.app.execute(client_id, client_seq, body)
            self._mark_executed(payload.alias, client_seq)
            self.renewal.on_client_progress(payload.alias)
        elif isinstance(payload, ClientUpdate):
            alias = client_alias(payload.client_id)
            if self.is_executed(alias, payload.client_seq):
                return
            self.app.execute(payload.client_id, payload.client_seq, payload.body.data)
            self._mark_executed(alias, payload.client_seq)
        elif isinstance(payload, KeyProposal):
            self.renewal.on_ordered_proposal(payload)

    # -- recovery -----------------------------------------------------------------------------------

    def reset_role_state(self) -> None:
        self.app = self._app_factory()
        self.intro = IntroductionManager(self, failover_delay=self.env.failover_delay)
        self.key_manager = KeyManager()
        self.renewal = KeyRenewalManager(
            self,
            validity=self.env.key_validity,
            slack=self.env.key_slack,
            enabled=self.env.key_renewal_enabled,
        )
        self._executed = {}
        self._response_cache = {}
        self._response_shares = {}
        self._pending_responses = {}
        self._responses_combined = set()
        self._response_batch_buffer = []
        self._response_batch_cost = 0.0
        self._pending_response_batches = {}
        self._response_batch_shares = {}
        self._response_batches_combined = set()
        self._install_initial_keys()
