"""Deterministic state-snapshot deltas for CompactLab checkpoints.

A checkpoint state document is a JSON-able dict (see
``ExecutingReplica.build_checkpoint_blob``). Between full snapshots the
checkpoint chain carries *diffs* of consecutive documents instead of the
whole state, so checkpoint wire/disk bytes track the change rate rather
than the state size.

The diff format is itself a JSON-able dict so the existing deterministic
``json.dumps(..., sort_keys=True)`` + hardware-key encryption pipeline
applies unchanged (digest voting relies on every correct replica
producing bit-identical blobs):

    {"set": {key: new_value, ...},      # added or replaced top-level keys
     "sub": {key: <nested diff>, ...},  # recursive diff of dict values
     "del": [key, ...]}                 # removed keys (sorted)

Only dict values recurse; any other changed value is replaced wholesale.
Keys are only ever strings here (JSON round-trips guarantee it), which
keeps ``del`` sorting and digest determinism trivial.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

__all__ = ["diff_state", "apply_delta", "apply_chain", "is_empty_delta"]


def diff_state(old: Dict, new: Dict) -> Dict:
    """Return a delta ``d`` such that ``apply_delta(old, d) == new``."""
    if not isinstance(old, dict) or not isinstance(new, dict):
        raise TypeError("state documents must be dicts")
    out: Dict = {}
    set_part: Dict = {}
    sub_part: Dict = {}
    for key, value in new.items():
        if key not in old:
            set_part[key] = value
            continue
        prev = old[key]
        if prev == value:
            continue
        if isinstance(prev, dict) and isinstance(value, dict):
            sub_part[key] = diff_state(prev, value)
        else:
            set_part[key] = value
    removed: List = sorted(key for key in old if key not in new)
    if set_part:
        out["set"] = set_part
    if sub_part:
        out["sub"] = sub_part
    if removed:
        out["del"] = removed
    return out


def apply_delta(state: Dict, delta: Dict) -> Dict:
    """Apply one delta, returning a new document (input left untouched)."""
    if not isinstance(state, dict) or not isinstance(delta, dict):
        raise TypeError("state and delta must be dicts")
    unknown = set(delta) - {"set", "sub", "del"}
    if unknown:
        raise ValueError(f"malformed delta: unknown sections {sorted(unknown)}")
    out = dict(state)
    for key in delta.get("del", ()):  # removals first: set may re-add
        out.pop(key, None)
    for key, nested in delta.get("sub", {}).items():
        base = out.get(key)
        if not isinstance(base, dict):
            raise ValueError(f"delta recurses into non-dict key {key!r}")
        out[key] = apply_delta(base, nested)
    for key, value in delta.get("set", {}).items():
        out[key] = value
    return out


def apply_chain(full: Dict, deltas: Iterable[Dict]) -> Dict:
    """Fold a contiguous delta chain onto its full-snapshot anchor."""
    state = full
    for delta in deltas:
        state = apply_delta(state, delta)
    return state


def is_empty_delta(delta: Dict) -> bool:
    return not delta
