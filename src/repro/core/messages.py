"""CP-ITM message types (client path, checkpoints, state transfer, keys).

These are the messages the paper's middleware adds around Prime. Messages
that can carry plaintext application data expose ``sensitive_parts()`` so
the confidentiality auditor can track exposure (see
:mod:`repro.core.confidentiality`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.core.confidentiality import Sensitive
from repro.crypto.merkle import MerkleProof
from repro.crypto.threshold import PartialSignature

_HEADER = 64


def client_alias(client_id: str) -> str:
    """Pseudonymous client identifier exposed to data-center replicas.

    Data-center replicas need *some* stable handle to store updates and to
    let on-premises replicas select decryption keys, but must not learn
    client identities (Section V-A); a one-way alias provides that.
    """
    return hashlib.sha256(client_id.encode("utf-8")).hexdigest()[:16]


# --------------------------------------------------------------------------
# Client path
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ClientUpdate:
    """A proxy-signed client update, as received by on-premises replicas."""

    client_id: str
    client_seq: int
    body: Sensitive
    signature: bytes = b""

    def signing_bytes(self) -> bytes:
        return (
            f"update|{self.client_id}|{self.client_seq}|".encode("utf-8")
            + self.body.data
        )

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.body) + len(self.signature)

    def sensitive_parts(self) -> List[str]:
        return [self.body.label]

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()


@dataclass(frozen=True)
class EncryptedUpdate:
    """A client update after confidential introduction (Section V-A).

    ``ciphertext`` is the deterministic ``iv || AES-CBC`` encryption of the
    update's signing bytes; ``threshold_sig`` (once present) proves f+1
    on-premises replicas vouched for it. Data-center replicas verify the
    threshold signature and store the message without decrypting it.
    """

    alias: str
    client_seq: int
    ciphertext: bytes
    threshold_sig: bytes = b""

    def signing_bytes(self) -> bytes:
        return (
            f"enc-update|{self.alias}|{self.client_seq}|".encode("utf-8")
            + self.ciphertext
        )

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.ciphertext) + len(self.threshold_sig)


@dataclass(frozen=True)
class IntroShare:
    """One on-premises replica's threshold-signature share on an
    encrypted update awaiting introduction."""

    alias: str
    client_seq: int
    update_digest: bytes
    partial: PartialSignature

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.update_digest) + 192


@dataclass(frozen=True)
class ResponseShare:
    """Threshold-signature share on a client response, exchanged among
    executing replicas so each can assemble the full signed response."""

    client_id: str
    client_seq: int
    response_digest: bytes
    partial: PartialSignature

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.response_digest) + 192


@dataclass(frozen=True)
class ClientResponse:
    """A fully threshold-signed response, sent to the client's proxy."""

    client_id: str
    client_seq: int
    body: Sensitive
    threshold_sig: bytes

    def signing_bytes(self) -> bytes:
        return (
            f"response|{self.client_id}|{self.client_seq}|".encode("utf-8")
            + self.body.data
        )

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.body) + len(self.threshold_sig)

    def sensitive_parts(self) -> List[str]:
        return [self.body.label]


# --------------------------------------------------------------------------
# Batched introduction and responses (BatchLab)
# --------------------------------------------------------------------------


def update_batch_signing_bytes(root: bytes, count: int) -> bytes:
    """What the intro group threshold-signs for a batch: the Merkle root
    over the member updates' digests, bound to the batch width."""
    return f"update-batch|{count}|".encode("utf-8") + root


def response_batch_signing_bytes(root: bytes, count: int) -> bytes:
    """What the response group threshold-signs for a batch of responses."""
    return f"response-batch|{count}|".encode("utf-8") + root


@dataclass(frozen=True)
class BatchProposal:
    """A proposer's window of encrypted updates, offered to its
    on-premises peers for co-signing under one Merkle root.

    Peers verify each member against the ciphertext they derived
    independently from the same proxy-signed update (deterministic
    encryption makes the two bit-identical), so co-signing the root never
    requires trusting the proposer about any member's content.
    """

    proposer: str
    batch_no: int
    items: Tuple[EncryptedUpdate, ...]

    def wire_size(self) -> int:
        return _HEADER + 24 + sum(item.wire_size() - _HEADER for item in self.items)


@dataclass(frozen=True)
class BatchShare:
    """One on-premises replica's threshold share over a proposed batch's
    Merkle root, returned to the proposer for combining."""

    proposer: str
    batch_no: int
    root: bytes
    count: int
    partial: PartialSignature

    def signing_bytes(self) -> bytes:
        return update_batch_signing_bytes(self.root, self.count)

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.root) + 192


@dataclass(frozen=True)
class SignedUpdateBatch:
    """A fully certified batch of encrypted updates: one threshold
    signature over the Merkle root vouches for every member. Ordered by
    Prime as a single payload, amortizing pre-order message volume and
    signing across the window."""

    root: bytes
    items: Tuple[EncryptedUpdate, ...]
    threshold_sig: bytes

    def signing_bytes(self) -> bytes:
        return update_batch_signing_bytes(self.root, len(self.items))

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()

    def wire_size(self) -> int:
        return (
            _HEADER
            + 24
            + len(self.root)
            + len(self.threshold_sig)
            + sum(item.wire_size() - _HEADER for item in self.items)
        )


@dataclass(frozen=True)
class ResponseBatchShare:
    """Threshold share over a Merkle root of response digests, exchanged
    among executing replicas after processing one ordered batch."""

    root: bytes
    count: int
    partial: PartialSignature

    def signing_bytes(self) -> bytes:
        return response_batch_signing_bytes(self.root, self.count)

    def wire_size(self) -> int:
        return _HEADER + 16 + len(self.root) + 192


@dataclass(frozen=True)
class CertifiedResponse:
    """A batched client response: the batch-level threshold signature
    plus this response's Merkle inclusion proof.

    A proxy verifies one threshold signature per *batch* (cacheable
    across the batch's members) and one logarithmic hash path per
    response, instead of one threshold signature per response.
    """

    client_id: str
    client_seq: int
    body: Sensitive
    batch_root: bytes
    batch_count: int
    batch_sig: bytes
    proof: MerkleProof

    def response_signing_bytes(self) -> bytes:
        # Identical framing to ClientResponse.signing_bytes: the Merkle
        # leaf for a response is the digest of the same bytes a singleton
        # response would have threshold-signed directly.
        return (
            f"response|{self.client_id}|{self.client_seq}|".encode("utf-8")
            + self.body.data
        )

    def leaf(self) -> bytes:
        return hashlib.sha256(self.response_signing_bytes()).digest()

    def batch_signing_bytes(self) -> bytes:
        return response_batch_signing_bytes(self.batch_root, self.batch_count)

    def wire_size(self) -> int:
        return (
            _HEADER
            + 24
            + len(self.body)
            + len(self.batch_sig)
            + len(self.batch_root)
            + self.proof.wire_size()
        )

    def sensitive_parts(self) -> List[str]:
        return [self.body.label]


def pack_update(client_id: str, client_seq: int, body: bytes) -> bytes:
    """Binary encoding of an update's confidential content.

    This is what gets encrypted: the client identity, its sequence number
    (so identical bodies never produce identical ciphertexts), and the
    application payload.
    """
    cid = client_id.encode("utf-8")
    return (
        len(cid).to_bytes(2, "big")
        + cid
        + client_seq.to_bytes(8, "big")
        + body
    )


def unpack_update(packed: bytes) -> Tuple[str, int, bytes]:
    """Inverse of :func:`pack_update`."""
    cid_len = int.from_bytes(packed[:2], "big")
    client_id = packed[2 : 2 + cid_len].decode("utf-8")
    offset = 2 + cid_len
    client_seq = int.from_bytes(packed[offset : offset + 8], "big")
    return client_id, client_seq, packed[offset + 8 :]


# --------------------------------------------------------------------------
# Key renewal (Section V-D)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class KeyProposal:
    """A replica's randomness contribution for a client's next key epoch.

    The seed is encrypted under the hardware-protected shared key, so data
    center replicas store it opaquely while recovering on-premises
    replicas can decrypt it without any key having to be fetched.
    """

    alias: str
    range_start: int
    range_end: int
    proposer: str
    encrypted_seed: bytes

    def signing_bytes(self) -> bytes:
        return (
            f"key-proposal|{self.alias}|{self.range_start}|{self.range_end}|"
            f"{self.proposer}|".encode("utf-8") + self.encrypted_seed
        )

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()

    def wire_size(self) -> int:
        return _HEADER + 40 + len(self.encrypted_seed)


# --------------------------------------------------------------------------
# Checkpoints and state transfer (Section V-C)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ResumePoint:
    """Engine-level coordinates of a checkpointed execution state."""

    batch_seq: int
    ordinal: int
    ordered_through: Tuple[Tuple[str, int], ...]

    @staticmethod
    def from_engine(batch_seq: int, ordinal: int, ordered_through: Mapping[str, int]) -> "ResumePoint":
        return ResumePoint(
            batch_seq=batch_seq,
            ordinal=ordinal,
            ordered_through=tuple(sorted(ordered_through.items())),
        )

    def ordered_through_dict(self) -> Dict[str, int]:
        return dict(self.ordered_through)

    def wire_size(self) -> int:
        return 24 + 16 * len(self.ordered_through)


@dataclass(frozen=True)
class CheckpointMsg:
    """An (encrypted) checkpoint multicast for correctness/stability votes.

    ``blob`` is the hardware-key-encrypted state snapshot in Confidential
    Spire; in the Spire baseline it is the plaintext snapshot wrapped in
    :class:`Sensitive` — which is precisely the confidentiality gap the
    auditor measures when such a message reaches a data-center host.
    """

    ordinal: int
    resume: ResumePoint
    blob: Union[bytes, Sensitive]
    signer: str

    def blob_bytes(self) -> bytes:
        return self.blob.data if isinstance(self.blob, Sensitive) else self.blob

    def blob_digest(self) -> bytes:
        return hashlib.sha256(self.blob_bytes()).digest()

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.blob_bytes()) + self.resume.wire_size()

    def sensitive_parts(self) -> List[str]:
        if isinstance(self.blob, Sensitive):
            return [self.blob.label]
        return []


@dataclass(frozen=True)
class CheckpointDeltaMsg:
    """A delta-encoded checkpoint multicast between full snapshots.

    ``blob`` carries the (encrypted) canonical-JSON state *diff* against
    the chain node at ``base_ordinal``; ``full_ordinal`` anchors the chain
    at its full snapshot so a delta can never be applied against the wrong
    lineage. Correctness/stability voting mirrors :class:`CheckpointMsg`
    but digests bind the chain coordinates as well as the blob.
    """

    ordinal: int
    base_ordinal: int
    full_ordinal: int
    resume: ResumePoint
    blob: Union[bytes, Sensitive]
    signer: str

    def blob_bytes(self) -> bytes:
        return self.blob.data if isinstance(self.blob, Sensitive) else self.blob

    def blob_digest(self) -> bytes:
        header = f"ckpt-delta|{self.ordinal}|{self.base_ordinal}|{self.full_ordinal}|"
        return hashlib.sha256(header.encode("utf-8") + self.blob_bytes()).digest()

    def wire_size(self) -> int:
        return _HEADER + 40 + len(self.blob_bytes()) + self.resume.wire_size()

    def sensitive_parts(self) -> List[str]:
        if isinstance(self.blob, Sensitive):
            return [self.blob.label]
        return []


@dataclass(frozen=True)
class StateXferSolicit:
    """A lagging replica asks on-premises replicas to introduce its state
    transfer request into the global order.

    ``have_seq``/``have_ordinal`` advertise what the requester already
    recovered from its local durable store (0/0 when nothing): responders
    then send only the missing suffix of the log, and omit the checkpoint
    entirely when the requester's is at least as fresh.
    """

    requester: str
    nonce: int
    have_seq: int = 0
    have_ordinal: int = 0

    def wire_size(self) -> int:
        return _HEADER + 24


@dataclass(frozen=True)
class XferRequest:
    """The ordered form of a state transfer request (a Prime payload)."""

    requester: str
    nonce: int
    have_seq: int = 0
    have_ordinal: int = 0

    def signing_bytes(self) -> bytes:
        # The legacy form is kept bit-for-bit when no disk state is
        # advertised: this digest feeds ordered-batch trace digests, and
        # default-path traces are a byte-identity contract.
        if self.have_seq or self.have_ordinal:
            return (
                f"xfer|{self.requester}|{self.nonce}"
                f"|{self.have_seq}|{self.have_ordinal}".encode("utf-8")
            )
        return f"xfer|{self.requester}|{self.nonce}".encode("utf-8")

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()

    def wire_size(self) -> int:
        return _HEADER + 24


@dataclass(frozen=True)
class BatchRecord:
    """One executed batch as stored in the CP-ITM update log.

    ``entries`` holds (ordinal, payload) pairs where payload is the Prime
    payload object (encrypted update, key proposal, or transfer request).
    ``resume`` is the engine resume point *after* executing this batch.
    """

    batch_seq: int
    resume: ResumePoint
    entries: Tuple[Tuple[int, object], ...]

    def wire_size(self) -> int:
        return 32 + sum(
            8 + getattr(p, "wire_size", lambda: 256)() for _o, p in self.entries
        )

    def sensitive_parts(self) -> List[str]:
        parts: List[str] = []
        for _ordinal, payload in self.entries:
            getter = getattr(payload, "sensitive_parts", None)
            if getter is not None:
                parts.extend(getter())
        return parts


@dataclass(frozen=True)
class StateXferResponse:
    """A replica's answer to an ordered state transfer request.

    With flow control enabled, one logical response is split into
    ``part_count`` parts sent with pacing; ``part_index`` orders them and
    the checkpoint rides only in part 0. The requester reassembles parts
    before treating the response as received.
    """

    requester: str
    nonce: int
    checkpoint: Optional[CheckpointMsg]
    batches: Tuple[BatchRecord, ...]
    view: int
    responder: str
    part_index: int = 0
    part_count: int = 1
    deltas: Tuple[CheckpointDeltaMsg, ...] = ()

    def wire_size(self) -> int:
        size = _HEADER + 32
        if self.checkpoint is not None:
            size += self.checkpoint.wire_size()
        size += sum(b.wire_size() for b in self.batches)
        size += sum(d.wire_size() for d in self.deltas)
        return size

    def sensitive_parts(self) -> List[str]:
        parts: List[str] = []
        if self.checkpoint is not None:
            parts.extend(self.checkpoint.sensitive_parts())
        for delta in self.deltas:
            parts.extend(delta.sensitive_parts())
        for batch in self.batches:
            parts.extend(batch.sensitive_parts())
        return parts
