"""Checkpoint-based state transfer (Section V-C).

The protocol that makes the whole architecture work: a replica that fell
behind — it was proactively recovered, or its entire site was disconnected
by a network attack — can catch up using only information held by
data-center replicas, without any plaintext crossing a site boundary.

Flow:

1. The lagging replica multicasts a solicitation to on-premises replicas.
2. They introduce an :class:`XferRequest` into the global order (with the
   usual introducer/failover discipline), so every replica serves the
   request at a consistent point in the total order.
3. Each replica (on-premises or data center) responds directly to the
   requester with its stable (encrypted) checkpoint and the encrypted
   update batches that follow it.
4. The requester accepts a checkpoint attested by f+1 identical copies and
   every batch attested by f+1 identical copies, applies them — decrypting
   only if it is an on-premises replica — and fast-forwards its engine to
   the verified resume point. The engine view is adopted as the (f+1)-th
   largest reported view, which at least one correct replica attests.

Responses are full data from *every* replica, as in the paper's
implementation; the resulting burst is what produces Figure 2's
reconnection latency spikes (the paper calls better flow control future
engineering work).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.messages import (
    BatchRecord,
    CheckpointDeltaMsg,
    CheckpointMsg,
    StateXferResponse,
    StateXferSolicit,
    XferRequest,
)
from repro.prime.messages import OpaqueUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ReplicaBase


class StateTransferManager:
    """State transfer client+server roles for one replica."""

    def __init__(self, replica: "ReplicaBase", retry_timeout: float = 2.0):
        self._replica = replica
        metrics = replica.metrics
        self._m_initiated = metrics.counter("xfer.initiated")
        self._m_served = metrics.counter("xfer.served")
        self._m_completed = metrics.counter("xfer.completed")
        self._m_bytes_served = metrics.counter("xfer.bytes_served")
        self._m_bytes_received = metrics.counter(
            "xfer.bytes_received", host=replica.host
        )
        self.retry_timeout = retry_timeout
        self._nonce = 0
        self._active_nonce: Optional[int] = None
        # What this requester already holds from its durable store, and
        # what each solicitor advertised (threaded into the ordered
        # XferRequest so every server trims its response consistently).
        self._have: Tuple[int, int] = (0, 0)
        self._solicit_have: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._responses: Dict[int, Dict[str, StateXferResponse]] = {}
        self._parts: Dict[Tuple[int, str], Dict[int, StateXferResponse]] = {}
        self._served: Set[Tuple[str, int]] = set()
        self._introduced: Set[Tuple[str, int]] = set()
        self._retry_timer = None
        self.completed_count = 0

    @property
    def in_progress(self) -> bool:
        return self._active_nonce is not None

    # -- requester side -----------------------------------------------------------

    def initiate(self, reason: str = "", have_seq: int = 0, have_ordinal: int = 0) -> None:
        """Start a transfer unless one is already running.

        ``have_seq``/``have_ordinal`` advertise state already recovered
        from the local durable store: responders then omit their
        checkpoint when ours is at least as fresh and send only log
        batches above ``have_seq``, so just the missing suffix crosses
        the wire. Defaults (0/0) reproduce the original full transfer.
        """
        replica = self._replica
        if self._active_nonce is not None or not replica.online:
            return
        self._nonce += 1
        self._active_nonce = self._nonce
        self._have = (have_seq, have_ordinal)
        replica.engine.catching_up = True
        self._m_initiated.inc()
        detail = {"nonce": self._nonce, "reason": reason}
        if have_seq or have_ordinal:
            # Keys added only when disk recovery contributed: default-path
            # traces are a byte-identity contract across seeds.
            detail["have_seq"] = have_seq
            detail["have_ordinal"] = have_ordinal
        replica.trace("xfer.initiate", **detail)
        solicit = StateXferSolicit(
            requester=replica.host,
            nonce=self._nonce,
            have_seq=have_seq,
            have_ordinal=have_ordinal,
        )
        for peer in replica.on_premises_replicas():
            if peer != replica.host:
                replica.network_send(peer, solicit)
        if replica.hosts_application:
            # An on-premises requester can introduce its own request too.
            self.on_solicit(replica.host, solicit)
        self._retry_timer = replica.kernel.call_later(
            self.retry_timeout, self._retry, self._nonce
        )

    def _retry(self, nonce: int) -> None:
        self._retry_timer = None
        if self._active_nonce != nonce or not self._replica.online:
            return
        self._replica.trace("xfer.retry", nonce=nonce)
        self._active_nonce = None
        self.initiate(reason="retry", have_seq=self._have[0], have_ordinal=self._have[1])

    # -- server side: getting the request ordered ------------------------------------

    def on_solicit(self, src: str, solicit: StateXferSolicit) -> None:
        """Introduce the transfer request with the usual introducer
        discipline: two site-diverse replicas inject immediately, the rest
        only if the request fails to get ordered (injections by every
        replica would cost a pre-order ack storm per transfer)."""
        replica = self._replica
        key = (solicit.requester, solicit.nonce)
        if key in self._introduced or not replica.hosts_application:
            return
        self._introduced.add(key)
        self._solicit_have[key] = (solicit.have_seq, solicit.have_ordinal)
        rank = replica.intro.introducer_rank(f"xfer|{solicit.requester}|{solicit.nonce}")
        if rank <= 1:
            self._inject_request(key)
        else:
            replica.kernel.call_later(
                (rank - 1) * replica.env.failover_delay, self._inject_failover, key
            )

    def _inject_failover(self, key: Tuple[str, int]) -> None:
        if key in self._served or not self._replica.online:
            return
        self._inject_request(key)

    def _inject_request(self, key: Tuple[str, int]) -> None:
        have_seq, have_ordinal = self._solicit_have.get(key, (0, 0))
        request = XferRequest(
            requester=key[0], nonce=key[1], have_seq=have_seq, have_ordinal=have_ordinal
        )
        self._replica.engine.inject(
            OpaqueUpdate(digest=request.digest(), payload=request, size=request.wire_size())
        )

    def on_ordered_request(self, request: XferRequest) -> None:
        """The transfer request reached the global order: serve it."""
        replica = self._replica
        key = (request.requester, request.nonce)
        if key in self._served:
            return
        self._served.add(key)
        if request.requester == replica.host:
            return
        stable = replica.checkpoints.stable
        chain = tuple(replica.checkpoints.stable_deltas)
        tip_ordinal = replica.checkpoints.stable_tip_ordinal()
        tip_resume = replica.checkpoints.stable_tip_resume()
        # Trim to what the requester does not already hold. Three cases:
        # they are at/past our chain tip (nothing but log tail); they hold
        # our full snapshot but trail the delta chain (ship only the delta
        # suffix — the CompactLab cheap catch-up path); they trail the
        # full itself (ship full + whole chain).
        deltas: Tuple[CheckpointDeltaMsg, ...] = ()
        if stable is None or tip_ordinal <= request.have_ordinal:
            checkpoint = None
        elif stable.ordinal <= request.have_ordinal:
            checkpoint = None
            deltas = tuple(d for d in chain if d.ordinal > request.have_ordinal)
        else:
            checkpoint = stable
            deltas = chain
        after_seq = tip_resume.batch_seq if tip_resume is not None else 0
        after_seq = max(after_seq, request.have_seq)
        batches = replica.update_log_after(after_seq)
        self._m_served.inc()
        self._m_bytes_served.inc(sum(record.wire_size() for record in batches))
        chunk_bytes = replica.env.xfer_chunk_bytes
        if not chunk_bytes:
            response = StateXferResponse(
                requester=request.requester,
                nonce=request.nonce,
                checkpoint=checkpoint,
                batches=tuple(batches),
                view=replica.engine.view,
                responder=replica.host,
                deltas=deltas,
            )
            replica.network_send(request.requester, response)
            return
        self._serve_chunked(request, checkpoint, batches, chunk_bytes, deltas)

    def _serve_chunked(
        self, request, stable, batches, chunk_bytes: int, deltas=()
    ) -> None:
        """Flow-controlled serving: split the update log into bounded
        parts and pace them out, so catch-up traffic interleaves with
        live protocol traffic instead of monopolizing the pipes (the
        "better message flow control" the paper leaves as future work)."""
        replica = self._replica
        chunks: List[List[BatchRecord]] = [[]]
        budget = chunk_bytes
        for record in batches:
            size = record.wire_size()
            if chunks[-1] and size > budget:
                chunks.append([])
                budget = chunk_bytes
            chunks[-1].append(record)
            budget -= size
        part_count = len(chunks)
        for index, chunk in enumerate(chunks):
            part = StateXferResponse(
                requester=request.requester,
                nonce=request.nonce,
                checkpoint=stable if index == 0 else None,
                batches=tuple(chunk),
                view=replica.engine.view,
                responder=replica.host,
                part_index=index,
                part_count=part_count,
                deltas=tuple(deltas) if index == 0 else (),
            )
            delay = index * replica.env.xfer_chunk_interval
            if delay > 0:
                replica.kernel.call_later(
                    delay, replica.network_send, request.requester, part
                )
            else:
                replica.network_send(request.requester, part)

    # -- requester side: assembling responses -------------------------------------------

    def on_response(self, src: str, response: StateXferResponse) -> None:
        replica = self._replica
        if response.nonce != self._active_nonce or response.requester != replica.host:
            return
        # Counted per part, pre-reassembly: this is what actually crossed
        # the wire, the quantity disk recovery exists to shrink.
        self._m_bytes_received.inc(response.wire_size())
        if response.part_count > 1:
            response = self._reassemble(response)
            if response is None:
                return
        bucket = self._responses.setdefault(response.nonce, {})
        bucket[response.responder] = response
        if len(bucket) >= replica.f + 1:
            self._try_assemble(response.nonce)

    def _reassemble(self, part: StateXferResponse) -> Optional[StateXferResponse]:
        """Collect flow-controlled parts; return the merged response once
        complete, else None."""
        key = (part.nonce, part.responder)
        parts = self._parts.setdefault(key, {})
        parts[part.part_index] = part
        if len(parts) < part.part_count:
            return None
        del self._parts[key]
        ordered = [parts[i] for i in sorted(parts)]
        batches = tuple(record for piece in ordered for record in piece.batches)
        return StateXferResponse(
            requester=part.requester,
            nonce=part.nonce,
            checkpoint=ordered[0].checkpoint,
            batches=batches,
            view=max(piece.view for piece in ordered),
            responder=part.responder,
            deltas=ordered[0].deltas,
        )

    def _try_assemble(self, nonce: int) -> None:
        replica = self._replica
        responses = list(self._responses.get(nonce, {}).values())
        threshold = replica.f + 1

        checkpoint = self._agree_checkpoint(responses, threshold)
        if checkpoint is _NO_AGREEMENT:
            # Fewer than f+1 responders agree on any checkpoint: installing
            # state here could adopt a fabrication by f liars. Refuse and
            # keep waiting (the retry timer re-solicits if needed).
            replica.trace(
                "xfer.insufficient",
                nonce=nonce,
                responses=len(responses),
                threshold=threshold,
            )
            return
        deltas = self._agree_deltas(responses, checkpoint, threshold)
        if deltas:
            tip_resume = deltas[-1].resume
        elif checkpoint is not None:
            tip_resume = checkpoint.resume
        else:
            tip_resume = None
        if (
            tip_resume is not None
            and self._have != (0, 0)
            and tip_resume.batch_seq <= self._have[0]
        ):
            # Our disk recovery already covers this chain's prefix;
            # restoring it would roll the application back behind records
            # we replayed locally. Treat the whole chain as already held.
            checkpoint = None
            deltas = ()
        # With no chain to install, batches continue from what we
        # recovered locally (0 when there was no disk recovery —
        # responders only omit their checkpoint against a nonzero have).
        if deltas:
            base_seq = deltas[-1].resume.batch_seq
        elif checkpoint is not None:
            base_seq = checkpoint.resume.batch_seq
        else:
            base_seq = self._have[0]

        batches = self._agree_batches(responses, base_seq, threshold)
        if batches is None:
            return

        views = sorted((r.view for r in responses), reverse=True)
        adopted_view = views[threshold - 1] if len(views) >= threshold else 0

        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None
        self._active_nonce = None
        self._responses.pop(nonce, None)
        self.completed_count += 1
        self._m_completed.inc()
        detail = {
            "nonce": nonce,
            "checkpoint": checkpoint.ordinal if checkpoint else 0,
            "batches": len(batches),
        }
        if deltas:
            # Key added only on the delta path: default-path traces are a
            # byte-identity contract across seeds.
            detail["deltas"] = len(deltas)
        replica.trace("xfer.complete", **detail)
        replica.engine.catching_up = False
        replica.apply_state_transfer(checkpoint, batches, adopted_view, deltas=deltas)

    def _agree_checkpoint(self, responses, threshold: int):
        """The highest checkpoint attested by >= threshold responders.

        A group of responders that agree there is *no* checkpoint yet is
        also an agreement (young system).
        """
        votes: Dict[Tuple[int, bytes], List[CheckpointMsg]] = {}
        none_votes = 0
        for response in responses:
            if response.checkpoint is None:
                none_votes += 1
            else:
                key = (response.checkpoint.ordinal, response.checkpoint.blob_digest())
                votes.setdefault(key, []).append(response.checkpoint)
        agreed = [
            group[0] for group in votes.values() if len(group) >= threshold
        ]
        if agreed:
            return max(agreed, key=lambda c: c.ordinal)
        if none_votes >= threshold:
            return None
        return _NO_AGREEMENT

    def _agree_deltas(
        self, responses, checkpoint, threshold: int
    ) -> Tuple[CheckpointDeltaMsg, ...]:
        """The longest contiguous f+1-attested delta chain above the anchor.

        The anchor is the agreed full snapshot, or — when responders
        omitted it because our ``have_ordinal`` proved we hold it — our own
        stable chain tip. Each link's digest binds its (ordinal, base,
        full) coordinates, so link-by-link agreement composes into chain
        agreement. Orphan links that do not extend the anchor are ignored;
        recovery then proceeds from the full snapshot plus batches alone.
        """
        if checkpoint is not None:
            anchor_full = checkpoint.ordinal
            anchor_tip = checkpoint.ordinal
        else:
            own = self._replica.checkpoints
            if own.stable is None:
                return ()
            anchor_full = own.stable.ordinal
            anchor_tip = own.stable_tip_ordinal()
        votes: Dict[Tuple[int, bytes], List[CheckpointDeltaMsg]] = {}
        for response in responses:
            for delta in response.deltas:
                key = (delta.ordinal, delta.blob_digest())
                votes.setdefault(key, []).append(delta)
        by_base: Dict[int, CheckpointDeltaMsg] = {}
        for group in votes.values():
            if len(group) >= threshold:
                delta = group[0]
                if delta.full_ordinal == anchor_full:
                    by_base.setdefault(delta.base_ordinal, delta)
        chain: List[CheckpointDeltaMsg] = []
        tip = anchor_tip
        while tip in by_base:
            delta = by_base.pop(tip)
            chain.append(delta)
            tip = delta.ordinal
        return tuple(chain)

    def _agree_batches(
        self, responses, base_seq: int, threshold: int
    ) -> Optional[List[BatchRecord]]:
        """The longest contiguous f+1-attested run of batches after base_seq.

        Returns at least an empty list once agreement on "nothing follows
        the checkpoint" is possible; None means not enough evidence yet.
        """
        votes: Dict[int, Dict[bytes, List[BatchRecord]]] = {}
        for response in responses:
            for record in response.batches:
                if record.batch_seq <= base_seq:
                    continue
                digest = _record_digest(record)
                votes.setdefault(record.batch_seq, {}).setdefault(digest, []).append(record)
        accepted: List[BatchRecord] = []
        seq = base_seq + 1
        while True:
            groups = votes.get(seq)
            if not groups:
                break
            winner = None
            for group in groups.values():
                if len(group) >= threshold:
                    winner = group[0]
                    break
            if winner is None:
                break
            accepted.append(winner)
            seq += 1
        return accepted


class _NoAgreement:
    """Sentinel distinguishing 'no agreement yet' from 'agreed: None'."""


_NO_AGREEMENT = _NoAgreement()


def _record_digest(record: BatchRecord) -> bytes:
    import hashlib

    hasher = hashlib.sha256()
    hasher.update(str(record.batch_seq).encode())
    hasher.update(str(record.resume).encode())
    for ordinal, payload in record.entries:
        hasher.update(str(ordinal).encode())
        digest = getattr(payload, "digest", None)
        hasher.update(digest() if callable(digest) else repr(payload).encode())
    return hasher.digest()
