"""Encrypted checkpoints with *correct* and *stable* levels (Section V-C).

Every ``C`` ordinals, application-hosting replicas snapshot their state,
encrypt it under the hardware-protected shared key (Confidential Spire) or
leave it plaintext (Spire baseline — the auditor then observes the leak to
data centers), and multicast the checkpoint to every replica.

Vote levels, per the paper:

- *correct* — f+1 identical blobs from distinct signers: at least one
  correct replica vouches that this is the state at that ordinal. A
  data-center replica that obtains a correct checkpoint re-multicasts it
  under its own signature, so stability can be reached even though data
  centers never generate checkpoints themselves.
- *stable* — 2f+k+1 identical blobs: even with f liars and k newly
  unavailable replicas, f+1 correct holders remain, so everything older
  can be garbage collected (update log, engine history, older
  checkpoints).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.core.messages import CheckpointMsg, ResumePoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ReplicaBase

VoteKey = Tuple[int, bytes]  # (ordinal, blob digest)


class CheckpointManager:
    """Checkpoint generation, voting, relaying, and garbage collection."""

    def __init__(self, replica: "ReplicaBase", interval: int):
        self._replica = replica
        metrics = replica.metrics
        self._m_generated = metrics.counter("checkpoint.generated")
        self._m_correct = metrics.counter("checkpoint.correct")
        self._m_stable = metrics.counter("checkpoint.stable")
        self._g_stable = metrics.gauge("checkpoint.stable_ordinal", host=replica.host)
        self.interval = interval
        self._votes: Dict[VoteKey, Set[str]] = {}
        self._messages: Dict[VoteKey, CheckpointMsg] = {}
        self._relayed: Set[VoteKey] = set()
        self._next_due = interval
        self.correct: Dict[int, CheckpointMsg] = {}
        self.stable: Optional[CheckpointMsg] = None
        self.generated_count = 0

    # -- generation (application-hosting replicas) ------------------------------

    def maybe_generate(self, ordinal: int, resume: ResumePoint) -> None:
        """Called after each executed batch; snapshots when due."""
        if ordinal < self._next_due:
            return
        self._next_due = (ordinal // self.interval + 1) * self.interval
        replica = self._replica
        if not replica.hosts_application:
            return
        blob = replica.build_checkpoint_blob()
        size = len(blob.data if hasattr(blob, "data") else blob)
        cost = replica.costs.snapshot(size) + (
            replica.costs.encrypt_blob(size) if replica.confidential else 0.0
        )
        message = CheckpointMsg(
            ordinal=ordinal, resume=resume, blob=blob, signer=replica.host
        )
        self.generated_count += 1
        self._m_generated.inc()
        replica.after(cost, self._broadcast, message)

    def _broadcast(self, message: CheckpointMsg) -> None:
        replica = self._replica
        if not replica.online:
            return
        replica.trace("checkpoint.generated", ordinal=message.ordinal)
        for peer in replica.all_peers():
            replica.network_send(peer, message)
        self.on_checkpoint(replica.host, message)

    # -- voting ---------------------------------------------------------------------

    def on_checkpoint(self, src: str, message: CheckpointMsg) -> None:
        replica = self._replica
        key = (message.ordinal, message.blob_digest())
        votes = self._votes.setdefault(key, set())
        if src in votes:
            return
        votes.add(src)
        self._messages.setdefault(key, message)
        f_plus_1 = replica.f + 1
        if len(votes) >= f_plus_1 and message.ordinal not in self.correct:
            self.correct[message.ordinal] = self._messages[key]
            self._m_correct.inc()
            replica.trace("checkpoint.correct", ordinal=message.ordinal)
            if not replica.hosts_application and key not in self._relayed:
                # Data-center relay: vouch for the correct checkpoint so it
                # can become stable without on-premises help (Section V-C).
                self._relayed.add(key)
                relayed = CheckpointMsg(
                    ordinal=message.ordinal,
                    resume=message.resume,
                    blob=message.blob,
                    signer=replica.host,
                )
                for peer in replica.all_peers():
                    replica.network_send(peer, relayed)
                votes.add(replica.host)
        if len(votes) >= replica.quorum:
            self._mark_stable(key)

    def _mark_stable(self, key: VoteKey) -> None:
        message = self._messages[key]
        if self.stable is not None and message.ordinal <= self.stable.ordinal:
            return
        replica = self._replica
        # Never garbage-collect past our own execution point: a lagging
        # replica keeps everything until it has caught up.
        if replica.executed_ordinal() < message.ordinal:
            return
        self.stable = message
        self._m_stable.inc()
        self._g_stable.set(message.ordinal)
        replica.trace("checkpoint.stable", ordinal=message.ordinal)
        replica.store.save_checkpoint(message)
        self._garbage_collect(message)

    def _garbage_collect(self, stable: CheckpointMsg) -> None:
        replica = self._replica
        replica.trace("checkpoint.gc", ordinal=stable.ordinal)
        replica.engine.gc_before(stable.resume.batch_seq)
        replica.prune_update_log(stable.resume.batch_seq)
        replica.store.gc(stable.ordinal, stable.resume.batch_seq)
        for ordinal in [o for o in self.correct if o < stable.ordinal]:
            del self.correct[ordinal]
        for key in [k for k in self._votes if k[0] < stable.ordinal]:
            self._votes.pop(key, None)
            self._messages.pop(key, None)
            self._relayed.discard(key)

    # -- state transfer integration ------------------------------------------------------

    def adopt_stable(self, message: CheckpointMsg) -> None:
        """Install a checkpoint validated during state transfer."""
        if self.stable is None or message.ordinal > self.stable.ordinal:
            self.stable = message
            self._replica.trace("checkpoint.adopted", ordinal=message.ordinal)
            self._replica.store.save_checkpoint(message)
        self._next_due = max(
            self._next_due, (message.ordinal // self.interval + 1) * self.interval
        )

    def retry_stability(self) -> None:
        """Re-check stability after this replica catches up (its earlier
        executed-point guard may have deferred garbage collection)."""
        for key, votes in list(self._votes.items()):
            if len(votes) >= self._replica.quorum:
                self._mark_stable(key)
