"""Encrypted checkpoints with *correct* and *stable* levels (Section V-C).

Every ``C`` ordinals, application-hosting replicas snapshot their state,
encrypt it under the hardware-protected shared key (Confidential Spire) or
leave it plaintext (Spire baseline — the auditor then observes the leak to
data centers), and multicast the checkpoint to every replica.

Vote levels, per the paper:

- *correct* — f+1 identical blobs from distinct signers: at least one
  correct replica vouches that this is the state at that ordinal. A
  data-center replica that obtains a correct checkpoint re-multicasts it
  under its own signature, so stability can be reached even though data
  centers never generate checkpoints themselves.
- *stable* — 2f+k+1 identical blobs: even with f liars and k newly
  unavailable replicas, f+1 correct holders remain, so everything older
  can be garbage collected (update log, engine history, older
  checkpoints).

CompactLab deltas: with ``delta_interval = N > 1``, only every N-th
checkpoint is a full snapshot; the ones between carry a deterministic
state *diff* against the previous chain node (:mod:`repro.core.statedelta`),
encrypted exactly like full blobs. Deltas vote and stabilise through the
same machinery (digests bind the chain coordinates), a stable delta
advances GC just like a stable full, and the retained chain is
``stable`` (full) + ``stable_deltas`` (contiguous). A replica that lacks
the previous state document — it just recovered or adopted state over the
network — skips delta generation until the next full boundary; voting
does not depend on being able to generate.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple, Union

from repro.core.messages import CheckpointDeltaMsg, CheckpointMsg, ResumePoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ReplicaBase

VoteKey = Tuple[int, bytes]  # (ordinal, blob digest)

ChainMsg = Union[CheckpointMsg, CheckpointDeltaMsg]


class CheckpointManager:
    """Checkpoint generation, voting, relaying, and garbage collection."""

    def __init__(self, replica: "ReplicaBase", interval: int, delta_interval: int = 0):
        self._replica = replica
        metrics = replica.metrics
        self._m_generated = metrics.counter("checkpoint.generated")
        self._m_correct = metrics.counter("checkpoint.correct")
        self._m_stable = metrics.counter("checkpoint.stable")
        self._g_stable = metrics.gauge("checkpoint.stable_ordinal", host=replica.host)
        self.interval = interval
        #: Full snapshot every this many checkpoints, deltas between
        #: (0/1 = every checkpoint is full, the legacy behaviour).
        self.delta_interval = delta_interval
        self._votes: Dict[VoteKey, Set[str]] = {}
        self._messages: Dict[VoteKey, ChainMsg] = {}
        self._relayed: Set[VoteKey] = set()
        self._next_due = interval
        self.correct: Dict[int, ChainMsg] = {}
        self.stable: Optional[CheckpointMsg] = None
        #: The contiguous stable delta chain anchored at ``stable``.
        self.stable_deltas: List[CheckpointDeltaMsg] = []
        self.generated_count = 0
        #: (ordinal, full_ordinal, state document) of the last checkpoint
        #: this replica generated — the base for the next delta.
        self._last_state: Optional[Tuple[int, int, dict]] = None

    # -- chain coordinates -------------------------------------------------------

    def stable_tip_ordinal(self) -> int:
        if self.stable_deltas:
            return self.stable_deltas[-1].ordinal
        return self.stable.ordinal if self.stable is not None else 0

    def stable_tip_resume(self) -> Optional[ResumePoint]:
        if self.stable_deltas:
            return self.stable_deltas[-1].resume
        return self.stable.resume if self.stable is not None else None

    # -- generation (application-hosting replicas) ------------------------------

    def maybe_generate(self, ordinal: int, resume: ResumePoint) -> None:
        """Called after each executed batch; snapshots when due."""
        if ordinal < self._next_due:
            return
        self._next_due = (ordinal // self.interval + 1) * self.interval
        replica = self._replica
        if not replica.hosts_application:
            return
        message: ChainMsg
        if self.delta_interval > 1:
            # Full/delta choice is a pure function of the ordinal, so every
            # correct up-to-date replica makes the same call without
            # coordination; the chain digest binds the coordinates anyway.
            want_full = (ordinal // self.interval) % self.delta_interval == 0
            if want_full or self._last_state is None:
                state = replica.build_checkpoint_state()
                blob = replica.encode_checkpoint_state(state)
                message = CheckpointMsg(
                    ordinal=ordinal, resume=resume, blob=blob, signer=replica.host
                )
                self._last_state = (ordinal, ordinal, state)
            else:
                base_ordinal, full_ordinal, base_state = self._last_state
                state = replica.build_checkpoint_state()
                blob = replica.build_delta_blob(base_state, state)
                message = CheckpointDeltaMsg(
                    ordinal=ordinal,
                    base_ordinal=base_ordinal,
                    full_ordinal=full_ordinal,
                    resume=resume,
                    blob=blob,
                    signer=replica.host,
                )
                self._last_state = (ordinal, full_ordinal, state)
        else:
            blob = replica.build_checkpoint_blob()
            message = CheckpointMsg(
                ordinal=ordinal, resume=resume, blob=blob, signer=replica.host
            )
        size = len(message.blob.data if hasattr(message.blob, "data") else message.blob)
        cost = replica.costs.snapshot(size) + (
            replica.costs.encrypt_blob(size) if replica.confidential else 0.0
        )
        self.generated_count += 1
        self._m_generated.inc()
        replica.after(cost, self._broadcast, message)

    def _broadcast(self, message: ChainMsg) -> None:
        replica = self._replica
        if not replica.online:
            return
        replica.trace("checkpoint.generated", ordinal=message.ordinal)
        for peer in replica.all_peers():
            replica.network_send(peer, message)
        self.on_checkpoint(replica.host, message)

    # -- voting ---------------------------------------------------------------------

    def on_checkpoint(self, src: str, message: ChainMsg) -> None:
        replica = self._replica
        key = (message.ordinal, message.blob_digest())
        votes = self._votes.setdefault(key, set())
        if src in votes:
            return
        votes.add(src)
        self._messages.setdefault(key, message)
        f_plus_1 = replica.f + 1
        if len(votes) >= f_plus_1 and message.ordinal not in self.correct:
            self.correct[message.ordinal] = self._messages[key]
            self._m_correct.inc()
            replica.trace("checkpoint.correct", ordinal=message.ordinal)
            if not replica.hosts_application and key not in self._relayed:
                # Data-center relay: vouch for the correct checkpoint so it
                # can become stable without on-premises help (Section V-C).
                self._relayed.add(key)
                relayed = dc_replace(message, signer=replica.host)
                for peer in replica.all_peers():
                    replica.network_send(peer, relayed)
                votes.add(replica.host)
        if len(votes) >= replica.quorum:
            self._mark_stable(key)

    def _mark_stable(self, key: VoteKey) -> None:
        message = self._messages[key]
        tip = self.stable_tip_ordinal()
        if message.ordinal <= tip:
            return
        replica = self._replica
        # Never garbage-collect past our own execution point: a lagging
        # replica keeps everything until it has caught up.
        if replica.executed_ordinal() < message.ordinal:
            return
        if isinstance(message, CheckpointDeltaMsg):
            # A delta only stabilises locally when it extends our chain:
            # without the anchor and every link below it, the state at
            # this ordinal is not actually recoverable from what we hold.
            if self.stable is None or message.full_ordinal != self.stable.ordinal:
                return
            if message.base_ordinal != tip:
                return
            self.stable_deltas.append(message)
            self._m_stable.inc()
            self._g_stable.set(message.ordinal)
            replica.trace("checkpoint.stable", ordinal=message.ordinal, delta=1)
            replica.store.save_delta(message)
            self._garbage_collect(message)
        else:
            self.stable = message
            self.stable_deltas = []
            self._m_stable.inc()
            self._g_stable.set(message.ordinal)
            replica.trace("checkpoint.stable", ordinal=message.ordinal)
            replica.store.save_checkpoint(message)
            self._garbage_collect(message)
        if self.delta_interval > 1:
            # Votes for the next link may already hold a quorum (they can
            # arrive out of order); extend the chain while they do.
            self._extend_chain()

    def _extend_chain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            tip = self.stable_tip_ordinal()
            for key, votes in list(self._votes.items()):
                if len(votes) < self._replica.quorum:
                    continue
                candidate = self._messages.get(key)
                if (
                    isinstance(candidate, CheckpointDeltaMsg)
                    and candidate.base_ordinal == tip
                    and candidate.ordinal > tip
                    and self.stable is not None
                    and candidate.full_ordinal == self.stable.ordinal
                    and self._replica.executed_ordinal() >= candidate.ordinal
                ):
                    self._mark_stable_delta_link(candidate)
                    progressed = True
                    break

    def _mark_stable_delta_link(self, message: CheckpointDeltaMsg) -> None:
        replica = self._replica
        self.stable_deltas.append(message)
        self._m_stable.inc()
        self._g_stable.set(message.ordinal)
        replica.trace("checkpoint.stable", ordinal=message.ordinal, delta=1)
        replica.store.save_delta(message)
        self._garbage_collect(message)

    def _garbage_collect(self, stable: ChainMsg) -> None:
        replica = self._replica
        replica.trace("checkpoint.gc", ordinal=stable.ordinal)
        replica.engine.gc_before(stable.resume.batch_seq)
        replica.prune_update_log(stable.resume.batch_seq)
        replica.store.gc(stable.ordinal, stable.resume.batch_seq)
        for ordinal in [o for o in self.correct if o < stable.ordinal]:
            del self.correct[ordinal]
        for key in [k for k in self._votes if k[0] < stable.ordinal]:
            self._votes.pop(key, None)
            self._messages.pop(key, None)
            self._relayed.discard(key)

    # -- state transfer integration ------------------------------------------------------

    def adopt_stable(self, message: CheckpointMsg) -> None:
        """Install a checkpoint validated during state transfer."""
        if self.stable is None or message.ordinal > self.stable.ordinal:
            self.stable = message
            self.stable_deltas = []
            self._replica.trace("checkpoint.adopted", ordinal=message.ordinal)
            self._replica.store.save_checkpoint(message)
        self._next_due = max(
            self._next_due, (message.ordinal // self.interval + 1) * self.interval
        )

    def adopt_chain(
        self, full: Optional[CheckpointMsg], deltas: Tuple[CheckpointDeltaMsg, ...]
    ) -> None:
        """Install a validated checkpoint chain (full snapshot optional —
        state transfer omits it when our own ``stable`` is the anchor)."""
        if full is not None:
            self.adopt_stable(full)
        for delta in deltas:
            tip = self.stable_tip_ordinal()
            if (
                self.stable is not None
                and delta.full_ordinal == self.stable.ordinal
                and delta.base_ordinal == tip
                and delta.ordinal > tip
            ):
                self.stable_deltas.append(delta)
                self._replica.trace(
                    "checkpoint.adopted", ordinal=delta.ordinal, delta=1
                )
                self._replica.store.save_delta(delta)
        tip = self.stable_tip_ordinal()
        self._next_due = max(
            self._next_due, (tip // self.interval + 1) * self.interval
        )

    def retry_stability(self) -> None:
        """Re-check stability after this replica catches up (its earlier
        executed-point guard may have deferred garbage collection)."""
        for key, votes in list(self._votes.items()):
            if len(votes) >= self._replica.quorum:
                self._mark_stable(key)
