"""The paper's contribution: partially cloud-based confidential BFT.

- :mod:`repro.core.distribution` — replica placement rules (Table I),
- :mod:`repro.core.intro` — threshold-signed introduction of encrypted
  client updates (Section V-A),
- :mod:`repro.core.checkpoint` — correct/stable encrypted checkpoints
  (Section V-C),
- :mod:`repro.core.state_transfer` — catch-up from data-center replicas
  alone (Section V-C),
- :mod:`repro.core.key_renewal` — bounded-disclosure key rotation
  (Section V-D),
- :mod:`repro.core.replica` — executing vs storage replica roles
  (the CP-ITM middleware of Section VI),
- :mod:`repro.core.proxy` — client proxies,
- :mod:`repro.core.confidentiality` — plaintext-exposure auditing,
- :mod:`repro.core.encryption` — per-client key schedules,
- :mod:`repro.core.app` — the deterministic application interface.
"""

from repro.core.app import Application, KeyValueApplication
from repro.core.confidentiality import Auditor, Sensitive
from repro.core.distribution import (
    DistributionPlan,
    minimum_k_confidential,
    plan_confidential,
    plan_spire,
    spire_site_bound,
    table_one,
)
from repro.core.encryption import ClientKeySchedule, KeyEpoch, KeyManager
from repro.core.messages import (
    ClientResponse,
    ClientUpdate,
    EncryptedUpdate,
    KeyProposal,
    client_alias,
)
from repro.core.proxy import ClientProxy
from repro.core.replica import ExecutingReplica, ReplicaBase, ReplicaEnv, StorageReplica

__all__ = [
    "Application",
    "KeyValueApplication",
    "Auditor",
    "Sensitive",
    "DistributionPlan",
    "minimum_k_confidential",
    "plan_confidential",
    "plan_spire",
    "spire_site_bound",
    "table_one",
    "ClientKeySchedule",
    "KeyEpoch",
    "KeyManager",
    "ClientResponse",
    "ClientUpdate",
    "EncryptedUpdate",
    "KeyProposal",
    "client_alias",
    "ClientProxy",
    "ExecutingReplica",
    "ReplicaBase",
    "ReplicaEnv",
    "StorageReplica",
]
