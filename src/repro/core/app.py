"""The application interface executed by replicas.

CP-ITM is application-agnostic middleware (Section VI-A): it hands the
application decrypted updates in global order and asks it for snapshots.
Applications must be *deterministic*: identical update sequences must
produce identical state and identical responses on every replica, because
checkpoints are compared byte-for-byte and responses are threshold-signed.

:class:`KeyValueApplication` is a minimal reference application used by
tests and the quickstart; the SCADA master in :mod:`repro.scada.master`
is the paper's application.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import Dict, Optional


class Application(ABC):
    """Deterministic replicated state machine."""

    @abstractmethod
    def execute(self, client_id: str, client_seq: int, body: bytes) -> Optional[bytes]:
        """Apply one update; return the response body (or None)."""

    @abstractmethod
    def snapshot(self) -> bytes:
        """Serialize the full application state, deterministically."""

    @abstractmethod
    def restore(self, blob: bytes) -> None:
        """Replace the application state with a snapshot's contents."""

    def state_doc(self) -> Optional[Dict]:
        """Optional structured snapshot for delta-friendly checkpoints.

        Return a JSON-able dict equivalent to :meth:`snapshot` (same
        determinism contract), or ``None`` — the default — to let the
        checkpoint layer fall back to chunked opaque snapshot bytes.
        Implementations returning a dict must accept it back through
        :meth:`restore_state_doc`. Structured documents let
        :func:`repro.core.statedelta.diff_state` ship only the keys that
        changed between checkpoints instead of every byte block the
        serialization touched.
        """
        return None

    def restore_state_doc(self, doc: Dict) -> None:
        """Replace state from a :meth:`state_doc` document."""
        raise NotImplementedError(f"{type(self).__name__} has no structured state")


class KeyValueApplication(Application):
    """Reference application: a string key-value store.

    Update grammar (UTF-8): ``SET key value``, ``GET key``, ``DEL key``.
    Responses: ``OK``, the value (or ``NONE``), ``DELETED``/``NONE``.
    """

    def __init__(self) -> None:
        self._store: Dict[str, str] = {}
        self.executed_count = 0

    def execute(self, client_id: str, client_seq: int, body: bytes) -> Optional[bytes]:
        self.executed_count += 1
        parts = body.decode("utf-8").split(" ", 2)
        command = parts[0].upper()
        if command == "SET" and len(parts) == 3:
            self._store[parts[1]] = parts[2]
            return b"OK"
        if command == "GET" and len(parts) >= 2:
            value = self._store.get(parts[1])
            return value.encode("utf-8") if value is not None else b"NONE"
        if command == "DEL" and len(parts) >= 2:
            return b"DELETED" if self._store.pop(parts[1], None) is not None else b"NONE"
        return b"ERROR bad-command"

    def snapshot(self) -> bytes:
        return json.dumps(
            {"store": self._store, "executed": self.executed_count},
            sort_keys=True,
        ).encode("utf-8")

    def restore(self, blob: bytes) -> None:
        state = json.loads(blob.decode("utf-8"))
        self._store = dict(state["store"])
        self.executed_count = int(state["executed"])

    def state_doc(self) -> Dict:
        return {"store": dict(self._store), "executed": self.executed_count}

    def restore_state_doc(self, doc: Dict) -> None:
        self._store = dict(doc["store"])
        self.executed_count = int(doc["executed"])

    def get(self, key: str) -> Optional[str]:
        """Direct read for tests/examples (not part of the replicated API)."""
        return self._store.get(key)
