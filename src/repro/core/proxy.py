"""Client proxies (Section IV-A).

A proxy fronts one client (RTU, PLC, or HMI in the SCADA deployment): it
digitally signs the client's updates so replicas can authenticate them,
submits each update to all on-premises replicas (2f+k+1 of them, which for
the confidential distributions is exactly the full on-premises set), and
validates responses by verifying a single threshold signature — proof that
at least one correct replica stood behind the reply.

Proxies retransmit unanswered updates; replicas deduplicate re-executions
and re-send cached responses, so retransmission is safe.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.confidentiality import Sensitive
from repro.core.messages import (
    CertifiedResponse,
    ClientResponse,
    ClientUpdate,
    client_alias,
)
from repro.crypto.merkle import verify_inclusion
from repro.costs import CostModel
from repro.crypto.rsa import RsaKeyPair
from repro.crypto.threshold import ThresholdPublicKey
from repro.crypto.verifycache import verify_with
from repro.obs.registry import NULL_METRICS
from repro.rt.substrate import Scheduler, Transport

ResponseCallback = Callable[[int, bytes, float], None]


class ClientProxy:
    """Proxy for a single client."""

    def __init__(
        self,
        kernel: Scheduler,
        network: Transport,
        host: str,
        client_id: str,
        signing_key: RsaKeyPair,
        response_public: ThresholdPublicKey,
        on_premises_replicas: List[str],
        costs: Optional[CostModel] = None,
        retransmit_timeout: float = 1.0,
        max_retransmits: int = 10,
        tracer=None,
        metrics=None,
        verify_cache=None,
    ):
        self.kernel = kernel
        self.network = network
        self.host = host
        self.client_id = client_id
        self.alias = client_alias(client_id)
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_submitted = metrics.counter("proxy.submitted")
        self._m_completed = metrics.counter("proxy.completed")
        self._m_retransmits = metrics.counter("proxy.retransmits")
        self._m_gave_up = metrics.counter("proxy.gave_up")
        self._m_latency = metrics.histogram("proxy.latency")
        self._m_rsa_sign = metrics.counter("crypto.rsa.sign", site="proxy")
        self._m_thresh_verify = metrics.counter("crypto.threshold.verify", site="proxy")
        self._signing_key = signing_key
        self._response_public = response_public
        self._verify_cache = verify_cache
        self._replicas = list(on_premises_replicas)
        self.costs = costs or CostModel()
        self.retransmit_timeout = retransmit_timeout
        self.max_retransmits = max_retransmits
        self.tracer = tracer
        self._seq = 0
        self._pending: Dict[int, ClientUpdate] = {}
        self._submit_time: Dict[int, float] = {}
        self._retransmit_timers: Dict[int, object] = {}
        self._retransmit_counts: Dict[int, int] = {}
        self._response_callbacks: List[ResponseCallback] = []
        self._certified_callbacks: List[Callable[[object], None]] = []
        self.completed: Dict[int, Tuple[float, bytes]] = {}  # seq -> (latency, body)
        self.retransmissions = 0
        network.register(host, self._on_message)

    def on_response(self, callback: ResponseCallback) -> None:
        """Register a callback invoked as (seq, body, latency_seconds).

        Multiple callbacks may be registered (metrics recorders and the
        client application both listen); they run in registration order.
        """
        self._response_callbacks.append(callback)

    def on_certified(self, callback: Callable[[object], None]) -> None:
        """Register a callback receiving the verified response *message*.

        Unlike :meth:`on_response`, the full :class:`ClientResponse` /
        :class:`CertifiedResponse` object is passed through — the
        cross-shard coordinator needs the threshold signature itself (it
        is the prepare certificate), not just the body.
        """
        self._certified_callbacks.append(callback)

    @property
    def next_seq(self) -> int:
        """The sequence number :meth:`submit` will assign next."""
        return self._seq + 1

    # -- submission ---------------------------------------------------------------

    def submit(self, body: bytes) -> int:
        """Sign and submit one update; returns its client sequence number."""
        self._seq += 1
        seq = self._seq
        update = ClientUpdate(
            client_id=self.client_id,
            client_seq=seq,
            body=Sensitive(body, label="client-update-body"),
        )
        signed = ClientUpdate(
            client_id=update.client_id,
            client_seq=update.client_seq,
            body=update.body,
            signature=self._signing_key.sign(update.signing_bytes()),
        )
        self._pending[seq] = signed
        self._submit_time[seq] = self.kernel.now
        self._retransmit_counts[seq] = 0
        self._m_submitted.inc()
        self._m_rsa_sign.inc()
        if self.tracer:
            # Span-open milestone: carries both identities so span tracking
            # can map this proxy host to the update's alias stream.
            self.tracer.record(
                "proxy.submit",
                self.host,
                client=self.client_id,
                alias=self.alias,
                seq=seq,
            )
        self.kernel.call_later(self.costs.rsa_sign, self._send, seq)
        return seq

    def _send(self, seq: int) -> None:
        update = self._pending.get(seq)
        if update is None:
            return
        for replica in self._replicas:
            self.network.send(self.host, replica, update)
        self._retransmit_timers[seq] = self.kernel.call_later(
            self.retransmit_timeout, self._retransmit, seq
        )

    def _retransmit(self, seq: int) -> None:
        self._retransmit_timers.pop(seq, None)
        if seq not in self._pending:
            return
        count = self._retransmit_counts.get(seq, 0)
        if count >= self.max_retransmits:
            self._m_gave_up.inc()
            if self.tracer:
                self.tracer.record("proxy.gave-up", self.host, seq=seq)
            del self._pending[seq]
            return
        self._retransmit_counts[seq] = count + 1
        self.retransmissions += 1
        self._m_retransmits.inc()
        if self.tracer:
            self.tracer.record("proxy.retransmit", self.host, seq=seq)
        self._send(seq)

    # -- responses -------------------------------------------------------------------

    def _on_message(self, src: str, message: object) -> None:
        if not isinstance(message, (ClientResponse, CertifiedResponse)):
            return
        if message.client_id != self.client_id:
            return
        seq = message.client_seq
        if seq not in self._pending:
            return
        self.kernel.call_later(
            self.costs.threshold_verify, self._verify_response, message
        )

    def _verify_response(self, message) -> None:
        seq = message.client_seq
        if seq not in self._pending:
            return
        self._m_thresh_verify.inc()
        if isinstance(message, CertifiedResponse):
            # Batched response: one threshold verification per *batch*
            # (memoised across the batch's members by the verify cache),
            # plus this response's Merkle inclusion proof.
            if not verify_with(
                self._verify_cache,
                self._response_public,
                message.batch_signing_bytes(),
                message.batch_sig,
            ) or not verify_inclusion(
                message.batch_root, message.leaf(), message.proof
            ):
                if self.tracer:
                    self.tracer.record("proxy.bad-response", self.host, seq=seq)
                return
        elif not verify_with(
            self._verify_cache,
            self._response_public,
            message.signing_bytes(),
            message.threshold_sig,
        ):
            if self.tracer:
                self.tracer.record("proxy.bad-response", self.host, seq=seq)
            return
        latency = self.kernel.now - self._submit_time[seq]
        del self._pending[seq]
        timer = self._retransmit_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()
        self.completed[seq] = (latency, message.body.data)
        self._m_completed.inc()
        self._m_latency.observe(latency)
        if self.tracer:
            self.tracer.record("proxy.complete", self.host, seq=seq, latency=latency)
        for callback in self._certified_callbacks:
            callback(message)
        for callback in self._response_callbacks:
            callback(seq, message.body.data, latency)

    # -- statistics ----------------------------------------------------------------------

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    def latencies(self) -> List[Tuple[int, float]]:
        """(seq, latency) pairs for completed updates, in sequence order."""
        return [(seq, self.completed[seq][0]) for seq in sorted(self.completed)]
