"""Per-client key schedules (Sections V-A, V-D, VI-B).

Every client has a pair of shared symmetric keys (encryption + PRF) known
to all on-premises replicas. With key renewal enabled, a key pair is only
valid for a bounded range of that client's sequence numbers; the schedule
maps sequence numbers to epochs and refuses to encrypt for ranges whose
keys have not been established yet (the renewal protocol fills them in).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.symmetric import SymmetricKeyPair, decrypt, encrypt
from repro.errors import KeyScheduleError


@dataclass(frozen=True)
class KeyEpoch:
    """One validity range of a client key pair: [start_seq, end_seq]."""

    start_seq: int
    end_seq: int
    keys: SymmetricKeyPair

    def covers(self, seq: int) -> bool:
        return self.start_seq <= seq <= self.end_seq


class ClientKeySchedule:
    """The key epochs for one client, in increasing sequence order."""

    def __init__(self, initial: KeyEpoch):
        self._epochs: List[KeyEpoch] = [initial]

    @property
    def epochs(self) -> List[KeyEpoch]:
        return list(self._epochs)

    @property
    def latest(self) -> KeyEpoch:
        return self._epochs[-1]

    def epoch_for(self, seq: int) -> Optional[KeyEpoch]:
        for epoch in reversed(self._epochs):
            if epoch.covers(seq):
                return epoch
        return None

    def extend(self, epoch: KeyEpoch) -> None:
        """Append the next epoch; must be contiguous with the last."""
        if epoch.start_seq != self.latest.end_seq + 1:
            raise KeyScheduleError(
                f"epoch starting at {epoch.start_seq} does not follow "
                f"current end {self.latest.end_seq}"
            )
        self._epochs.append(epoch)

    def prune_before(self, seq: int) -> None:
        """Drop epochs that ended before ``seq`` (post-checkpoint cleanup)."""
        keep = [e for e in self._epochs if e.end_seq >= seq]
        if keep:
            self._epochs = keep

    # -- serialization (for inclusion in encrypted checkpoints) ---------------

    def to_state(self) -> List[Tuple[int, int, str, str]]:
        return [
            (e.start_seq, e.end_seq, e.keys.enc_key.hex(), e.keys.prf_key.hex())
            for e in self._epochs
        ]

    @staticmethod
    def from_state(state: List) -> "ClientKeySchedule":
        epochs = [
            KeyEpoch(
                start_seq=int(start),
                end_seq=int(end),
                keys=SymmetricKeyPair(
                    enc_key=bytes.fromhex(enc), prf_key=bytes.fromhex(prf)
                ),
            )
            for start, end, enc, prf in state
        ]
        if not epochs:
            raise KeyScheduleError("empty key schedule state")
        schedule = ClientKeySchedule(epochs[0])
        for epoch in epochs[1:]:
            schedule.extend(epoch)
        return schedule


class KeyManager:
    """All client key schedules held by one on-premises replica."""

    def __init__(self) -> None:
        self._schedules: Dict[str, ClientKeySchedule] = {}

    def register_client(self, alias: str, initial_keys: SymmetricKeyPair, validity: int) -> None:
        """Install a client's setup-time key epoch covering [1, validity]."""
        self._schedules[alias] = ClientKeySchedule(
            KeyEpoch(start_seq=1, end_seq=validity, keys=initial_keys)
        )

    def has_client(self, alias: str) -> bool:
        return alias in self._schedules

    def schedule_for(self, alias: str) -> ClientKeySchedule:
        schedule = self._schedules.get(alias)
        if schedule is None:
            raise KeyScheduleError(f"no key schedule for client alias {alias!r}")
        return schedule

    def can_encrypt(self, alias: str, seq: int) -> bool:
        schedule = self._schedules.get(alias)
        return schedule is not None and schedule.epoch_for(seq) is not None

    def encrypt_update(self, alias: str, seq: int, plaintext: bytes) -> bytes:
        epoch = self._require_epoch(alias, seq)
        return encrypt(epoch.keys, plaintext)

    def decrypt_update(self, alias: str, seq: int, blob: bytes) -> bytes:
        epoch = self._require_epoch(alias, seq)
        return decrypt(epoch.keys, blob)

    def _require_epoch(self, alias: str, seq: int) -> KeyEpoch:
        epoch = self.schedule_for(alias).epoch_for(seq)
        if epoch is None:
            raise KeyScheduleError(
                f"no key epoch covering seq {seq} for client alias {alias!r}"
            )
        return epoch

    # -- checkpoint integration --------------------------------------------------

    def to_state(self) -> Dict[str, List]:
        return {alias: s.to_state() for alias, s in sorted(self._schedules.items())}

    def restore_state(self, state: Dict[str, List]) -> None:
        self._schedules = {
            alias: ClientKeySchedule.from_state(epochs)
            for alias, epochs in state.items()
        }
