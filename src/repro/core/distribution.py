"""Replica distribution across sites (Section IV-B, Table I).

Prime with proactive recovery needs ``n = 3f + 2k + 1`` replicas to
tolerate ``f`` intrusions and ``k`` unavailable replicas. Tolerating the
disconnection of a whole site forces ``k`` to exceed the largest site,
giving the Spire bound ``k >= ceil((3f + S + 1) / (S - 2))`` for ``S``
sites. Confidential Spire adds the constraint that only on-premises
replicas can execute and answer clients: each of the two on-premises sites
must hold at least ``2f + 2`` replicas so that even with one site
disconnected, ``f`` compromised and one recovering replica, ``f + 1``
correct on-premises replicas remain — which pushes ``k >= 2f + 3``.

:func:`plan_confidential` reproduces Table I exactly; :func:`plan_spire`
gives the baseline Spire distribution used for the Table II comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DistributionPlan:
    """A replica placement: per-site counts plus the derived parameters."""

    f: int
    k: int
    n: int
    on_premises: Tuple[int, ...]
    data_centers: Tuple[int, ...]

    @property
    def sites(self) -> int:
        return len(self.on_premises) + len(self.data_centers)

    @property
    def quorum(self) -> int:
        return 2 * self.f + self.k + 1

    @property
    def counts(self) -> Tuple[int, ...]:
        return self.on_premises + self.data_centers

    def label(self) -> str:
        """Table I cell notation, e.g. '4+4+3+3 (14)'."""
        return "+".join(str(c) for c in self.counts) + f" ({self.n})"


def spire_site_bound(f: int, sites: int) -> int:
    """The [4] bound: k >= ceil((3f + S + 1) / (S - 2))."""
    if sites < 3:
        raise ConfigurationError(
            "network-attack resilience requires at least 3 sites"
        )
    return math.ceil((3 * f + sites + 1) / (sites - 2))


def minimum_k_confidential(f: int, sites: int) -> int:
    """k >= max(2f + 3, ceil((3f + S + 1) / (S - 2))) (Section IV-B)."""
    return max(2 * f + 3, spire_site_bound(f, sites))


def plan_confidential(f: int, data_centers: int) -> DistributionPlan:
    """Confidential Spire placement for 2 on-premises sites (Table I).

    Each on-premises site first receives its mandatory 2f + 2 replicas;
    the remainder is spread as evenly as possible subject to no site
    exceeding k - 1 replicas.
    """
    if f < 1:
        raise ConfigurationError("f must be at least 1")
    if data_centers < 1:
        raise ConfigurationError("at least one data center site is required")
    sites = 2 + data_centers
    k = minimum_k_confidential(f, sites)
    n = 3 * f + 2 * k + 1
    on_prem_base = 2 * f + 2
    counts = [on_prem_base, on_prem_base] + [0] * data_centers
    remaining = n - sum(counts)
    if remaining < 0:
        raise ConfigurationError("on-premises minimum exceeds total replicas")
    # Round-robin the remainder onto the smallest sites, never letting any
    # site reach k replicas (a site of size >= k breaks availability when
    # it is disconnected during a recovery elsewhere).
    while remaining > 0:
        index = min(range(len(counts)), key=lambda i: (counts[i], i))
        if counts[index] + 1 > k - 1:
            raise ConfigurationError(
                f"cannot place {n} replicas across {sites} sites with k={k}"
            )
        counts[index] += 1
        remaining -= 1
    return DistributionPlan(
        f=f,
        k=k,
        n=n,
        on_premises=tuple(counts[:2]),
        data_centers=tuple(counts[2:]),
    )


def plan_spire(f: int, data_centers: int) -> DistributionPlan:
    """Baseline Spire 1.2 placement (no on-premises minimum).

    Uses k >= ceil((3f + S + 1)/(S - 2)) and spreads replicas as evenly as
    possible; reproduces 3+3+3+3 (12) for f=1 and 5+5+5+4 (19) for f=2
    with two data centers.
    """
    if f < 1:
        raise ConfigurationError("f must be at least 1")
    sites = 2 + data_centers
    k = spire_site_bound(f, sites)
    n = 3 * f + 2 * k + 1
    counts = [0] * sites
    for i in range(n):
        counts[i % sites] += 1
    if max(counts) > k - 1:
        raise ConfigurationError(
            f"even spread violates site-size bound for f={f}, S={sites}"
        )
    return DistributionPlan(
        f=f,
        k=k,
        n=n,
        on_premises=tuple(counts[:2]),
        data_centers=tuple(counts[2:]),
    )


def table_one() -> List[List[str]]:
    """Regenerate Table I: rows f=1..3, columns 1-3 data centers."""
    rows = []
    for f in (1, 2, 3):
        row = [plan_confidential(f, dcs).label() for dcs in (1, 2, 3)]
        rows.append(row)
    return rows
