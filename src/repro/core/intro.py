"""Introducing client updates into the global order (Section V-A).

Confidential mode: each on-premises replica that receives a proxy-signed
update verifies the proxy signature, deterministically encrypts the update
(so all replicas produce the identical ciphertext), generates a threshold
signature share over the ciphertext, and multicasts the share to its
on-premises peers. Whoever collects f+1 shares can assemble a full
threshold signature that every replica — including data-center replicas
that cannot decrypt the update — can verify before helping to order it.

Plain mode (Spire 1.2 baseline): the proxy's own signature authenticates
the update; the receiving replica injects it directly.

In both modes, one deterministic *introducer* per client actually injects
(Spire's ITRC assigns clients to replicas); the other replicas hold the
assembled update and inject it themselves only if it fails to get ordered
within a rank-staggered failover delay, so a crashed or compromised
introducer costs one timeout, not liveness.
"""

from __future__ import annotations

import hashlib
import random
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.core.messages import (
    BatchProposal,
    BatchShare,
    ClientUpdate,
    EncryptedUpdate,
    IntroShare,
    SignedUpdateBatch,
    client_alias,
    pack_update,
    update_batch_signing_bytes,
)
from repro.crypto.merkle import merkle_root
from repro.crypto.threshold import combine_via, combine_with_retry, sign_partial_via
from repro.crypto.verifycache import verify_with
from repro.errors import SignatureError
from repro.prime.messages import OpaqueUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ExecutingReplica

IntroKey = Tuple[str, int]  # (alias, client_seq)

# Batch-window flush jitter. Desynchronising the two proposers' windows
# avoids lock-step proposal bursts; the stream is module-global and must
# be reseeded explicitly (builder, perf harness, benchmarks conftest) so
# seeded runs — and perf speedup ratios — stay reproducible. The stream
# is only ever drawn from in batch mode, so singleton runs never consume
# it and stay byte-identical whatever it was seeded with.
_JITTER_RNG = random.Random(0)


def seed_batch_jitter(seed: int) -> None:
    """Reseed the batch-window jitter stream deterministically."""
    global _JITTER_RNG
    _JITTER_RNG = random.Random(seed)


def _jittered(window: float) -> float:
    return window * (0.75 + 0.5 * _JITTER_RNG.random())


class IntroductionManager:
    """Update introduction pipeline for one executing replica."""

    def __init__(self, replica: "ExecutingReplica", failover_delay: float = 0.120):
        self._replica = replica
        metrics = replica.metrics
        self._m_rsa_verify = metrics.counter("crypto.rsa.verify", op="client-update")
        self._m_aes_encrypt = metrics.counter("crypto.aes.encrypt")
        self._m_partial = metrics.counter("crypto.threshold.partial", op="intro")
        self._m_combine = metrics.counter("crypto.threshold.combine", op="intro")
        self._m_shares = metrics.counter("intro.shares_received")
        self._m_injected = metrics.counter("intro.injected")
        self._m_failovers = metrics.counter("intro.failovers")
        self._m_batches = metrics.counter("intro.batches")
        self.failover_delay = failover_delay
        self._shares: Dict[Tuple[str, int, bytes], Dict[int, object]] = {}
        self._assembled: Dict[IntroKey, EncryptedUpdate] = {}
        self._plain_pending: Dict[IntroKey, ClientUpdate] = {}
        self._failover_timers: Dict[IntroKey, object] = {}
        self._injected: Set[IntroKey] = set()
        self._done: Set[IntroKey] = set()
        self._awaiting_keys: Dict[str, List[ClientUpdate]] = {}
        # Batch mode (BatchLab) state.
        self._batch_no = 0
        self._batch_buffer: List[EncryptedUpdate] = []
        self._batch_timer: object = None
        self._pending_batches: Dict[int, dict] = {}
        self._parked_proposals: List[Tuple[str, BatchProposal]] = []
        self._acked_batches: Set[Tuple[str, int]] = set()
        self._echoed: Set[IntroKey] = set()
        self._batch_failover_initiated: Set[IntroKey] = set()
        self._pref_cache: Dict[str, List[str]] = {}

    @property
    def batching(self) -> bool:
        return self._replica.env.intro_batch_size > 1

    # -- entry: proxy-signed update arrives ------------------------------------

    def on_client_update(self, update: ClientUpdate) -> None:
        replica = self._replica
        public = replica.client_registry.get(update.client_id)
        if public is None:
            replica.trace("intro.unknown-client", client=update.client_id)
            return
        cost = replica.costs.rsa_verify
        self._m_rsa_verify.inc()
        replica.after(cost, self._verified_update, update, public)

    def _verified_update(self, update: ClientUpdate, public) -> None:
        replica = self._replica
        if not replica.online:
            return
        if not verify_with(
            replica.env.verify_cache, public, update.signing_bytes(), update.signature
        ):
            replica.trace("intro.bad-signature", client=update.client_id)
            return
        alias = client_alias(update.client_id)
        key = (alias, update.client_seq)
        if replica.is_executed(alias, update.client_seq):
            replica.resend_response(update.client_id, update.client_seq)
            return
        if key in self._done or key in self._injected:
            return
        if replica.confidential:
            self._introduce_confidential(alias, update)
        else:
            self._introduce_plain(alias, update)

    # -- confidential path ---------------------------------------------------------

    def _introduce_confidential(self, alias: str, update: ClientUpdate) -> None:
        replica = self._replica
        if not replica.key_manager.can_encrypt(alias, update.client_seq):
            # Key renewal for this range has not completed; park the update
            # (drained by KeyRenewalManager when the epoch appears).
            self._awaiting_keys.setdefault(alias, []).append(update)
            replica.trace("intro.awaiting-key", alias=alias, seq=update.client_seq)
            return
        packed = pack_update(update.client_id, update.client_seq, update.body.data)
        self._m_aes_encrypt.inc()
        ciphertext = replica.key_manager.encrypt_update(alias, update.client_seq, packed)
        encrypted = EncryptedUpdate(
            alias=alias, client_seq=update.client_seq, ciphertext=ciphertext
        )
        if self.batching:
            # Batch path: the threshold partial is amortised over the whole
            # window, so only the encryption cost is charged per update.
            replica.after(replica.costs.update_encrypt, self._batch_enqueue, encrypted)
            return
        cost = replica.costs.update_encrypt + replica.costs.threshold_partial
        replica.after(cost, self._share_partial, encrypted)

    # -- batched confidential path (BatchLab) --------------------------------------

    def _batch_enqueue(self, encrypted: EncryptedUpdate) -> None:
        """Record an independently derived ciphertext and, if this replica
        proposes batches for the client, buffer it for the next window."""
        replica = self._replica
        if not replica.online:
            return
        key = (encrypted.alias, encrypted.client_seq)
        if key in self._done or key in self._injected or key in self._assembled:
            return
        self._assembled[key] = encrypted
        self._retry_parked_proposals()
        rank = self.introducer_rank(encrypted.alias)
        if rank <= 1:
            self._batch_buffer.append(encrypted)
            if len(self._batch_buffer) >= replica.env.intro_batch_size:
                self._flush_batch()
            elif self._batch_timer is None:
                self._batch_timer = replica.kernel.call_later(
                    _jittered(replica.env.intro_batch_window), self._flush_batch
                )
        elif key not in self._failover_timers:
            # Non-proposers arm the same rank-staggered failover as the
            # singleton path, stretched by one batch window so a healthy
            # proposer always beats the timer.
            self._failover_timers[key] = replica.kernel.call_later(
                (rank - 1) * self.failover_delay + replica.env.intro_batch_window,
                self._batch_failover,
                key,
            )

    def _flush_batch(self) -> None:
        """Close the current window: one Merkle root, one partial, one
        proposal multicast — however many updates are inside."""
        replica = self._replica
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        if not replica.online:
            self._batch_buffer.clear()
            return
        live = [
            item
            for item in self._batch_buffer
            if (item.alias, item.client_seq) not in self._done
            and (item.alias, item.client_seq) not in self._injected
        ]
        size = replica.env.intro_batch_size
        items, self._batch_buffer = live[:size], live[size:]
        if self._batch_buffer:
            self._batch_timer = replica.kernel.call_later(
                _jittered(replica.env.intro_batch_window), self._flush_batch
            )
        if not items:
            return
        self._batch_no += 1
        batch_no = self._batch_no
        root = merkle_root([item.digest() for item in items])
        self._m_partial.inc()
        partial = sign_partial_via(
            replica.env.crypto_pool,
            replica.intro_share,
            update_batch_signing_bytes(root, len(items)),
        )
        self._pending_batches[batch_no] = {
            "root": root,
            "items": tuple(items),
            "partials": {partial.signer: partial},
            "combining": False,
        }
        proposal = BatchProposal(
            proposer=replica.host, batch_no=batch_no, items=tuple(items)
        )
        replica.after(replica.costs.threshold_partial, self._send_proposal, proposal)

    def _send_proposal(self, proposal: BatchProposal) -> None:
        replica = self._replica
        if not replica.online:
            return
        for peer in replica.on_premises_peers():
            replica.network_send(peer, proposal)
        replica.trace(
            "intro.batch-proposed", batch=proposal.batch_no, count=len(proposal.items)
        )
        self._maybe_combine_batch(proposal.batch_no)

    def _defer_failover(self, key: IntroKey, delay: float) -> None:
        """Push back an armed failover timer (never create one): fresh
        evidence that someone live is handling ``key`` resets its clock."""
        timer = self._failover_timers.pop(key, None)
        if timer is None:
            return
        timer.cancel()
        self._failover_timers[key] = self._replica.kernel.call_later(
            delay, self._batch_failover, key
        )

    def _note_proposer_alive(self, proposer: str) -> None:
        """A batch proposal from ``proposer`` proves it is alive and
        draining its window. Defer failovers for every pending key it is
        responsible for — including keys still queued in its buffer —
        keeping crash detection without duplicate-intro storms when the
        proposer is merely backlogged. Keys whose two proposers are both
        down get no deferral and fail over on schedule."""
        replica = self._replica
        for key in list(self._failover_timers):
            prefs = self.preference_list(key[0])
            if proposer not in prefs[:2]:
                continue
            rank = prefs.index(replica.host)
            self._defer_failover(key, rank * self.failover_delay)

    def on_batch_proposal(self, src: str, proposal: BatchProposal) -> None:
        """Peer side: sign the proposer's root only after checking every
        item against the ciphertext this replica derived on its own —
        deterministic encryption makes the two bit-identical, so a digest
        match proves the proposer packaged genuine proxy-signed updates."""
        replica = self._replica
        self._note_proposer_alive(proposal.proposer)
        ack_key = (proposal.proposer, proposal.batch_no)
        if ack_key in self._acked_batches:
            return
        keys = [(item.alias, item.client_seq) for item in proposal.items]
        if not keys or all(key in self._done for key in keys):
            return
        missing = False
        for item, key in zip(proposal.items, keys):
            if key in self._done:
                # Already executed; its assembled copy is gone. Execution
                # dedups by (alias, seq), so a stale item is harmless.
                continue
            mine = self._assembled.get(key)
            if mine is None:
                missing = True
                continue
            if mine.digest() != item.digest():
                replica.trace(
                    "intro.batch-mismatch",
                    proposer=proposal.proposer,
                    batch=proposal.batch_no,
                    alias=item.alias,
                    seq=item.client_seq,
                )
                return
        if missing:
            # The proxy fan-out for some item has not reached us yet; park
            # the proposal and retry when the ciphertext is assembled.
            self._parked_proposals.append((src, proposal))
            return
        self._acked_batches.add(ack_key)
        root = merkle_root([item.digest() for item in proposal.items])
        self._m_partial.inc()
        partial = sign_partial_via(
            replica.env.crypto_pool,
            replica.intro_share,
            update_batch_signing_bytes(root, len(proposal.items)),
        )
        share = BatchShare(
            proposer=proposal.proposer,
            batch_no=proposal.batch_no,
            root=root,
            count=len(proposal.items),
            partial=partial,
        )
        replica.after(
            replica.costs.threshold_partial,
            replica.network_send,
            proposal.proposer,
            share,
        )

    def _retry_parked_proposals(self) -> None:
        if not self._parked_proposals:
            return
        parked, self._parked_proposals = self._parked_proposals, []
        for src, proposal in parked:
            self.on_batch_proposal(src, proposal)

    def on_batch_share(self, src: str, share: BatchShare) -> None:
        replica = self._replica
        self._m_shares.inc()
        pending = self._pending_batches.get(share.batch_no)
        if pending is None or share.proposer != replica.host:
            return
        if share.root != pending["root"] or share.count != len(pending["items"]):
            return
        pending["partials"][share.partial.signer] = share.partial
        self._maybe_combine_batch(share.batch_no)

    def _maybe_combine_batch(self, batch_no: int) -> None:
        replica = self._replica
        pending = self._pending_batches.get(batch_no)
        if pending is None or pending["combining"]:
            return
        if len(pending["partials"]) < replica.intro_public.threshold:
            return
        pending["combining"] = True
        replica.after(replica.costs.threshold_combine, self._combine_batch, batch_no)

    def _combine_batch(self, batch_no: int) -> None:
        replica = self._replica
        pending = self._pending_batches.get(batch_no)
        if pending is None or not replica.online:
            return
        self._m_combine.inc()
        message = update_batch_signing_bytes(pending["root"], len(pending["items"]))
        try:
            signature = combine_via(
                replica.env.crypto_pool,
                replica.intro_public,
                message,
                list(pending["partials"].values()),
            )
        except SignatureError:
            replica.trace("intro.batch-combine-failed", batch=batch_no)
            pending["combining"] = False
            return
        del self._pending_batches[batch_no]
        batch = SignedUpdateBatch(
            root=pending["root"], items=pending["items"], threshold_sig=signature
        )
        self._m_batches.inc()
        replica.engine.inject(
            OpaqueUpdate(digest=batch.digest(), payload=batch, size=batch.wire_size())
        )
        for item in pending["items"]:
            key = (item.alias, item.client_seq)
            self._injected.add(key)
            self._m_injected.inc()
            replica.trace("intro.injected", alias=item.alias, seq=item.client_seq)

    def _batch_failover(self, key: IntroKey) -> None:
        """The proposers missed their window for this update: fall back to
        the singleton share flow. This replica multicasts its own share;
        peers holding the assembled ciphertext echo theirs back once, and
        the initiator combines at threshold like a rank-0 introducer."""
        self._failover_timers.pop(key, None)
        replica = self._replica
        if key in self._done or key in self._injected or not replica.online:
            return
        encrypted = self._assembled.get(key)
        if encrypted is None:
            return
        self._m_failovers.inc()
        replica.trace("intro.failover", alias=key[0], seq=key[1])
        self._batch_failover_initiated.add(key)
        self._m_partial.inc()
        partial = sign_partial_via(
            replica.env.crypto_pool, replica.intro_share, encrypted.signing_bytes()
        )
        share = IntroShare(
            alias=key[0],
            client_seq=key[1],
            update_digest=encrypted.digest(),
            partial=partial,
        )
        replica.after(replica.costs.threshold_partial, self._send_failover_share, share)

    def _send_failover_share(self, share: IntroShare) -> None:
        replica = self._replica
        if not replica.online:
            return
        for peer in replica.on_premises_peers():
            replica.network_send(peer, share)
        self.on_intro_share(replica.host, share)

    def _maybe_echo_share(self, src: str, key: IntroKey, share: IntroShare) -> None:
        """Batch mode: a singleton IntroShare from a peer means a failover
        is under way; contribute this replica's share (once) so the
        initiator can reach threshold."""
        replica = self._replica
        if (
            key in self._echoed
            or key in self._batch_failover_initiated
            or key in self._injected
        ):
            return
        encrypted = self._assembled.get(key)
        if encrypted is None or encrypted.digest() != share.update_digest:
            return
        self._echoed.add(key)
        self._m_partial.inc()
        partial = sign_partial_via(
            replica.env.crypto_pool, replica.intro_share, encrypted.signing_bytes()
        )
        echo = IntroShare(
            alias=key[0],
            client_seq=key[1],
            update_digest=share.update_digest,
            partial=partial,
        )
        replica.after(replica.costs.threshold_partial, replica.network_send, src, echo)

    def _share_partial(self, encrypted: EncryptedUpdate) -> None:
        replica = self._replica
        if not replica.online:
            return
        self._m_partial.inc()
        partial = replica.intro_share.sign_partial(encrypted.signing_bytes())
        share = IntroShare(
            alias=encrypted.alias,
            client_seq=encrypted.client_seq,
            update_digest=encrypted.digest(),
            partial=partial,
        )
        self._assembled.setdefault((encrypted.alias, encrypted.client_seq), encrypted)
        for peer in replica.on_premises_peers():
            replica.network_send(peer, share)
        self.on_intro_share(replica.host, share)

    def on_intro_share(self, src: str, share: IntroShare) -> None:
        replica = self._replica
        self._m_shares.inc()
        key = (share.alias, share.client_seq)
        if key in self._done:
            return
        if self.batching and src != replica.host:
            # A singleton share means some peer is already running a
            # failover for this key; stagger rather than pile on.
            self._defer_failover(
                key, max(self.introducer_rank(share.alias), 1) * self.failover_delay
            )
            self._maybe_echo_share(src, key, share)
        vote_key = (share.alias, share.client_seq, share.update_digest)
        partials = self._shares.setdefault(vote_key, {})
        partials[share.partial.signer] = share.partial
        if len(partials) < replica.intro_public.threshold:
            return
        encrypted = self._assembled.get(key)
        if encrypted is None or encrypted.digest() != share.update_digest:
            return
        if key in self._injected:
            return
        rank = self.introducer_rank(share.alias)
        if rank <= 1 or key in self._batch_failover_initiated:
            # Two immediate introducers, one per on-premises site (the
            # preference list alternates sites): a site disconnection
            # costs nothing on the introduction path. Prime deduplicates
            # at execution. A batch-mode failover initiator combines the
            # echoed singleton shares the same way.
            replica.after(replica.costs.threshold_combine, self._combine_and_inject, key)
        elif not self.batching and key not in self._failover_timers:
            delay = (rank - 1) * self.failover_delay
            self._failover_timers[key] = replica.kernel.call_later(
                delay, self._failover_inject, key
            )

    def _failover_inject(self, key: IntroKey) -> None:
        self._failover_timers.pop(key, None)
        if key in self._done or key in self._injected or not self._replica.online:
            return
        self._m_failovers.inc()
        self._replica.trace("intro.failover", alias=key[0], seq=key[1])
        self._combine_and_inject(key)

    def _combine_and_inject(self, key: IntroKey) -> None:
        replica = self._replica
        if key in self._done or key in self._injected or not replica.online:
            return
        encrypted = self._assembled.get(key)
        if encrypted is None:
            return
        vote_key = (key[0], key[1], encrypted.digest())
        partials = list(self._shares.get(vote_key, {}).values())
        if len(partials) < replica.intro_public.threshold:
            return
        self._m_combine.inc()
        try:
            signature = combine_with_retry(
                replica.intro_public, encrypted.signing_bytes(), partials
            )
        except SignatureError:
            # Fewer than f+1 honest shares so far; more are on the way
            # (the proxy fans out to 2f+k+1 on-premises replicas).
            replica.trace("intro.combine-failed", alias=key[0], seq=key[1])
            self._injected.discard(key)
            return
        signed = EncryptedUpdate(
            alias=encrypted.alias,
            client_seq=encrypted.client_seq,
            ciphertext=encrypted.ciphertext,
            threshold_sig=signature,
        )
        self._injected.add(key)
        self._m_injected.inc()
        replica.engine.inject(
            OpaqueUpdate(digest=signed.digest(), payload=signed, size=signed.wire_size())
        )
        replica.trace("intro.injected", alias=key[0], seq=key[1])

    # -- plain (baseline) path ---------------------------------------------------------

    def _introduce_plain(self, alias: str, update: ClientUpdate) -> None:
        key = (alias, update.client_seq)
        self._plain_pending[key] = update
        rank = self.introducer_rank(alias)
        if rank <= 1:
            self._inject_plain(key)
        elif key not in self._failover_timers:
            self._failover_timers[key] = self._replica.kernel.call_later(
                (rank - 1) * self.failover_delay, self._inject_plain_failover, key
            )

    def _inject_plain_failover(self, key: IntroKey) -> None:
        self._failover_timers.pop(key, None)
        if key in self._done or not self._replica.online:
            return
        self._inject_plain(key)

    def _inject_plain(self, key: IntroKey) -> None:
        update = self._plain_pending.get(key)
        if update is None or key in self._done or key in self._injected:
            return
        self._injected.add(key)
        self._m_injected.inc()
        self._replica.engine.inject(
            OpaqueUpdate(digest=update.digest(), payload=update, size=update.wire_size())
        )
        # Same span milestone as the confidential path: the update entered
        # Prime here, whatever authenticated it.
        self._replica.trace("intro.injected", alias=key[0], seq=key[1])

    # -- shared plumbing ------------------------------------------------------------------

    def introducer_rank(self, alias: str) -> int:
        """This replica's position in the client's introducer preference
        list: a deterministic rotation of the on-premises replicas with
        consecutive ranks alternating between the two on-premises sites,
        so losing a whole site never removes more than every other rank."""
        ordered = self.preference_list(alias)
        return ordered.index(self._replica.host)

    def preference_list(self, alias: str) -> List[str]:
        """The full introducer preference order for a client alias."""
        cached = self._pref_cache.get(alias)
        if cached is not None:
            return cached
        replica = self._replica
        hosts = sorted([replica.host] + replica.on_premises_peers())
        topology = replica.env.network.topology
        by_site: Dict[str, List[str]] = {}
        for host in hosts:
            by_site.setdefault(topology.site_of(host).name, []).append(host)
        columns = [by_site[site] for site in sorted(by_site)]
        interleaved: List[str] = []
        for row in range(max(len(c) for c in columns)):
            for column in columns:
                if row < len(column):
                    interleaved.append(column[row])
        offset = int(hashlib.sha256(alias.encode("utf-8")).hexdigest(), 16)
        rotation = offset % len(interleaved)
        ordered = interleaved[rotation:] + interleaved[:rotation]
        self._pref_cache[alias] = ordered
        return ordered

    def mark_executed(self, alias: str, client_seq: int) -> None:
        """The update was globally ordered and executed: stop failovers."""
        key = (alias, client_seq)
        self._done.add(key)
        timer = self._failover_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._assembled.pop(key, None)
        self._plain_pending.pop(key, None)
        self._injected.discard(key)
        self._echoed.discard(key)
        self._batch_failover_initiated.discard(key)
        for vote_key in [vk for vk in self._shares if (vk[0], vk[1]) == key]:
            del self._shares[vote_key]

    def drain_awaiting_keys(self, alias: str) -> None:
        """A new key epoch is available: retry parked updates."""
        parked = self._awaiting_keys.pop(alias, [])
        for update in parked:
            if (alias, update.client_seq) not in self._done:
                self._introduce_confidential(alias, update)

    @property
    def parked_updates(self) -> int:
        return sum(len(v) for v in self._awaiting_keys.values())
