"""Introducing client updates into the global order (Section V-A).

Confidential mode: each on-premises replica that receives a proxy-signed
update verifies the proxy signature, deterministically encrypts the update
(so all replicas produce the identical ciphertext), generates a threshold
signature share over the ciphertext, and multicasts the share to its
on-premises peers. Whoever collects f+1 shares can assemble a full
threshold signature that every replica — including data-center replicas
that cannot decrypt the update — can verify before helping to order it.

Plain mode (Spire 1.2 baseline): the proxy's own signature authenticates
the update; the receiving replica injects it directly.

In both modes, one deterministic *introducer* per client actually injects
(Spire's ITRC assigns clients to replicas); the other replicas hold the
assembled update and inject it themselves only if it fails to get ordered
within a rank-staggered failover delay, so a crashed or compromised
introducer costs one timeout, not liveness.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.core.messages import (
    ClientUpdate,
    EncryptedUpdate,
    IntroShare,
    client_alias,
    pack_update,
)
from repro.crypto.threshold import combine_with_retry
from repro.crypto.verifycache import verify_with
from repro.errors import SignatureError
from repro.prime.messages import OpaqueUpdate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.replica import ExecutingReplica

IntroKey = Tuple[str, int]  # (alias, client_seq)


class IntroductionManager:
    """Update introduction pipeline for one executing replica."""

    def __init__(self, replica: "ExecutingReplica", failover_delay: float = 0.120):
        self._replica = replica
        metrics = replica.metrics
        self._m_rsa_verify = metrics.counter("crypto.rsa.verify", op="client-update")
        self._m_aes_encrypt = metrics.counter("crypto.aes.encrypt")
        self._m_partial = metrics.counter("crypto.threshold.partial", op="intro")
        self._m_combine = metrics.counter("crypto.threshold.combine", op="intro")
        self._m_shares = metrics.counter("intro.shares_received")
        self._m_injected = metrics.counter("intro.injected")
        self._m_failovers = metrics.counter("intro.failovers")
        self.failover_delay = failover_delay
        self._shares: Dict[Tuple[str, int, bytes], Dict[int, object]] = {}
        self._assembled: Dict[IntroKey, EncryptedUpdate] = {}
        self._plain_pending: Dict[IntroKey, ClientUpdate] = {}
        self._failover_timers: Dict[IntroKey, object] = {}
        self._injected: Set[IntroKey] = set()
        self._done: Set[IntroKey] = set()
        self._awaiting_keys: Dict[str, List[ClientUpdate]] = {}

    # -- entry: proxy-signed update arrives ------------------------------------

    def on_client_update(self, update: ClientUpdate) -> None:
        replica = self._replica
        public = replica.client_registry.get(update.client_id)
        if public is None:
            replica.trace("intro.unknown-client", client=update.client_id)
            return
        cost = replica.costs.rsa_verify
        self._m_rsa_verify.inc()
        replica.after(cost, self._verified_update, update, public)

    def _verified_update(self, update: ClientUpdate, public) -> None:
        replica = self._replica
        if not replica.online:
            return
        if not verify_with(
            replica.env.verify_cache, public, update.signing_bytes(), update.signature
        ):
            replica.trace("intro.bad-signature", client=update.client_id)
            return
        alias = client_alias(update.client_id)
        key = (alias, update.client_seq)
        if replica.is_executed(alias, update.client_seq):
            replica.resend_response(update.client_id, update.client_seq)
            return
        if key in self._done or key in self._injected:
            return
        if replica.confidential:
            self._introduce_confidential(alias, update)
        else:
            self._introduce_plain(alias, update)

    # -- confidential path ---------------------------------------------------------

    def _introduce_confidential(self, alias: str, update: ClientUpdate) -> None:
        replica = self._replica
        if not replica.key_manager.can_encrypt(alias, update.client_seq):
            # Key renewal for this range has not completed; park the update
            # (drained by KeyRenewalManager when the epoch appears).
            self._awaiting_keys.setdefault(alias, []).append(update)
            replica.trace("intro.awaiting-key", alias=alias, seq=update.client_seq)
            return
        packed = pack_update(update.client_id, update.client_seq, update.body.data)
        self._m_aes_encrypt.inc()
        ciphertext = replica.key_manager.encrypt_update(alias, update.client_seq, packed)
        encrypted = EncryptedUpdate(
            alias=alias, client_seq=update.client_seq, ciphertext=ciphertext
        )
        cost = replica.costs.update_encrypt + replica.costs.threshold_partial
        replica.after(cost, self._share_partial, encrypted)

    def _share_partial(self, encrypted: EncryptedUpdate) -> None:
        replica = self._replica
        if not replica.online:
            return
        self._m_partial.inc()
        partial = replica.intro_share.sign_partial(encrypted.signing_bytes())
        share = IntroShare(
            alias=encrypted.alias,
            client_seq=encrypted.client_seq,
            update_digest=encrypted.digest(),
            partial=partial,
        )
        self._assembled.setdefault((encrypted.alias, encrypted.client_seq), encrypted)
        for peer in replica.on_premises_peers():
            replica.network_send(peer, share)
        self.on_intro_share(replica.host, share)

    def on_intro_share(self, src: str, share: IntroShare) -> None:
        replica = self._replica
        self._m_shares.inc()
        key = (share.alias, share.client_seq)
        if key in self._done:
            return
        vote_key = (share.alias, share.client_seq, share.update_digest)
        partials = self._shares.setdefault(vote_key, {})
        partials[share.partial.signer] = share.partial
        if len(partials) < replica.intro_public.threshold:
            return
        encrypted = self._assembled.get(key)
        if encrypted is None or encrypted.digest() != share.update_digest:
            return
        if key in self._injected:
            return
        rank = self.introducer_rank(share.alias)
        if rank <= 1:
            # Two immediate introducers, one per on-premises site (the
            # preference list alternates sites): a site disconnection
            # costs nothing on the introduction path. Prime deduplicates
            # at execution.
            replica.after(replica.costs.threshold_combine, self._combine_and_inject, key)
        elif key not in self._failover_timers:
            delay = (rank - 1) * self.failover_delay
            self._failover_timers[key] = replica.kernel.call_later(
                delay, self._failover_inject, key
            )

    def _failover_inject(self, key: IntroKey) -> None:
        self._failover_timers.pop(key, None)
        if key in self._done or key in self._injected or not self._replica.online:
            return
        self._m_failovers.inc()
        self._replica.trace("intro.failover", alias=key[0], seq=key[1])
        self._combine_and_inject(key)

    def _combine_and_inject(self, key: IntroKey) -> None:
        replica = self._replica
        if key in self._done or key in self._injected or not replica.online:
            return
        encrypted = self._assembled.get(key)
        if encrypted is None:
            return
        vote_key = (key[0], key[1], encrypted.digest())
        partials = list(self._shares.get(vote_key, {}).values())
        if len(partials) < replica.intro_public.threshold:
            return
        self._m_combine.inc()
        try:
            signature = combine_with_retry(
                replica.intro_public, encrypted.signing_bytes(), partials
            )
        except SignatureError:
            # Fewer than f+1 honest shares so far; more are on the way
            # (the proxy fans out to 2f+k+1 on-premises replicas).
            replica.trace("intro.combine-failed", alias=key[0], seq=key[1])
            self._injected.discard(key)
            return
        signed = EncryptedUpdate(
            alias=encrypted.alias,
            client_seq=encrypted.client_seq,
            ciphertext=encrypted.ciphertext,
            threshold_sig=signature,
        )
        self._injected.add(key)
        self._m_injected.inc()
        replica.engine.inject(
            OpaqueUpdate(digest=signed.digest(), payload=signed, size=signed.wire_size())
        )
        replica.trace("intro.injected", alias=key[0], seq=key[1])

    # -- plain (baseline) path ---------------------------------------------------------

    def _introduce_plain(self, alias: str, update: ClientUpdate) -> None:
        key = (alias, update.client_seq)
        self._plain_pending[key] = update
        rank = self.introducer_rank(alias)
        if rank <= 1:
            self._inject_plain(key)
        elif key not in self._failover_timers:
            self._failover_timers[key] = self._replica.kernel.call_later(
                (rank - 1) * self.failover_delay, self._inject_plain_failover, key
            )

    def _inject_plain_failover(self, key: IntroKey) -> None:
        self._failover_timers.pop(key, None)
        if key in self._done or not self._replica.online:
            return
        self._inject_plain(key)

    def _inject_plain(self, key: IntroKey) -> None:
        update = self._plain_pending.get(key)
        if update is None or key in self._done or key in self._injected:
            return
        self._injected.add(key)
        self._m_injected.inc()
        self._replica.engine.inject(
            OpaqueUpdate(digest=update.digest(), payload=update, size=update.wire_size())
        )
        # Same span milestone as the confidential path: the update entered
        # Prime here, whatever authenticated it.
        self._replica.trace("intro.injected", alias=key[0], seq=key[1])

    # -- shared plumbing ------------------------------------------------------------------

    def introducer_rank(self, alias: str) -> int:
        """This replica's position in the client's introducer preference
        list: a deterministic rotation of the on-premises replicas with
        consecutive ranks alternating between the two on-premises sites,
        so losing a whole site never removes more than every other rank."""
        ordered = self.preference_list(alias)
        return ordered.index(self._replica.host)

    def preference_list(self, alias: str) -> List[str]:
        """The full introducer preference order for a client alias."""
        replica = self._replica
        hosts = sorted([replica.host] + replica.on_premises_peers())
        topology = replica.env.network.topology
        by_site: Dict[str, List[str]] = {}
        for host in hosts:
            by_site.setdefault(topology.site_of(host).name, []).append(host)
        columns = [by_site[site] for site in sorted(by_site)]
        interleaved: List[str] = []
        for row in range(max(len(c) for c in columns)):
            for column in columns:
                if row < len(column):
                    interleaved.append(column[row])
        offset = int(hashlib.sha256(alias.encode("utf-8")).hexdigest(), 16)
        rotation = offset % len(interleaved)
        return interleaved[rotation:] + interleaved[:rotation]

    def mark_executed(self, alias: str, client_seq: int) -> None:
        """The update was globally ordered and executed: stop failovers."""
        key = (alias, client_seq)
        self._done.add(key)
        timer = self._failover_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._assembled.pop(key, None)
        self._plain_pending.pop(key, None)
        self._injected.discard(key)
        for vote_key in [vk for vk in self._shares if (vk[0], vk[1]) == key]:
            del self._shares[vote_key]

    def drain_awaiting_keys(self, alias: str) -> None:
        """A new key epoch is available: retry parked updates."""
        parked = self._awaiting_keys.pop(alias, [])
        for update in parked:
            if (alias, update.client_seq) not in self._done:
                self._introduce_confidential(alias, update)

    @property
    def parked_updates(self) -> int:
        return sum(len(v) for v in self._awaiting_keys.values())
