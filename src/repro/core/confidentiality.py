"""Confidentiality auditing: who saw plaintext?

Definition 3 of the paper (Complete Confidentiality) says system state and
state-manipulation algorithms must remain known only to on-premises
replicas. Rather than asserting this by construction, the reproduction
*measures* it:

- plaintext application data is wrapped in :class:`Sensitive` at its
  source (proxies, application snapshots),
- CP-ITM messages expose ``sensitive_parts()`` listing the sensitive
  fields they carry,
- an :class:`Auditor` hooks the network layer and records every host that
  receives a message with sensitive parts, plus every host that explicitly
  observes plaintext (decryption, execution, snapshotting).

Tests and benchmarks then assert the exposure set: in Confidential Spire
it must contain only on-premises hosts; in the Spire 1.2 baseline the
data-center hosts show up — quantifying exactly the gap the paper closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Set, Tuple

from repro.errors import ConfidentialityViolation


@dataclass(frozen=True)
class Sensitive:
    """Plaintext application data; anything holding it is tainted.

    The wrapper is deliberately thin — ``data`` is the payload — so code
    that legitimately handles plaintext unwraps explicitly, and code that
    should never see plaintext fails loudly in tests if it tries.
    """

    data: bytes
    label: str = "client-data"

    def __len__(self) -> int:
        return len(self.data)


class Auditor:
    """Records plaintext exposure per host."""

    def __init__(self, strict_hosts: Optional[Set[str]] = None, tracer=None):
        # Hosts that must never observe plaintext; exposure raises
        # immediately when strict, otherwise it is only recorded.
        self.strict_hosts = strict_hosts or set()
        # Optional tracer: exposures also become ``audit.exposure`` trace
        # events so online monitors (the FaultLab invariant checker) see
        # them the moment they happen, with a timestamp.
        self.tracer = tracer
        self._exposures: List[Tuple[str, str, str]] = []  # (host, label, channel)
        self._exposed_hosts: Set[str] = set()

    def observe(self, host: str, label: str, channel: str = "local") -> None:
        """Record that ``host`` observed plaintext tagged ``label``."""
        self._exposures.append((host, label, channel))
        self._exposed_hosts.add(host)
        if self.tracer is not None:
            self.tracer.record("audit.exposure", host, label=label, channel=channel)
        if host in self.strict_hosts:
            raise ConfidentialityViolation(
                f"host {host!r} observed sensitive data {label!r} via {channel}"
            )

    def inspect_delivery(self, dst: str, payload: Any) -> None:
        """Network hook: check a delivered payload for sensitive parts."""
        parts = getattr(payload, "sensitive_parts", None)
        if parts is None:
            return
        for label in parts():
            self.observe(dst, label, channel="network")

    @property
    def exposed_hosts(self) -> Set[str]:
        return set(self._exposed_hosts)

    def exposures_for(self, host: str) -> List[Tuple[str, str]]:
        return [(label, channel) for h, label, channel in self._exposures if h == host]

    def assert_clean(self, hosts: Set[str]) -> None:
        """Raise unless none of ``hosts`` ever observed plaintext."""
        dirty = self._exposed_hosts & hosts
        if dirty:
            raise ConfidentialityViolation(
                f"hosts observed plaintext that must not have: {sorted(dirty)}"
            )
