"""Number-theoretic building blocks for the RSA and threshold-RSA layers.

Everything here is deterministic given an explicit ``random.Random`` source,
so key generation inside a simulation is reproducible from the run seed.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

# Small primes used to pre-screen candidates before Miller-Rabin. Trial
# division by these removes ~90% of composites at negligible cost.
_SMALL_PRIMES: Tuple[int, ...] = tuple(
    p
    for p in range(3, 2000)
    if all(p % q for q in range(2, int(p ** 0.5) + 1))
)


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Inverse of ``a`` modulo ``m``; raises ValueError if none exists."""
    g, x, _ = egcd(a % m, m)
    if g != 1:
        raise ValueError(f"{a} has no inverse modulo {m}")
    return x % m


def is_probable_prime(n: int, rng: Optional[random.Random] = None, rounds: int = 32) -> bool:
    """Miller-Rabin primality test.

    With 32 random bases the error probability is below 2**-64, far beyond
    what a simulation needs. Deterministic for fixed ``rng`` state.
    """
    if n < 2:
        return False
    for p in (2,) + _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 as d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    rng = rng or random.Random(n)
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size must be at least 8 bits")
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


def generate_safe_prime(bits: int, rng: random.Random) -> int:
    """Generate a safe prime p = 2q + 1 with ``bits`` bits (q also prime).

    Safe primes are required by the Shoup threshold-RSA construction. We
    search by drawing a random Sophie Germain candidate q and testing both
    q and 2q+1, pre-screening both against small primes simultaneously so
    most candidates are rejected without a Miller-Rabin call.
    """
    if bits < 16:
        raise ValueError("safe prime size must be at least 16 bits")
    while True:
        q = rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        # Joint small-prime screen: p % s == 0 iff q % s == (s - 1) // 2.
        ok = True
        for s in _SMALL_PRIMES:
            if q % s == 0 or p % s == 0:
                ok = q == s or p == s
                if not ok:
                    break
        if not ok:
            continue
        if is_probable_prime(q, rng, rounds=16) and is_probable_prime(p, rng, rounds=16):
            return p


def crt_combine(r_p: int, p: int, r_q: int, q: int) -> int:
    """Chinese-remainder combination of residues mod two coprime moduli."""
    q_inv = modinv(q, p)
    h = (q_inv * (r_p - r_q)) % p
    return (r_q + h * q) % (p * q)


def int_to_bytes(n: int, length: Optional[int] = None) -> bytes:
    """Big-endian byte encoding; sized to fit if ``length`` is omitted."""
    if length is None:
        length = max(1, (n.bit_length() + 7) // 8)
    return n.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Big-endian byte decoding."""
    return int.from_bytes(data, "big")
