"""Merkle trees over update digests (BatchLab, Section V-A batching).

A batch of client updates is certified by one threshold signature over
the Merkle root of the updates' digests; each update then carries a
logarithmic inclusion proof, so a verifier (a client proxy checking a
batched response, a storage replica auditing a batch) can tie one update
to the batch signature without seeing its siblings.

Construction: SHA-256 with domain separation between leaves and interior
nodes (``0x00`` / ``0x01`` prefixes), so a leaf can never be reinterpreted
as a node — the classic second-preimage defence. Odd nodes are promoted
unchanged to the next level (no duplication, so no CVE-2012-2459-style
ambiguity between a tree and its padded twin).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import CryptoError

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def leaf_hash(data: bytes) -> bytes:
    return hashlib.sha256(_LEAF_PREFIX + data).digest()


def node_hash(left: bytes, right: bytes) -> bytes:
    return hashlib.sha256(_NODE_PREFIX + left + right).digest()


def _levels(leaves: Sequence[bytes]) -> List[List[bytes]]:
    if not leaves:
        raise CryptoError("cannot build a Merkle tree over zero leaves")
    level = [leaf_hash(leaf) for leaf in leaves]
    levels = [level]
    while len(level) > 1:
        nxt: List[bytes] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(node_hash(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])  # odd node: promoted, not duplicated
        level = nxt
        levels.append(level)
    return levels


def merkle_root(leaves: Sequence[bytes]) -> bytes:
    """Root digest over ``leaves`` (raw leaf data, not pre-hashed)."""
    return _levels(leaves)[-1][0]


@dataclass(frozen=True)
class MerkleProof:
    """Inclusion proof for one leaf: its index plus the sibling path.

    ``path`` entries are ``(sibling_digest, sibling_is_right)`` from the
    leaf level upward. Levels where the node had no sibling (odd-width
    promotion) contribute no entry, which is why the index rides along:
    verification re-derives at each level whether a sibling is expected.
    """

    leaf_index: int
    path: Tuple[Tuple[bytes, bool], ...]

    def wire_size(self) -> int:
        return 8 + sum(33 for _ in self.path)


def merkle_proof(leaves: Sequence[bytes], index: int) -> MerkleProof:
    """Inclusion proof for ``leaves[index]`` against ``merkle_root(leaves)``."""
    levels = _levels(leaves)
    if not 0 <= index < len(levels[0]):
        raise CryptoError(f"leaf index {index} out of range")
    path: List[Tuple[bytes, bool]] = []
    position = index
    for level in levels[:-1]:
        sibling = position ^ 1
        if sibling < len(level):
            path.append((level[sibling], sibling > position))
        position //= 2
    return MerkleProof(leaf_index=index, path=tuple(path))


def verify_inclusion(root: bytes, leaf: bytes, proof: MerkleProof) -> bool:
    """Check that ``leaf`` (raw data) sits at ``proof.leaf_index`` under
    ``root``. Robust against truncated or reordered paths: any tampering
    changes the recomputed root."""
    if proof.leaf_index < 0:
        return False
    digest = leaf_hash(leaf)
    for sibling, sibling_is_right in proof.path:
        if sibling_is_right:
            digest = node_hash(digest, sibling)
        else:
            digest = node_hash(sibling, digest)
    return digest == root
