"""Block-cipher modes: CBC with PKCS#7 padding.

Confidential Spire encrypts updates and checkpoints with AES-256-CBC
(Section VI-B); the IV comes from the deterministic HMAC construction in
:mod:`repro.crypto.symmetric`.
"""

from __future__ import annotations

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.errors import CryptoError, DecryptionError


def pkcs7_pad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Append PKCS#7 padding (always at least one byte)."""
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size:
        raise DecryptionError("ciphertext length not a multiple of the block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise DecryptionError("invalid padding length byte")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise DecryptionError("invalid padding bytes")
    return data[:-pad_len]


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (PKCS#7-padded) under ``cipher`` and ``iv``."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(padded[offset : offset + BLOCK_SIZE], previous))
        encrypted = cipher.encrypt_block(block)
        out.extend(encrypted)
        previous = encrypted
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`cbc_encrypt`; raises on malformed input."""
    if len(iv) != BLOCK_SIZE:
        raise CryptoError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise DecryptionError("ciphertext length not a multiple of the block size")
    out = bytearray()
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[offset : offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(decrypted, previous))
        previous = block
    return pkcs7_unpad(bytes(out))
