"""Memoized signature verification.

Retransmits and pipelined retries re-present byte-identical
(message, signature) pairs: every replica re-checks a client update's RSA
signature each time the client retransmits it, and a proxy re-checks the
same threshold signature when f+1 responders race to answer. Verification
is a pure function of the public key and the material, so a bounded LRU
of results removes the repeated modular exponentiations without changing
any outcome.

Key: ``(modulus, exponent, sha256(message), signature)``. The modulus
identifies both the signer and the key epoch — a renewed or re-dealt key
has a fresh modulus, so stale results cannot survive a key change. Both
``RsaPublicKey`` (``.n``) and ``ThresholdPublicKey`` (``.n_modulus``)
are supported; the key object itself is never used as a dict key
(``ThresholdPublicKey`` holds a dict field and is unhashable).

Results are cached whether valid or not: a Byzantine replay of a bad
signature hits the cached ``False`` instead of burning another modexp.

Simulated-time crypto *costs* are charged by the caller's cost model as
before; the cache only skips the real computation, so sim traces are
byte-identical with the cache on or off.
"""
from __future__ import annotations

import hashlib
from typing import Any, Optional

from repro.cache import MISS, BoundedLru


def _key_modulus(public: Any) -> int:
    modulus = getattr(public, "n_modulus", None)
    if modulus is None:
        modulus = public.n
    return modulus


class VerifyCache:
    """Bounded memo for ``public.verify(message, signature)`` results."""

    __slots__ = ("_lru",)

    def __init__(
        self,
        capacity: int = 4096,
        hit_counter: Optional[Any] = None,
        miss_counter: Optional[Any] = None,
    ) -> None:
        self._lru = BoundedLru(capacity, hit_counter, miss_counter)

    def verify(self, public: Any, message: bytes, signature: bytes) -> bool:
        key = (
            _key_modulus(public),
            public.e,
            hashlib.sha256(message).digest(),
            signature,
        )
        cached = self._lru.get(key)
        if cached is not MISS:
            return cached
        result = bool(public.verify(message, signature))
        self._lru.put(key, result)
        return result

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)


def verify_with(
    cache: Optional["VerifyCache"], public: Any, message: bytes, signature: bytes
) -> bool:
    """Verify through ``cache`` when one is wired, else directly."""
    if cache is None:
        return bool(public.verify(message, signature))
    return cache.verify(public, message, signature)
