"""Plain RSA signatures (per-replica and per-proxy signing keys).

This implements textbook RSA with deterministic PKCS#1-v1.5-style padding
over a SHA-256 digest. It is used for:

- proxy signatures on client updates (Section V-A),
- replica session-level signing keys (refreshed after proactive recovery),
- the TPM-resident identity keys used to bootstrap recovery.

Key sizes are configurable; simulations default to short keys for speed and
the primitives are exercised against each other (sign/verify round trips),
not against external fixtures, since padding here is intentionally the
simplified deterministic variant described in DESIGN.md.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto.numbers import bytes_to_int, generate_prime, int_to_bytes, modinv
from repro.errors import SignatureError

_DEFAULT_PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e)."""

    n: int
    e: int

    @property
    def byte_length(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> bool:
        """True iff ``signature`` is a valid signature on ``message``."""
        if len(signature) != self.byte_length:
            return False
        s = bytes_to_int(signature)
        if s >= self.n:
            return False
        em = pow(s, self.e, self.n)
        return em == bytes_to_int(_encode_digest(message, self.byte_length))

    def require_valid(self, message: bytes, signature: bytes, context: str = "") -> None:
        """Raise :class:`SignatureError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise SignatureError(f"invalid RSA signature{': ' + context if context else ''}")


@dataclass(frozen=True)
class RsaKeyPair:
    """RSA key pair; the private exponent stays inside this object."""

    public: RsaPublicKey
    d: int

    def sign(self, message: bytes) -> bytes:
        """Deterministically sign ``message`` (hash-then-pad-then-exponent)."""
        em = bytes_to_int(_encode_digest(message, self.public.byte_length))
        s = pow(em, self.d, self.public.n)
        return int_to_bytes(s, self.public.byte_length)


def _encode_digest(message: bytes, em_len: int) -> bytes:
    """PKCS#1-v1.5-style deterministic encoding of SHA-256(message).

    Layout: 0x00 0x01 PS 0x00 DIGEST, with PS = 0xff padding. This keeps the
    encoded value below the modulus and fixed-length, which is all the
    protocol layer relies on.
    """
    digest = hashlib.sha256(message).digest()
    ps_len = em_len - len(digest) - 3
    if ps_len < 1:
        raise ValueError(f"modulus too small for SHA-256 encoding ({em_len} bytes)")
    return b"\x00\x01" + b"\xff" * ps_len + b"\x00" + digest


def generate_keypair(bits: int, rng: random.Random, e: int = _DEFAULT_PUBLIC_EXPONENT) -> RsaKeyPair:
    """Generate an RSA key pair with a ``bits``-bit modulus.

    ``bits`` of 512 is plenty inside a simulation; 2048+ works but slows key
    generation noticeably in pure Python.
    """
    if bits < 384:
        raise ValueError("RSA modulus must be at least 384 bits to fit SHA-256 padding")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue
        return RsaKeyPair(public=RsaPublicKey(n=n, e=e), d=d)
