"""Hardware-protected key storage (TPM / Intel SGX model).

The paper relies on two hardware-rooted keys per replica (Sections III-B
and V-D):

- a persistent asymmetric *identity* key used to bootstrap proactive
  recovery and certify fresh session signing keys,
- on on-premises replicas only, a persistent shared symmetric key used to
  encrypt key-renewal proposals and checkpoints, such that data-center
  replicas can store but never read them.

This module models exactly the properties the protocols depend on:

1. keys can be *used* (sign/encrypt/decrypt) by whoever controls the
   machine — including an attacker during a compromise window;
2. keys can never be *exported*: any attempt raises
   :class:`KeyExfiltrationError` (this is what the confidentiality
   analysis of Section V-D leans on);
3. keys survive :meth:`HardwareKeyStore.wipe`, which models the proactive
   recovery wipe of all session state.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.crypto import symmetric
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.symmetric import SymmetricKeyPair
from repro.errors import KeyExfiltrationError


class HardwareKeyStore:
    """A single replica's trusted-hardware key compartment."""

    def __init__(
        self,
        host: str,
        identity_key: RsaKeyPair,
        shared_symmetric: Optional[SymmetricKeyPair] = None,
    ):
        self.host = host
        self._identity_key = identity_key
        self._shared_symmetric = shared_symmetric
        self._session_key: Optional[RsaKeyPair] = None
        self.wipe_count = 0

    # -- identity key ------------------------------------------------------

    @property
    def identity_public(self) -> RsaPublicKey:
        """The persistent identity public key (safe to distribute)."""
        return self._identity_key.public

    def identity_sign(self, message: bytes) -> bytes:
        """Sign with the TPM identity key (used only during recovery)."""
        return self._identity_key.sign(message)

    # -- session signing key ----------------------------------------------

    def generate_session_key(self, bits: int, rng: random.Random) -> RsaPublicKey:
        """Generate a fresh session signing key; returns its public half.

        Called at startup and after every proactive recovery. The new
        public key is certified to peers with :meth:`identity_sign`.
        """
        self._session_key = generate_keypair(bits, rng)
        return self._session_key.public

    @property
    def session_public(self) -> RsaPublicKey:
        if self._session_key is None:
            raise KeyExfiltrationError(f"{self.host}: no session key generated yet")
        return self._session_key.public

    def session_sign(self, message: bytes) -> bytes:
        if self._session_key is None:
            raise KeyExfiltrationError(f"{self.host}: no session key generated yet")
        return self._session_key.sign(message)

    # -- shared symmetric key (on-premises replicas only) -------------------

    @property
    def has_shared_symmetric(self) -> bool:
        return self._shared_symmetric is not None

    def hardware_encrypt(self, plaintext: bytes) -> bytes:
        """Encrypt under the non-exfiltratable shared symmetric key."""
        if self._shared_symmetric is None:
            raise KeyExfiltrationError(
                f"{self.host}: no hardware symmetric key provisioned"
            )
        return symmetric.encrypt(self._shared_symmetric, plaintext)

    def hardware_decrypt(self, blob: bytes) -> bytes:
        """Decrypt under the non-exfiltratable shared symmetric key."""
        if self._shared_symmetric is None:
            raise KeyExfiltrationError(
                f"{self.host}: no hardware symmetric key provisioned"
            )
        return symmetric.decrypt(self._shared_symmetric, blob)

    # -- the property the whole design leans on -----------------------------

    def export_keys(self) -> Dict[str, bytes]:
        """Hardware keys cannot leave the device. Always raises.

        The attack model in :mod:`repro.system.adversary` calls this when a
        compromised replica tries to exfiltrate its root keys; the raise is
        the simulated hardware saying no.
        """
        raise KeyExfiltrationError(
            f"{self.host}: hardware-protected keys are not exportable"
        )

    # -- proactive recovery --------------------------------------------------

    def wipe(self) -> None:
        """Model a proactive-recovery wipe: session state dies, roots survive."""
        self._session_key = None
        self.wipe_count += 1
