"""Pure-Python AES (FIPS-197) supporting 128/192/256-bit keys.

Confidential Spire encrypts client updates and checkpoints with AES-256 in
CBC mode (Section VI-B); this module supplies the block cipher, and
:mod:`repro.crypto.modes` supplies CBC + PKCS#7.

The S-box and round tables are *derived* at import time from the GF(2^8)
arithmetic in the standard rather than pasted in as magic constants: the
derivation is a dozen lines, self-checking (tests pin the FIPS-197 example
vectors), and immune to table typos. Encryption uses the classic T-table
formulation (four 256-entry 32-bit tables) which is the difference between
"usable in a simulation" and "minutes per benchmark" in CPython.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import CryptoError


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial 0x11B."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """General GF(2^8) multiplication (only used for table derivation)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    """Derive the AES S-box and its inverse from first principles."""
    # Multiplicative inverses via exponentiation by generator 3.
    pow3 = [1] * 256
    log3 = [0] * 256
    value = 1
    for i in range(255):
        pow3[i] = value
        log3[value] = i
        value = _gf_mul(value, 3)
    sbox = [0] * 256
    for x in range(256):
        inv = 0 if x == 0 else pow3[255 - log3[x]]
        # Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i.
        b = inv
        result = 0x63
        for shift in (1, 2, 3, 4):
            rotated = ((b << shift) | (b >> (8 - shift))) & 0xFF
            result ^= rotated
        result ^= b
        sbox[x] = result & 0xFF
    inv_sbox = [0] * 256
    for x, y in enumerate(sbox):
        inv_sbox[y] = x
    return sbox, inv_sbox


SBOX, INV_SBOX = _build_sbox()

# Encryption T-tables: T0[a] = (S[a]*2, S[a], S[a], S[a]*3) packed big-endian.
_T0 = [0] * 256
_T1 = [0] * 256
_T2 = [0] * 256
_T3 = [0] * 256
for _a in range(256):
    _s = SBOX[_a]
    _s2 = _xtime(_s)
    _s3 = _s2 ^ _s
    _word = (_s2 << 24) | (_s << 16) | (_s << 8) | _s3
    _T0[_a] = _word
    _T1[_a] = ((_word >> 8) | (_word << 24)) & 0xFFFFFFFF
    _T2[_a] = ((_word >> 16) | (_word << 16)) & 0xFFFFFFFF
    _T3[_a] = ((_word >> 24) | (_word << 8)) & 0xFFFFFFFF

# Decryption tables for InvMixColumns(InvSubBytes): multipliers 14,9,13,11.
_D0 = [0] * 256
_D1 = [0] * 256
_D2 = [0] * 256
_D3 = [0] * 256
for _a in range(256):
    _s = INV_SBOX[_a]
    _word = (
        (_gf_mul(_s, 14) << 24)
        | (_gf_mul(_s, 9) << 16)
        | (_gf_mul(_s, 13) << 8)
        | _gf_mul(_s, 11)
    )
    _D0[_a] = _word
    _D1[_a] = ((_word >> 8) | (_word << 24)) & 0xFFFFFFFF
    _D2[_a] = ((_word >> 16) | (_word << 16)) & 0xFFFFFFFF
    _D3[_a] = ((_word >> 24) | (_word << 8)) & 0xFFFFFFFF

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))

BLOCK_SIZE = 16


class AES:
    """An AES cipher keyed once and reused for many blocks."""

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        self._dec_round_keys = self._expand_decryption_key()

    @property
    def rounds(self) -> int:
        return self._rounds

    def _expand_key(self, key: bytes) -> List[int]:
        nk = len(key) // 4
        total_words = 4 * (self._rounds + 1)
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, total_words):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (SBOX[(temp >> 24) & 0xFF] << 24)
                    | (SBOX[(temp >> 16) & 0xFF] << 16)
                    | (SBOX[(temp >> 8) & 0xFF] << 8)
                    | SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _expand_decryption_key(self) -> List[int]:
        """Equivalent-inverse-cipher key schedule: InvMixColumns applied to
        the middle round keys so decryption can use the D-tables directly."""
        enc = self._round_keys
        dec = list(enc)
        for round_index in range(1, self._rounds):
            for col in range(4):
                word = enc[4 * round_index + col]
                b0 = (word >> 24) & 0xFF
                b1 = (word >> 16) & 0xFF
                b2 = (word >> 8) & 0xFF
                b3 = word & 0xFF
                dec[4 * round_index + col] = (
                    ((_gf_mul(b0, 14) ^ _gf_mul(b1, 11) ^ _gf_mul(b2, 13) ^ _gf_mul(b3, 9)) << 24)
                    | ((_gf_mul(b0, 9) ^ _gf_mul(b1, 14) ^ _gf_mul(b2, 11) ^ _gf_mul(b3, 13)) << 16)
                    | ((_gf_mul(b0, 13) ^ _gf_mul(b1, 9) ^ _gf_mul(b2, 14) ^ _gf_mul(b3, 11)) << 8)
                    | (_gf_mul(b0, 11) ^ _gf_mul(b1, 13) ^ _gf_mul(b2, 9) ^ _gf_mul(b3, 14))
                )
        return dec

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for round_index in range(1, self._rounds):
            base = 4 * round_index
            n0 = (
                t0[(s0 >> 24) & 0xFF]
                ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF]
                ^ t3[s3 & 0xFF]
                ^ rk[base]
            )
            n1 = (
                t0[(s1 >> 24) & 0xFF]
                ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF]
                ^ t3[s0 & 0xFF]
                ^ rk[base + 1]
            )
            n2 = (
                t0[(s2 >> 24) & 0xFF]
                ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF]
                ^ t3[s1 & 0xFF]
                ^ rk[base + 2]
            )
            n3 = (
                t0[(s3 >> 24) & 0xFF]
                ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF]
                ^ t3[s2 & 0xFF]
                ^ rk[base + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
        base = 4 * self._rounds
        sbox = SBOX
        o0 = (
            (sbox[(s0 >> 24) & 0xFF] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ rk[base]
        o1 = (
            (sbox[(s1 >> 24) & 0xFF] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ rk[base + 1]
        o2 = (
            (sbox[(s2 >> 24) & 0xFF] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ rk[base + 2]
        o3 = (
            (sbox[(s3 >> 24) & 0xFF] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ rk[base + 3]
        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        rk = self._dec_round_keys
        rounds = self._rounds
        base = 4 * rounds
        s0 = int.from_bytes(block[0:4], "big") ^ rk[base]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[base + 1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[base + 2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[base + 3]
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        for round_index in range(rounds - 1, 0, -1):
            rbase = 4 * round_index
            n0 = (
                d0[(s0 >> 24) & 0xFF]
                ^ d1[(s3 >> 16) & 0xFF]
                ^ d2[(s2 >> 8) & 0xFF]
                ^ d3[s1 & 0xFF]
                ^ rk[rbase]
            )
            n1 = (
                d0[(s1 >> 24) & 0xFF]
                ^ d1[(s0 >> 16) & 0xFF]
                ^ d2[(s3 >> 8) & 0xFF]
                ^ d3[s2 & 0xFF]
                ^ rk[rbase + 1]
            )
            n2 = (
                d0[(s2 >> 24) & 0xFF]
                ^ d1[(s1 >> 16) & 0xFF]
                ^ d2[(s0 >> 8) & 0xFF]
                ^ d3[s3 & 0xFF]
                ^ rk[rbase + 2]
            )
            n3 = (
                d0[(s3 >> 24) & 0xFF]
                ^ d1[(s2 >> 16) & 0xFF]
                ^ d2[(s1 >> 8) & 0xFF]
                ^ d3[s0 & 0xFF]
                ^ rk[rbase + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
        inv = INV_SBOX
        rk0 = self._round_keys
        o0 = (
            (inv[(s0 >> 24) & 0xFF] << 24)
            | (inv[(s3 >> 16) & 0xFF] << 16)
            | (inv[(s2 >> 8) & 0xFF] << 8)
            | inv[s1 & 0xFF]
        ) ^ rk0[0]
        o1 = (
            (inv[(s1 >> 24) & 0xFF] << 24)
            | (inv[(s0 >> 16) & 0xFF] << 16)
            | (inv[(s3 >> 8) & 0xFF] << 8)
            | inv[s2 & 0xFF]
        ) ^ rk0[1]
        o2 = (
            (inv[(s2 >> 24) & 0xFF] << 24)
            | (inv[(s1 >> 16) & 0xFF] << 16)
            | (inv[(s0 >> 8) & 0xFF] << 8)
            | inv[s3 & 0xFF]
        ) ^ rk0[2]
        o3 = (
            (inv[(s3 >> 24) & 0xFF] << 24)
            | (inv[(s2 >> 16) & 0xFF] << 16)
            | (inv[(s1 >> 8) & 0xFF] << 8)
            | inv[s0 & 0xFF]
        ) ^ rk0[3]
        return (
            o0.to_bytes(4, "big")
            + o1.to_bytes(4, "big")
            + o2.to_bytes(4, "big")
            + o3.to_bytes(4, "big")
        )
