"""Shamir secret sharing over a prime field.

Used directly by the secret-sharing confidential-BFT baseline
(:mod:`repro.baselines.secret_store`, modelling DepSpace/Belisarius/COBRA
from the paper's related work) and as the conceptual basis of the threshold
RSA share dealing in :mod:`repro.crypto.threshold`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.crypto.numbers import modinv
from repro.errors import CryptoError

# A 257-bit prime, large enough to embed any 32-byte secret chunk.
DEFAULT_PRIME = 2 ** 256 + 297


@dataclass(frozen=True)
class Share:
    """One Shamir share: the point (x, y) on the dealing polynomial."""

    x: int
    y: int


def split_secret(
    secret: int,
    threshold: int,
    num_shares: int,
    rng: random.Random,
    prime: int = DEFAULT_PRIME,
) -> Dict[int, Share]:
    """Split ``secret`` into ``num_shares`` shares, any ``threshold`` of
    which reconstruct it; fewer reveal nothing (information-theoretically).
    """
    if not 1 <= threshold <= num_shares:
        raise CryptoError(f"invalid threshold {threshold} of {num_shares}")
    if not 0 <= secret < prime:
        raise CryptoError("secret out of field range")
    coefficients = [secret] + [rng.randrange(prime) for _ in range(threshold - 1)]
    shares: Dict[int, Share] = {}
    for x in range(1, num_shares + 1):
        y = 0
        for coef in reversed(coefficients):
            y = (y * x + coef) % prime
        shares[x] = Share(x=x, y=y)
    return shares


def reconstruct_secret(shares: Sequence[Share], prime: int = DEFAULT_PRIME) -> int:
    """Lagrange-interpolate the secret (the polynomial's value at 0)."""
    if not shares:
        raise CryptoError("no shares supplied")
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate share indices")
    secret = 0
    for i, share_i in enumerate(shares):
        num, den = 1, 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            num = (num * (-share_j.x)) % prime
            den = (den * (share_i.x - share_j.x)) % prime
        secret = (secret + share_i.y * num * modinv(den, prime)) % prime
    return secret


def split_bytes(
    secret: bytes,
    threshold: int,
    num_shares: int,
    rng: random.Random,
    prime: int = DEFAULT_PRIME,
) -> Dict[int, bytes]:
    """Byte-string convenience wrapper: shares are length-prefixed ints.

    Secrets up to 30 bytes fit in one field element; longer secrets are
    split into chunks. The returned share encoding is
    ``len(secret) || y_chunk_0 || y_chunk_1 || ...`` with 33-byte y values.
    """
    if len(secret) > 0xFFFF:
        raise CryptoError("secret too long")
    chunk_size = 30
    chunks = [secret[i : i + chunk_size] for i in range(0, len(secret), chunk_size)] or [b""]
    per_holder: Dict[int, bytearray] = {
        x: bytearray(len(secret).to_bytes(2, "big")) for x in range(1, num_shares + 1)
    }
    for chunk in chunks:
        value = int.from_bytes(chunk, "big")
        shares = split_secret(value, threshold, num_shares, rng, prime)
        for x, share in shares.items():
            per_holder[x].extend(share.y.to_bytes(33, "big"))
    return {x: bytes(buf) for x, buf in per_holder.items()}


def reconstruct_bytes(
    shares: Dict[int, bytes], prime: int = DEFAULT_PRIME
) -> bytes:
    """Inverse of :func:`split_bytes`."""
    if not shares:
        raise CryptoError("no shares supplied")
    lengths = {data[:2] for data in shares.values()}
    if len(lengths) != 1:
        raise CryptoError("inconsistent share headers")
    total_len = int.from_bytes(next(iter(lengths)), "big")
    n_chunks = max(1, (total_len + 29) // 30)
    body_len = {len(data) for data in shares.values()}
    if body_len != {2 + 33 * n_chunks}:
        raise CryptoError("malformed share bodies")
    out = bytearray()
    remaining = total_len
    for c in range(n_chunks):
        points = [
            Share(x=x, y=int.from_bytes(data[2 + 33 * c : 2 + 33 * (c + 1)], "big"))
            for x, data in shares.items()
        ]
        value = reconstruct_secret(points, prime)
        chunk_len = min(30, remaining)
        out.extend(value.to_bytes(chunk_len, "big") if chunk_len else b"")
        remaining -= chunk_len
    return bytes(out)
