"""From-scratch cryptographic substrate.

Implements everything Confidential Spire's protocols need, in pure Python:

- :mod:`repro.crypto.numbers` — primality, safe primes, modular arithmetic,
- :mod:`repro.crypto.rsa` — RSA signatures (proxies, replica session keys),
- :mod:`repro.crypto.shamir` — Shamir secret sharing (baseline + dealing),
- :mod:`repro.crypto.threshold` — Shoup (f+1, n) threshold RSA signatures,
- :mod:`repro.crypto.aes` / :mod:`repro.crypto.modes` — AES-256-CBC,
- :mod:`repro.crypto.symmetric` — deterministic HMAC-IV encryption
  (Section VI-B),
- :mod:`repro.crypto.keystore` — TPM/SGX hardware key model (Section V-D).
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.keystore import HardwareKeyStore
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_keypair
from repro.crypto.symmetric import (
    KEY_SIZE,
    SymmetricKeyPair,
    decrypt,
    derive_keypair,
    deterministic_iv,
    encrypt,
)
from repro.crypto.threshold import (
    PartialSignature,
    ShareProof,
    ThresholdKeyGroup,
    ThresholdKeyShare,
    ThresholdPublicKey,
    combine_partials,
    combine_verified,
    combine_with_retry,
    generate_threshold_key,
    verify_partial,
)

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "HardwareKeyStore",
    "RsaKeyPair",
    "RsaPublicKey",
    "generate_keypair",
    "KEY_SIZE",
    "SymmetricKeyPair",
    "encrypt",
    "decrypt",
    "derive_keypair",
    "deterministic_iv",
    "PartialSignature",
    "ShareProof",
    "ThresholdKeyGroup",
    "ThresholdKeyShare",
    "ThresholdPublicKey",
    "combine_partials",
    "combine_verified",
    "combine_with_retry",
    "generate_threshold_key",
    "verify_partial",
]
