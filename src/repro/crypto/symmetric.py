"""Deterministic authenticated-IV symmetric encryption (Section VI-B).

Every on-premises replica must independently encrypt the *same* client
update into the *same* ciphertext, so that the threshold-signature shares
they generate over the ciphertext combine (Section V-A). Random IVs would
break this. Following the paper (and Duan & Zhang, SRDS 2016), the IV is an
HMAC of the plaintext under a second shared per-client key (the
"pseudorandom function key"):

    iv  = HMAC-SHA256(prf_key, plaintext)[:16]
    ct  = AES-256-CBC(enc_key, iv, plaintext)
    out = iv || ct

Identical plaintexts produce identical ciphertexts, but because every
client update embeds its client sequence number, real traffic never
repeats; the construction is deterministic yet non-repeating, exactly as
argued in the paper.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass

from repro.cache import MISS, BoundedLru
from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.errors import CryptoError, DecryptionError

KEY_SIZE = 32

# Key-schedule memo: expanding an AES-256 key schedule in pure Python
# costs ~100x one block operation, and every on-premises replica
# re-encrypts/decrypts under the same small set of per-client keys. The
# AES object is immutable after construction (round keys only), so one
# instance per key byte-string is safe to share. Deterministic either
# way; the toggle exists for the PerfLab benchmark's uncached arm.
_CIPHER_CACHE = BoundedLru(256)
_cipher_cache_enabled = True


def set_cipher_cache_enabled(enabled: bool) -> bool:
    """Toggle the AES key-schedule memo; returns the previous setting."""
    global _cipher_cache_enabled
    previous = _cipher_cache_enabled
    _cipher_cache_enabled = bool(enabled)
    if not enabled:
        _CIPHER_CACHE.clear()
    return previous


def _cipher_for(enc_key: bytes) -> AES:
    if not _cipher_cache_enabled:
        return AES(enc_key)
    cipher = _CIPHER_CACHE.get(enc_key)
    if cipher is MISS:
        cipher = AES(enc_key)
        _CIPHER_CACHE.put(enc_key, cipher)
    return cipher


@dataclass(frozen=True)
class SymmetricKeyPair:
    """A client's shared (encryption key, PRF key) pair.

    All on-premises replicas hold identical copies; data-center replicas
    never see either key. Key pairs are what the key-renewal protocol of
    Section V-D rotates.
    """

    enc_key: bytes
    prf_key: bytes

    def __post_init__(self) -> None:
        if len(self.enc_key) != KEY_SIZE or len(self.prf_key) != KEY_SIZE:
            raise CryptoError("keys must be 32 bytes")

    def fingerprint(self) -> str:
        """Short stable identifier for logging/tracing (not a secret)."""
        h = hashlib.sha256(self.enc_key + self.prf_key).hexdigest()
        return h[:12]


def derive_keypair(seed: bytes) -> SymmetricKeyPair:
    """Derive a key pair from seed material (e.g. combined key proposals)."""
    enc_key = hmac.new(seed, b"enc", hashlib.sha256).digest()
    prf_key = hmac.new(seed, b"prf", hashlib.sha256).digest()
    return SymmetricKeyPair(enc_key=enc_key, prf_key=prf_key)


def deterministic_iv(keys: SymmetricKeyPair, plaintext: bytes) -> bytes:
    """The HMAC-derived IV for ``plaintext`` under this key pair."""
    return hmac.new(keys.prf_key, plaintext, hashlib.sha256).digest()[:BLOCK_SIZE]


def encrypt(keys: SymmetricKeyPair, plaintext: bytes) -> bytes:
    """Deterministically encrypt: returns ``iv || ciphertext``."""
    iv = deterministic_iv(keys, plaintext)
    cipher = _cipher_for(keys.enc_key)
    return iv + cbc_encrypt(cipher, iv, plaintext)


def decrypt(keys: SymmetricKeyPair, blob: bytes) -> bytes:
    """Decrypt ``iv || ciphertext`` and verify the IV commitment.

    Re-deriving the IV from the recovered plaintext and comparing it to the
    transmitted IV gives integrity "for free": tampering with the
    ciphertext produces either a padding failure or an IV mismatch.
    """
    if len(blob) < 2 * BLOCK_SIZE:
        raise DecryptionError("blob too short to contain IV and one block")
    iv, ciphertext = blob[:BLOCK_SIZE], blob[BLOCK_SIZE:]
    cipher = _cipher_for(keys.enc_key)
    plaintext = cbc_decrypt(cipher, iv, ciphertext)
    if not hmac.compare_digest(deterministic_iv(keys, plaintext), iv):
        raise DecryptionError("IV commitment mismatch (wrong key or tampered data)")
    return plaintext
