"""Process-pool crypto workers (the RECIPE seam, BatchLab).

Protocol logic stays single-threaded and deterministic; the expensive
primitive evaluations — threshold-RSA partial signatures and combines,
which are pure functions of their inputs — can be pushed to worker
processes so a live replica uses all cores. The sim keeps its in-process
default (``crypto_workers = 0``) and may optionally offload: results are
bit-identical either way, so offloading never changes simulated traces.

Fault tolerance: a worker killed mid-task (crash, OOM, an operator's
``kill -9``) must not lose the batch. The pool polls worker liveness
while collecting; on a death it respawns a fresh worker and resubmits
every still-unresolved task. Tasks are deterministic and idempotent, so
duplicate completions (a task resubmitted while its first copy was merely
queued behind a live worker) are de-duplicated by task id.

Deliberately not :class:`concurrent.futures.ProcessPoolExecutor`: a dead
worker there poisons the whole executor (``BrokenProcessPool``) and every
pending future with it, which is exactly the failure mode this seam must
absorb.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.crypto.threshold import (
    PartialSignature,
    ThresholdKeyShare,
    ThresholdPublicKey,
    combine_with_retry,
)
from repro.errors import CryptoError, SignatureError

_POLL_INTERVAL = 0.05

_ERROR_TYPES = {
    "SignatureError": SignatureError,
    "CryptoError": CryptoError,
}


def _worker_loop(tasks, results, task_delay: float) -> None:
    """Worker process body: evaluate tasks until the poison pill."""
    while True:
        item = tasks.get()
        if item is None:
            return
        task_id, kind, args = item
        try:
            if task_delay:
                # Test hook: stretch task duration so fault injection can
                # reliably land mid-batch.
                time.sleep(task_delay)
            if kind == "sign":
                share, message = args
                payload = share.sign_partial(message)
            elif kind == "sign_with_proof":
                share, message = args
                payload = share.sign_partial_with_proof(message)
            elif kind == "combine":
                public, message, partials = args
                payload = combine_with_retry(public, message, partials)
            else:  # pragma: no cover - parent never sends unknown kinds
                raise CryptoError(f"unknown crypto task kind {kind!r}")
        except (SignatureError, CryptoError) as error:
            results.put((task_id, "err", type(error).__name__, str(error)))
        else:
            results.put((task_id, "ok", payload))


class CryptoPool:
    """A fault-tolerant pool of crypto worker processes."""

    def __init__(
        self,
        workers: int = 2,
        task_delay: float = 0.0,
        context: Optional[str] = None,
    ):
        if workers < 1:
            raise CryptoError("CryptoPool needs at least one worker")
        methods = multiprocessing.get_all_start_methods()
        method = context or ("fork" if "fork" in methods else "spawn")
        self._ctx = multiprocessing.get_context(method)
        self._task_delay = task_delay
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._workers: List[multiprocessing.Process] = []
        self._next_task_id = 0
        self._closed = False
        self.workers = workers
        self.respawns = 0
        self.tasks_completed = 0
        for _ in range(workers):
            self._spawn_worker()

    # -- lifecycle ---------------------------------------------------------------

    def _spawn_worker(self) -> None:
        process = self._ctx.Process(
            target=_worker_loop,
            args=(self._tasks, self._results, self._task_delay),
            daemon=True,
        )
        process.start()
        self._workers.append(process)

    def worker_pids(self) -> List[int]:
        return [p.pid for p in self._workers if p.pid is not None]

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop every worker: poison pills, then join, then terminate
        stragglers. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for _ in self._workers:
            try:
                self._tasks.put(None)
            except (ValueError, OSError):  # pragma: no cover - queue torn down
                break
        deadline = time.monotonic() + timeout
        for process in self._workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        self._tasks.close()
        self._results.close()
        self._workers = []

    @property
    def closed(self) -> bool:
        return self._closed

    # -- task execution ----------------------------------------------------------

    def _run_tasks(self, specs: Sequence[Tuple[str, tuple]]) -> List[object]:
        """Run tasks through the workers; returns results in spec order.

        Survives worker deaths by respawning and resubmitting unresolved
        tasks; raises the original crypto error for tasks that *evaluated*
        to an error (those are deterministic, not transient).
        """
        if self._closed:
            raise CryptoError("CryptoPool is shut down")
        pending: Dict[int, Tuple[str, tuple]] = {}
        order: List[int] = []
        for kind, args in specs:
            task_id = self._next_task_id
            self._next_task_id += 1
            pending[task_id] = (kind, args)
            order.append(task_id)
            self._tasks.put((task_id, kind, args))
        resolved: Dict[int, tuple] = {}
        while len(resolved) < len(order):
            try:
                item = self._results.get(timeout=_POLL_INTERVAL)
            except queue.Empty:
                self._reap_dead_workers(
                    [tid for tid in order if tid not in resolved], pending
                )
                continue
            task_id = item[0]
            if task_id in resolved or task_id not in pending:
                continue  # duplicate completion after a resubmission
            resolved[task_id] = item[1:]
            self.tasks_completed += 1
        results: List[object] = []
        for task_id in order:
            outcome = resolved[task_id]
            if outcome[0] == "err":
                _, name, text = outcome
                raise _ERROR_TYPES.get(name, CryptoError)(text)
            results.append(outcome[1])
        return results

    def _reap_dead_workers(self, unresolved: List[int], pending) -> None:
        """Respawn dead workers and resubmit whatever they may have held."""
        dead = [p for p in self._workers if not p.is_alive()]
        if not dead:
            return
        for process in dead:
            self._workers.remove(process)
            self.respawns += 1
            self._spawn_worker()
        # A dead worker may have consumed any unresolved task without
        # producing its result; resubmit them all (dedup by id absorbs
        # tasks that were actually still queued or held by live workers).
        for task_id in unresolved:
            kind, args = pending[task_id]
            self._tasks.put((task_id, kind, args))

    # -- crypto seam -------------------------------------------------------------

    def sign_partial(self, share: ThresholdKeyShare, message: bytes) -> PartialSignature:
        return self._run_tasks([("sign", (share, message))])[0]

    def sign_partials(
        self, share: ThresholdKeyShare, messages: Iterable[bytes]
    ) -> List[PartialSignature]:
        """Sign a batch of messages in parallel across the workers."""
        return self._run_tasks([("sign", (share, m)) for m in messages])

    def sign_partial_with_proof(
        self, share: ThresholdKeyShare, message: bytes
    ) -> PartialSignature:
        return self._run_tasks([("sign_with_proof", (share, message))])[0]

    def combine(
        self,
        public: ThresholdPublicKey,
        message: bytes,
        partials: Sequence[PartialSignature],
    ) -> bytes:
        """``combine_with_retry`` evaluated in a worker; raises
        :class:`SignatureError` exactly as the in-process call would."""
        return self._run_tasks([("combine", (public, message, list(partials)))])[0]
