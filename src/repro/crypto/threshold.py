"""(t, n) threshold RSA signatures, after Shoup (Eurocrypt 2000).

Confidential Spire uses (f+1, n) threshold signatures in three places:

- on-premises replicas jointly certify encrypted client updates before
  injection into Prime (Section V-A),
- application replicas jointly sign client responses so a proxy verifies a
  single service public key (Section V-B),
- the same machinery certifies checkpoints in the Spire baseline.

The scheme: a trusted dealer (system setup) generates an RSA modulus
``N = p*q`` with ``p, q`` safe primes, picks public exponent ``e`` (a prime
larger than ``n``), and Shamir-shares the private exponent ``d`` over
``Z_m`` where ``m = p' * q'``. Player ``i`` produces the partial signature
``x_i = x^(2*delta*s_i) mod N`` with ``delta = n!``. Any ``t`` partials
combine — via integer Lagrange coefficients scaled by ``delta`` — into
``w`` with ``w^e = x^(4*delta^2)``; since ``gcd(e, 4*delta^2) = 1`` the
actual signature ``y`` with ``y^e = x`` is recovered with one extended-GCD
step. Verification is ordinary RSA verification, so verifiers (including
data-center replicas and client proxies) need only the public key.

Partial signatures carry the signer index so the combiner can apply the
right Lagrange coefficients; invalid partials surface as a combine-then-
verify failure, after which the caller retries with a different subset
(the simulation's Byzantine replicas exercise this path).
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.crypto.numbers import (
    bytes_to_int,
    egcd,
    generate_safe_prime,
    int_to_bytes,
    modinv,
)
from repro.cache import MISS, BoundedLru
from repro.errors import CryptoError, SignatureError

# Full-domain-hash memo. hash_to_element is a pure function of
# (modulus, message); every replica in an introduction group hashes the
# *same* signing bytes once for its partial and again when combining, so
# one process-wide memo removes the repeated SHA-256 loop + reduction.
# Wall-clock only: simulated-time crypto costs are still charged by the
# cost model, so sim traces are unchanged.
_FDH_CACHE = BoundedLru(4096)
_fdh_cache_enabled = True

# Share-proof memo. verify_partial is a pure function of the public key,
# the message, and the partial (signer, value, proof), yet every replica
# that collects a quorum re-checks the *same* partials other collectors
# already checked — 4 modular exponentiations per check. Memoizing the
# boolean verdict (True and False alike) removes the duplicate pow()
# work; simulated-time costs are still charged, so sim traces are
# unchanged.
_SHARE_VERIFY_CACHE = BoundedLru(8192)
_share_verify_cache_enabled = True


def set_hash_cache_enabled(enabled: bool) -> bool:
    """Toggle the FDH memo; returns the previous setting. Disabling
    clears the cache."""
    global _fdh_cache_enabled
    previous = _fdh_cache_enabled
    _fdh_cache_enabled = bool(enabled)
    if not enabled:
        _FDH_CACHE.clear()
    return previous


def set_share_verify_cache_enabled(enabled: bool) -> bool:
    """Toggle the partial-signature proof memo; returns the previous
    setting. Disabling clears the cache."""
    global _share_verify_cache_enabled
    previous = _share_verify_cache_enabled
    _share_verify_cache_enabled = bool(enabled)
    if not enabled:
        _SHARE_VERIFY_CACHE.clear()
    return previous


@dataclass(frozen=True)
class ThresholdPublicKey:
    """Public data: RSA modulus/exponent plus the scheme parameters.

    ``verifier_base`` and ``verifier_keys`` (v and v_i = v^{s_i}) support
    per-share correctness proofs; they are dealt alongside the shares and
    are safe to publish (discrete logs mod an RSA modulus are hard).
    """

    n_modulus: int
    e: int
    threshold: int
    players: int
    verifier_base: int = 0
    verifier_keys: "Dict[int, int]" = None  # type: ignore[assignment]

    @property
    def byte_length(self) -> int:
        return (self.n_modulus.bit_length() + 7) // 8

    def hash_to_element(self, message: bytes) -> int:
        """Map a message to the group element that gets signed.

        A SHA-256-based full-domain-hash: counters are appended and hashed
        until the concatenation covers the modulus size, then reduced.
        """
        if _fdh_cache_enabled:
            key = (self.n_modulus, message)
            cached = _FDH_CACHE.get(key)
            if cached is not MISS:
                return cached
        need = self.byte_length + 8
        out = bytearray()
        counter = 0
        while len(out) < need:
            out.extend(hashlib.sha256(message + counter.to_bytes(4, "big")).digest())
            counter += 1
        element = bytes_to_int(bytes(out[:need])) % self.n_modulus
        if _fdh_cache_enabled:
            _FDH_CACHE.put(key, element)
        return element

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Ordinary RSA check: signature^e == H(message) mod N."""
        if len(signature) != self.byte_length:
            return False
        y = bytes_to_int(signature)
        if y >= self.n_modulus:
            return False
        return pow(y, self.e, self.n_modulus) == self.hash_to_element(message)

    def require_valid(self, message: bytes, signature: bytes, context: str = "") -> None:
        if not self.verify(message, signature):
            raise SignatureError(
                f"invalid threshold signature{': ' + context if context else ''}"
            )


@dataclass(frozen=True)
class PartialSignature:
    """One player's contribution: index and the value x^(2*delta*s_i).

    When produced by :meth:`ThresholdKeyShare.sign_partial_with_proof`,
    ``proof`` carries Shoup's non-interactive correctness proof (a
    Chaum-Pedersen discrete-log-equality proof made non-interactive with
    Fiat-Shamir), letting verifiers discard Byzantine shares *before*
    combining instead of searching subsets afterwards.
    """

    signer: int
    value: int
    proof: Optional["ShareProof"] = None


@dataclass(frozen=True)
class ShareProof:
    """Fiat-Shamir proof that a partial signature used the dealt share:
    log_{x~}(x_i) == log_v(v_i) where x~ = H(m)^(2*delta)."""

    challenge: int
    response: int


@dataclass(frozen=True)
class ThresholdKeyShare:
    """Player ``index``'s private share of the service key."""

    public: ThresholdPublicKey
    index: int
    share: int

    def sign_partial(self, message: bytes) -> PartialSignature:
        x = self.public.hash_to_element(message)
        delta = math.factorial(self.public.players)
        value = pow(x, 2 * delta * self.share, self.public.n_modulus)
        return PartialSignature(signer=self.index, value=value)

    def sign_partial_with_proof(self, message: bytes) -> PartialSignature:
        """Sign and attach Shoup's correctness proof.

        The proof nonce is derived deterministically from the share and
        the message (RFC-6979 style), so signing stays deterministic and
        never needs an entropy source at runtime.
        """
        public = self.public
        if not public.verifier_base:
            raise CryptoError("key group was dealt without verifier keys")
        n = public.n_modulus
        delta = math.factorial(public.players)
        x_tilde = pow(public.hash_to_element(message), 2 * delta, n)
        value = pow(x_tilde, self.share, n)
        nonce_material = hashlib.sha512(
            b"share-proof-nonce|"
            + self.share.to_bytes((self.share.bit_length() + 7) // 8 or 1, "big")
            + b"|"
            + message
        ).digest()
        bound = 1 << (n.bit_length() + 2 * 256)
        r = int.from_bytes(nonce_material * ((bound.bit_length() // 512) + 2), "big") % bound
        v = public.verifier_base
        v_i = public.verifier_keys[self.index]
        commitment_v = pow(v, r, n)
        commitment_x = pow(x_tilde, r, n)
        challenge = _proof_challenge(n, v, x_tilde, v_i, value, commitment_v, commitment_x)
        response = self.share * challenge + r
        return PartialSignature(
            signer=self.index,
            value=value,
            proof=ShareProof(challenge=challenge, response=response),
        )


@dataclass(frozen=True)
class ThresholdKeyGroup:
    """Dealer output: the public key and every player's share.

    In a deployment the dealer runs once at system-setup time on operator
    premises; inside the simulation the builder deals keys before the run.
    """

    public: ThresholdPublicKey
    shares: Dict[int, ThresholdKeyShare]


def generate_threshold_key(
    bits: int,
    threshold: int,
    players: int,
    rng: random.Random,
) -> ThresholdKeyGroup:
    """Deal a fresh (threshold, players) key with a ``bits``-bit modulus.

    Safe-prime generation dominates cost; 256-384 bit moduli are instant
    and fine for simulation, 2048-bit keys take minutes in pure Python.
    """
    if not 1 <= threshold <= players:
        raise CryptoError(f"invalid threshold {threshold} of {players}")
    half = bits // 2
    while True:
        p = generate_safe_prime(half, rng)
        q = generate_safe_prime(bits - half, rng)
        if p != q:
            break
    n_modulus = p * q
    m = ((p - 1) // 2) * ((q - 1) // 2)
    # e must be a prime strictly larger than the number of players so that
    # it is coprime to delta = players!; 65537 covers any realistic n.
    e = 65537 if players < 65537 else _next_prime_above(players, rng)
    d = modinv(e, m)
    # Shamir-share d over Z_m with a degree-(threshold-1) polynomial.
    coefficients = [d] + [rng.randrange(m) for _ in range(threshold - 1)]
    share_values: Dict[int, int] = {}
    for i in range(1, players + 1):
        y = 0
        for coef in reversed(coefficients):
            y = (y * i + coef) % m
        share_values[i] = y
    # Verifier keys for share-correctness proofs: v a random square,
    # v_i = v^{s_i}.
    verifier_base = pow(rng.randrange(2, n_modulus - 1), 2, n_modulus)
    verifier_keys = {
        i: pow(verifier_base, share_values[i], n_modulus)
        for i in range(1, players + 1)
    }
    public = ThresholdPublicKey(
        n_modulus=n_modulus,
        e=e,
        threshold=threshold,
        players=players,
        verifier_base=verifier_base,
        verifier_keys=verifier_keys,
    )
    shares = {
        i: ThresholdKeyShare(public=public, index=i, share=share_values[i])
        for i in range(1, players + 1)
    }
    return ThresholdKeyGroup(public=public, shares=shares)


def combine_partials(
    public: ThresholdPublicKey,
    message: bytes,
    partials: Iterable[PartialSignature],
) -> bytes:
    """Combine ``threshold`` partial signatures into a full signature.

    Raises :class:`SignatureError` if the combination does not verify,
    which happens when any supplied partial was invalid (a Byzantine
    signer); callers should retry with a different subset.
    """
    subset: List[PartialSignature] = []
    seen = set()
    for partial in partials:
        if partial.signer in seen:
            continue
        seen.add(partial.signer)
        subset.append(partial)
        if len(subset) == public.threshold:
            break
    if len(subset) < public.threshold:
        raise CryptoError(
            f"need {public.threshold} distinct partial signatures, got {len(subset)}"
        )
    delta = math.factorial(public.players)
    indices = [p.signer for p in subset]
    w = 1
    for partial in subset:
        lam = _integer_lagrange_at_zero(delta, partial.signer, indices)
        exponent = 2 * lam
        base = partial.value % public.n_modulus
        if exponent < 0:
            base = modinv(base, public.n_modulus)
            exponent = -exponent
        w = (w * pow(base, exponent, public.n_modulus)) % public.n_modulus
    # Now w^e == x^(4*delta^2). Recover y with y^e == x via extended GCD.
    x = public.hash_to_element(message)
    g, a, b = egcd(public.e, 4 * delta * delta)
    if g != 1:
        raise CryptoError("public exponent not coprime to 4*delta^2")
    y = 1
    if a >= 0:
        y = (y * pow(x, a, public.n_modulus)) % public.n_modulus
    else:
        y = (y * pow(modinv(x, public.n_modulus), -a, public.n_modulus)) % public.n_modulus
    if b >= 0:
        y = (y * pow(w, b, public.n_modulus)) % public.n_modulus
    else:
        y = (y * pow(modinv(w, public.n_modulus), -b, public.n_modulus)) % public.n_modulus
    signature = int_to_bytes(y, public.byte_length)
    if not public.verify(message, signature):
        raise SignatureError(
            "combined threshold signature failed verification "
            "(an invalid partial was supplied)"
        )
    return signature


def _proof_challenge(
    n: int, v: int, x_tilde: int, v_i: int, x_i: int, commit_v: int, commit_x: int
) -> int:
    hasher = hashlib.sha256()
    for value in (n, v, x_tilde, v_i, x_i, commit_v, commit_x):
        raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
        hasher.update(len(raw).to_bytes(4, "big"))
        hasher.update(raw)
    return int.from_bytes(hasher.digest(), "big")


def verify_partial(
    public: ThresholdPublicKey, message: bytes, partial: PartialSignature
) -> bool:
    """Check a partial signature's Shoup correctness proof.

    Returns False for partials without a proof, with an unknown signer,
    or whose proof does not verify — i.e. anything a combiner should not
    feed into :func:`combine_partials`.
    """
    if partial.proof is None or not public.verifier_base:
        return False
    v_i = (public.verifier_keys or {}).get(partial.signer)
    if v_i is None:
        return False
    n = public.n_modulus
    c = partial.proof.challenge
    z = partial.proof.response
    if z < 0:
        return False
    if _share_verify_cache_enabled:
        cache_key = (n, message, partial.signer, partial.value, c, z)
        cached = _SHARE_VERIFY_CACHE.get(cache_key)
        if cached is not MISS:
            return cached
    delta = math.factorial(public.players)
    x_tilde = pow(public.hash_to_element(message), 2 * delta, n)
    commit_v = (pow(public.verifier_base, z, n) * modinv(pow(v_i, c, n), n)) % n
    commit_x = (pow(x_tilde, z, n) * modinv(pow(partial.value, c, n), n)) % n
    result = c == _proof_challenge(
        n, public.verifier_base, x_tilde, v_i, partial.value, commit_v, commit_x
    )
    if _share_verify_cache_enabled:
        _SHARE_VERIFY_CACHE.put(cache_key, result)
    return result


def combine_verified(
    public: ThresholdPublicKey,
    message: bytes,
    partials: Iterable[PartialSignature],
) -> bytes:
    """Filter partials by their correctness proofs, then combine.

    This is the paper-accurate pipeline: Byzantine shares are identified
    and discarded individually (O(n) proof checks) instead of searched
    for combinatorially.
    """
    good = [p for p in partials if verify_partial(public, message, p)]
    return combine_partials(public, message, good)


def combine_with_retry(
    public: ThresholdPublicKey,
    message: bytes,
    partials: Iterable[PartialSignature],
    max_attempts: int = 64,
) -> bytes:
    """Combine, tolerating invalid partials from Byzantine signers.

    Shoup's full scheme attaches a zero-knowledge correctness proof to
    each partial so bad shares are filtered before combining; we get the
    same effect by trying threshold-sized subsets until one verifies
    (cheap at the small thresholds BFT uses: f+1 of n). Raises
    :class:`SignatureError` when no subset verifies within the budget —
    which under the threat model means fewer than f+1 honest shares were
    supplied.
    """
    import itertools

    unique: Dict[int, PartialSignature] = {}
    for partial in partials:
        unique.setdefault(partial.signer, partial)
    pool = sorted(unique.values(), key=lambda p: p.signer)
    if len(pool) < public.threshold:
        raise CryptoError(
            f"need {public.threshold} distinct partial signatures, got {len(pool)}"
        )
    attempts = 0
    last_error: Optional[SignatureError] = None
    for subset in itertools.combinations(pool, public.threshold):
        attempts += 1
        if attempts > max_attempts:
            break
        try:
            return combine_partials(public, message, subset)
        except SignatureError as error:
            last_error = error
    raise last_error or SignatureError("no verifying subset of partial signatures")


def sign_partial_via(
    pool: Optional[object], share: ThresholdKeyShare, message: bytes
) -> PartialSignature:
    """Route a partial signature through a crypto pool when one is
    configured (``repro.crypto.pool``), else sign in-process.

    Signing is deterministic, so the result is bit-identical either way —
    the pool is purely a wall-clock/parallelism seam.
    """
    if pool is not None:
        return pool.sign_partial(share, message)
    return share.sign_partial(message)


def combine_via(
    pool: Optional[object],
    public: ThresholdPublicKey,
    message: bytes,
    partials: Iterable[PartialSignature],
) -> bytes:
    """Route :func:`combine_with_retry` through a crypto pool when one is
    configured; error behaviour (``SignatureError`` on fewer than f+1
    honest shares) is identical in both paths."""
    if pool is not None:
        return pool.combine(public, message, list(partials))
    return combine_with_retry(public, message, partials)


def _integer_lagrange_at_zero(delta: int, i: int, indices: List[int]) -> int:
    """delta * l_i(0) for the Lagrange basis over ``indices``; an integer."""
    num = delta
    den = 1
    for j in indices:
        if j == i:
            continue
        num *= -j
        den *= i - j
    if num % den:
        raise CryptoError("Lagrange coefficient not integral (bad delta)")
    return num // den


def _next_prime_above(n: int, rng: random.Random) -> int:
    from repro.crypto.numbers import is_probable_prime

    candidate = n + 1
    while True:
        if is_probable_prime(candidate, rng):
            return candidate
        candidate += 1
