"""Prime-style intrusion-tolerant replication engine.

A pure-Python reproduction of the structure of Prime (Amir et al., "Prime:
Byzantine Replication Under Attack", TDSC 2011) as deployed in Spire, with
the quorum sizes of the proactive-recovery configuration (n = 3f+2k+1,
quorums of 2f+k+1):

- :mod:`repro.prime.preorder` — po-request dissemination, acknowledgement
  certificates, cumulative ARU vectors, po-fetch retransmission,
- :mod:`repro.prime.order` — leader summary proposals, prepare/commit
  agreement, deterministic batch expansion into update ordinals,
- :mod:`repro.prime.view_change` — leader-alive + progress failure
  detectors, suspicion voting, PBFT-style new-view state adoption,
- :mod:`repro.prime.engine` — the per-replica facade.

Documented simplifications relative to the C implementation are listed in
DESIGN.md (summary vectors instead of full summary matrices; distilled
suspect-leader; channel-level authentication for engine-internal traffic
with signature costs charged via the cost model).
"""

from repro.prime.config import PrimeConfig
from repro.prime.engine import PrimeReplica
from repro.prime.messages import OpaqueUpdate

__all__ = ["PrimeConfig", "PrimeReplica", "OpaqueUpdate"]
