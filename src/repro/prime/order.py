"""Prime's global ordering sub-protocol.

The leader periodically (every ``pp_interval``) turns its aggregated
knowledge of pre-order certificates into a PRE-PREPARE carrying a
cumulative cutoff vector: batch ``s`` globally orders every (origin, seq)
pair above what previous batches covered, up to the vector. Followers run
a prepare/commit agreement on the batch with 2f+k+1 quorums; committed
batches are executed in sequence order, expanding deterministically into
individually-numbered updates (ordinals) that the application layer
consumes.

When the leader has nothing new to order it emits a heartbeat instead of
an empty batch, so idle periods cost O(n) messages rather than O(n^2).
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Set, Tuple

from repro.prime.messages import (
    BatchFetch,
    BatchFetchReply,
    Commit,
    Heartbeat,
    OriginId,
    PoRequest,
    PrePrepare,
    Prepare,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prime.engine import PrimeReplica

BatchEntry = Tuple[int, OriginId, int, object]  # (ordinal, origin, po_seq, update)


def content_digest(seq: int, cutoffs: Dict[OriginId, int]) -> bytes:
    """Canonical digest of a proposal's ordering content."""
    canonical = f"{seq}|" + "|".join(
        f"{origin}:{cut}" for origin, cut in sorted(cutoffs.items())
    )
    return hashlib.sha256(canonical.encode("utf-8")).digest()


class GlobalOrder:
    """Global ordering state machine for one replica."""

    def __init__(self, engine: "PrimeReplica"):
        self._engine = engine
        metrics = engine.metrics
        self._m_proposals = metrics.counter("prime.order.proposals")
        self._m_heartbeats = metrics.counter("prime.order.heartbeats")
        self._m_committed = metrics.counter("prime.order.committed")
        self._m_batches = metrics.counter("prime.order.batches_executed")
        self._m_updates = metrics.counter("prime.order.updates_ordered")
        self._m_batch_size = metrics.histogram("prime.order.batch_size")
        # Accepted proposals: seq -> (view, cutoffs, digest).
        self.pre_prepares: Dict[int, Tuple[int, Dict[OriginId, int], bytes]] = {}
        self._prepare_votes: Dict[Tuple[int, int, bytes], Set[str]] = {}
        self._commit_votes: Dict[Tuple[int, int, bytes], Set[str]] = {}
        self._prepared: Set[Tuple[int, int]] = set()          # (view, seq)
        self._commit_sent: Set[Tuple[int, int]] = set()
        self.committed: Dict[int, Dict[OriginId, int]] = {}   # seq -> cutoffs
        self.last_executed = 0
        self.ordinal = 0
        self.ordered_through: Dict[OriginId, int] = {}
        # Executed batch metadata kept for state-transfer resume points and
        # po-request garbage collection: seq -> (ordinal_after, pairs).
        self.executed_batches: Dict[int, Tuple[int, List[Tuple[OriginId, int]]]] = {}
        # Cutoff vectors of executed batches, kept so peers stuck on a
        # sequence gap can re-fetch the batch content (pre_prepares[seq]
        # may be overwritten by a later view and cannot serve as the
        # attested record of what was actually committed).
        self.executed_cutoffs: Dict[int, Dict[OriginId, int]] = {}
        # Batch-fill reconciliation state: seq -> content digest -> voters.
        self._fill_votes: Dict[int, Dict[bytes, Dict[str, Dict[OriginId, int]]]] = {}
        self._fill_timer = None
        # When execution first stalled on missing po-requests for a
        # committed batch (None while execution is advancing).
        self._blocked_since = None
        # Leader-side proposal state.
        self.propose_seq = 0
        self._proposed_vector: Dict[OriginId, int] = {}
        self._tick_timer = None
        # Pre-prepares for views we have not adopted yet: a replica that
        # is about to learn of a view change (f+1 evidence) must not lose
        # the proposal that arrived moments earlier.
        self._future_pre_prepares: Dict[int, List[Tuple[str, PrePrepare]]] = {}

    # -- leader duty cycle ---------------------------------------------------

    def start_leader_duty(self) -> None:
        """Begin (or resume) periodic proposing; idempotent."""
        self.stop_leader_duty()
        self._tick_timer = self._engine.kernel.call_later(
            self._engine.config.pp_interval, self._tick
        )

    def stop_leader_duty(self) -> None:
        if self._tick_timer is not None:
            self._tick_timer.cancel()
            self._tick_timer = None

    def _tick(self) -> None:
        self._tick_timer = None
        if not self._engine.online or not self._engine.is_leader():
            return
        self._propose_if_new()
        self._tick_timer = self._engine.kernel.call_later(
            self._engine.config.pp_interval, self._tick
        )

    def _propose_if_new(self) -> None:
        cutoffs: Dict[OriginId, int] = {}
        advanced = False
        for origin in self._engine.preorder.known_origins():
            known = self._engine.preorder.max_known(origin)
            floor = max(
                self._proposed_vector.get(origin, 0), self.ordered_through.get(origin, 0)
            )
            if known > floor:
                advanced = True
            cutoffs[origin] = max(known, floor)
        if not advanced:
            self._m_heartbeats.inc()
            self._engine.multicast(Heartbeat(view=self._engine.view))
            return
        self._m_proposals.inc()
        self.propose_seq = max(self.propose_seq, self.last_committed_contiguous()) + 1
        proposal = PrePrepare(
            view=self._engine.view, seq=self.propose_seq, cutoffs=dict(cutoffs)
        )
        self._proposed_vector = dict(cutoffs)
        self._engine.multicast(proposal)
        self.on_pre_prepare(self._engine.replica_id, proposal)

    def on_aru_advanced(self) -> None:
        """A pre-order certificate advanced: there is work to order."""
        self._engine.view_change.note_work_pending()

    def last_committed_contiguous(self) -> int:
        seq = self.last_executed
        while (seq + 1) in self.committed or (seq + 1) in self.executed_batches:
            seq += 1
        return seq

    # -- agreement handlers ----------------------------------------------------

    def on_pre_prepare(self, src: str, message: PrePrepare) -> None:
        engine = self._engine
        if message.view > engine.view:
            stash = self._future_pre_prepares.setdefault(message.view, [])
            if len(stash) < 1000:
                stash.append((src, message))
            return
        if message.view != engine.view:
            return
        if src != engine.config.leader_of(message.view):
            return
        engine.view_change.note_leader_alive()
        existing = self.pre_prepares.get(message.seq)
        digest = content_digest(message.seq, dict(message.cutoffs))
        if existing is not None:
            old_view, _cut, old_digest = existing
            if old_view == message.view and old_digest != digest:
                # Conflicting proposals from the leader in one view: keep
                # the first, ignore the second (a Byzantine leader only
                # hurts itself; followers will time it out).
                return
            if old_view > message.view:
                return
        self.pre_prepares[message.seq] = (message.view, dict(message.cutoffs), digest)
        self._broadcast_prepare(message.view, message.seq, digest)

    def replay_future_pre_prepares(self, view: int) -> None:
        """Called on view adoption: process stashed proposals for ``view``
        and drop stashes for views that can no longer be adopted."""
        for stale in [v for v in self._future_pre_prepares if v < view]:
            del self._future_pre_prepares[stale]
        for src, message in self._future_pre_prepares.pop(view, []):
            self.on_pre_prepare(src, message)

    def on_heartbeat(self, src: str, message: Heartbeat) -> None:
        engine = self._engine
        if message.view == engine.view and src == engine.config.leader_of(message.view):
            engine.view_change.note_leader_alive()

    def _broadcast_prepare(self, view: int, seq: int, digest: bytes) -> None:
        prepare = Prepare(view=view, seq=seq, content_digest=digest)
        self._engine.multicast(prepare)
        self.on_prepare(self._engine.replica_id, prepare)

    def on_prepare(self, src: str, message: Prepare) -> None:
        key = (message.view, message.seq, message.content_digest)
        votes = self._prepare_votes.setdefault(key, set())
        votes.add(src)
        self._maybe_prepared(message.view, message.seq, message.content_digest)

    def _maybe_prepared(self, view: int, seq: int, digest: bytes) -> None:
        if view < self._engine.view:
            # A replica that moved to a later view has already reported
            # its prepared certificates to the new leader; becoming
            # prepared in an abandoned view *after* that report would
            # let an old-view agreement finish behind the new leader's
            # back and commit content the new view re-proposes
            # differently (the PBFT view-change safety argument relies
            # on participation stopping at the report).
            return
        if (view, seq) in self._prepared:
            return
        stored = self.pre_prepares.get(seq)
        if stored is None or stored[0] != view or stored[2] != digest:
            return
        votes = self._prepare_votes.get((view, seq, digest), set())
        if len(votes) < self._engine.config.quorum:
            return
        self._prepared.add((view, seq))
        if (view, seq) not in self._commit_sent:
            self._commit_sent.add((view, seq))
            commit = Commit(view=view, seq=seq, content_digest=digest)
            self._engine.multicast(commit)
            self.on_commit(self._engine.replica_id, commit)

    def on_commit(self, src: str, message: Commit) -> None:
        key = (message.view, message.seq, message.content_digest)
        votes = self._commit_votes.setdefault(key, set())
        votes.add(src)
        self._maybe_committed(message.view, message.seq, message.content_digest)

    def _maybe_committed(self, view: int, seq: int, digest: bytes) -> None:
        if view < self._engine.view:
            # Same abandon rule as in _maybe_prepared: no old-view
            # agreement may conclude once we operate in a later view.
            return
        if seq <= self.last_executed:
            return
        if seq in self.committed or seq in self.executed_batches:
            return
        stored = self.pre_prepares.get(seq)
        if stored is None or stored[0] != view or stored[2] != digest:
            return
        votes = self._commit_votes.get((view, seq, digest), set())
        if len(votes) < self._engine.config.quorum:
            return
        self.committed[seq] = stored[1]
        self._m_committed.inc()
        self._engine.trace("prime.committed", seq=seq, view=view)
        self.try_execute()

    # -- prepared certificates (for view changes) ---------------------------------

    def prepared_certificates(self, above_seq: int):
        """Yield (view, seq, cutoffs) for prepared batches above ``above_seq``."""
        for view, seq in sorted(self._prepared):
            if seq <= above_seq:
                continue
            stored = self.pre_prepares.get(seq)
            if stored is not None and stored[0] == view:
                yield (view, seq, stored[1])
        # Committed batches count as prepared too.
        for seq, cutoffs in sorted(self.committed.items()):
            if seq > above_seq:
                stored = self.pre_prepares.get(seq)
                view = stored[0] if stored else 0
                yield (view, seq, cutoffs)

    # -- execution -------------------------------------------------------------------

    def execution_gap(self) -> bool:
        """True when execution is stuck far behind the committed horizon
        — the signature of a replica that missed traffic and needs a
        state transfer. Two shapes qualify: the next batch never
        committed here while much later ones did (ordering messages
        lost), or the next batch is committed but its po-requests have
        been unfetchable for so long that peers must have pruned them.
        A merely-backlogged replica is NOT gapped: po-fetches repair a
        committed backlog in-band within a round trip, and escalating it
        to state transfer would skip response generation for the batches
        jumped over."""
        if not self.committed:
            return False
        next_seq = self.last_executed + 1
        if next_seq not in self.committed:
            return max(self.committed) >= next_seq + 3
        return (
            self._blocked_since is not None
            and self._engine.kernel.now - self._blocked_since
            > self._engine.config.blocked_execution_timeout
        )

    def try_execute(self) -> None:
        while True:
            next_seq = self.last_executed + 1
            cutoffs = self.committed.get(next_seq)
            if cutoffs is None:
                self._blocked_since = None
                if self.execution_gap():
                    self._engine.note_lagging(max(self.committed))
                return
            pairs = self._expand(cutoffs)
            missing = [
                pair for pair in pairs if pair not in self._engine.preorder.requests
            ]
            if missing:
                if self._blocked_since is None:
                    self._blocked_since = self._engine.kernel.now
                for pair in missing:
                    self._engine.preorder.fetch_missing(pair)
                if self.execution_gap():
                    # Blocked long enough that peers must have pruned the
                    # po-requests: state transfer can jump past the
                    # unfetchable region, po-fetch cannot.
                    self._engine.note_lagging(max(self.committed))
                return
            self._blocked_since = None
            entries: List[BatchEntry] = []
            for origin, po_seq in pairs:
                self.ordinal += 1
                request = self._engine.preorder.requests[(origin, po_seq)]
                entries.append((self.ordinal, origin, po_seq, request.update))
            for origin, po_seq in pairs:
                if po_seq > self.ordered_through.get(origin, 0):
                    self.ordered_through[origin] = po_seq
            del self.committed[next_seq]
            self.executed_batches[next_seq] = (self.ordinal, pairs)
            self.executed_cutoffs[next_seq] = dict(cutoffs)
            self._fill_votes.pop(next_seq, None)
            self.last_executed = next_seq
            self._m_batches.inc()
            self._m_updates.inc(len(entries))
            self._m_batch_size.observe(len(entries))
            self._engine.trace(
                "prime.executed", seq=next_seq, updates=len(entries), ordinal=self.ordinal
            )
            if entries:
                self._engine.deliver_batch(entries, next_seq)

    def retry_execution(self) -> None:
        self.try_execute()

    def _expand(self, cutoffs: Dict[OriginId, int]) -> List[Tuple[OriginId, int]]:
        """Deterministic batch expansion: new pairs in (origin, seq) order."""
        pairs: List[Tuple[OriginId, int]] = []
        for origin in sorted(cutoffs):
            start = self.ordered_through.get(origin, 0) + 1
            for po_seq in range(start, cutoffs[origin] + 1):
                pairs.append((origin, po_seq))
        return pairs

    # -- state transfer integration -----------------------------------------------------

    def resume_point(self) -> Tuple[int, int, Dict[OriginId, int]]:
        """(batch_seq, ordinal, ordered_through) after the last execution."""
        return (self.last_executed, self.ordinal, dict(self.ordered_through))

    def fast_forward(
        self, batch_seq: int, ordinal: int, ordered_through: Dict[OriginId, int]
    ) -> None:
        """Adopt a verified resume point obtained via state transfer."""
        if batch_seq < self.last_executed:
            return
        self.last_executed = batch_seq
        self.ordinal = ordinal
        self.ordered_through = dict(ordered_through)
        self.propose_seq = max(self.propose_seq, batch_seq)
        for seq in [s for s in self.committed if s <= batch_seq]:
            del self.committed[seq]
        self._blocked_since = None
        self.try_execute()

    def gc_before(self, batch_seq: int) -> None:
        """Forget executed batches (and their po-requests) up to batch_seq."""
        doomed = [s for s in self.executed_batches if s < batch_seq]
        for seq in doomed:
            _ordinal, pairs = self.executed_batches.pop(seq)
            self.executed_cutoffs.pop(seq, None)
            self._engine.preorder.gc_before(pairs)

    # -- committed-batch reconciliation -------------------------------------------------

    def start_reconciliation(self) -> None:
        """Begin periodically re-fetching committed batches we are missing.

        Ordering messages are not retransmitted, so a pre-prepare or
        commit lost to a partition leaves a permanent sequence gap: the
        replica cannot execute past it, cannot serve ordered transfer
        requests, and — once every replica is gapped — the whole system
        deadlocks (state transfer itself needs the order to advance).
        Re-fetching the committed content point-to-point breaks that
        cycle; f+1 matching attestations make the adoption safe.
        """
        self.stop_reconciliation()
        self._fill_timer = self._engine.kernel.call_later(
            self._engine.config.batch_fill_interval, self._fill_tick
        )

    def stop_reconciliation(self) -> None:
        if self._fill_timer is not None:
            self._fill_timer.cancel()
            self._fill_timer = None

    def _fill_tick(self) -> None:
        self._fill_timer = None
        if not self._engine.online:
            return
        missing = self.missing_committed_seqs()
        if missing:
            self._engine.multicast(BatchFetch(seqs=tuple(missing)))
        if self.execution_gap():
            # Nothing event-driven will re-run try_execute when peers
            # have pruned the po-requests we are stuck on; the periodic
            # tick is what escalates that stall to state transfer.
            self._engine.note_lagging(max(self.committed))
        self._fill_timer = self._engine.kernel.call_later(
            self._engine.config.batch_fill_interval, self._fill_tick
        )

    def missing_committed_seqs(self) -> List[int]:
        """Sequences below our committed horizon that we cannot execute."""
        if not self.committed:
            return []
        horizon = max(self.committed)
        limit = self._engine.config.batch_fill_max
        missing = []
        for seq in range(self.last_executed + 1, horizon):
            if seq not in self.committed and seq not in self.executed_batches:
                missing.append(seq)
                if len(missing) >= limit:
                    break
        return missing

    def on_batch_fetch(self, src: str, message: BatchFetch) -> None:
        for seq in message.seqs[: self._engine.config.batch_fill_max]:
            cutoffs = self.committed.get(seq)
            if cutoffs is None:
                cutoffs = self.executed_cutoffs.get(seq)
            if cutoffs is not None:
                self._engine.send(src, BatchFetchReply(seq=seq, cutoffs=dict(cutoffs)))

    def on_batch_fetch_reply(self, src: str, message: BatchFetchReply) -> None:
        seq = message.seq
        if (
            seq <= self.last_executed
            or seq in self.committed
            or seq in self.executed_batches
        ):
            return
        digest = content_digest(seq, dict(message.cutoffs))
        voters = self._fill_votes.setdefault(seq, {}).setdefault(digest, {})
        voters[src] = dict(message.cutoffs)
        if len(voters) < self._engine.config.join_threshold:
            return
        self.committed[seq] = dict(message.cutoffs)
        self._fill_votes.pop(seq, None)
        self._engine.trace("prime.filled", seq=seq)
        self.try_execute()
