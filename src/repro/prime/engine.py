"""The Prime replica engine: facade over the three sub-protocols.

A :class:`PrimeReplica` is one replica's protocol brain. It is written as
a pure event-driven state machine: the hosting layer (CP-ITM middleware or
the Spire baseline replica) feeds it network messages via :meth:`handle`
and local updates via :meth:`inject`, and receives ordered batches through
the ``deliver`` callback. The engine never touches application state,
encryption keys, or client identities — exactly mirroring the paper's
separation where Prime orders opaque (possibly encrypted) payloads.

Lifecycle: an engine instance represents one *incarnation* of a replica.
Proactive recovery discards the instance and builds a fresh one with
``incarnation + 1`` (pre-order sequence spaces are per-incarnation, so a
recovered replica cannot collide with its pre-wipe self), then adopts a
resume point from state transfer via :meth:`fast_forward`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.costs import CostModel
from repro.errors import ProtocolError
from repro.obs.registry import MetricsRegistry, NULL_METRICS
from repro.prime.config import PrimeConfig
from repro.prime.messages import (
    BatchFetch,
    BatchFetchReply,
    Commit,
    Heartbeat,
    NewView,
    OpaqueUpdate,
    PoAck,
    PoAru,
    PoFetch,
    PoFetchReply,
    PoRequest,
    PrePrepare,
    Prepare,
    Suspect,
    VcState,
)
from repro.prime.order import BatchEntry, GlobalOrder
from repro.prime.preorder import PreOrder
from repro.prime.view_change import ViewChange
from repro.rt.substrate import Scheduler
from repro.sim.trace import Tracer

SendFn = Callable[[str, object], None]
MulticastFn = Callable[[object], None]
DeliverFn = Callable[[List[BatchEntry], int], None]
ValidateFn = Callable[[OpaqueUpdate], bool]
LaggingFn = Callable[[int], None]

_VIEW_CARRIERS = (PrePrepare, Prepare, Commit, Heartbeat, NewView)


class PrimeReplica:
    """One incarnation of a Prime protocol replica."""

    def __init__(
        self,
        kernel: Scheduler,
        config: PrimeConfig,
        replica_id: str,
        send: SendFn,
        multicast: MulticastFn,
        deliver: DeliverFn,
        validate: Optional[ValidateFn] = None,
        on_lagging: Optional[LaggingFn] = None,
        costs: Optional[CostModel] = None,
        tracer: Optional[Tracer] = None,
        incarnation: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if replica_id not in config.replica_ids:
            raise ProtocolError(f"{replica_id!r} is not in the replica set")
        self.kernel = kernel
        self.config = config
        self.replica_id = replica_id
        self.incarnation = incarnation
        self.costs = costs or CostModel()
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.view = 0
        self.online = False
        # Set by the hosting layer while a state transfer is in progress:
        # a replica that knows it is behind must not blame the leader for
        # its own lack of progress (that mistake turns every site rejoin
        # into a view-change storm).
        self.catching_up = False
        self._send = send
        self._multicast = multicast
        self._deliver = deliver
        self._validate = validate or (lambda update: True)
        self._on_lagging = on_lagging
        self.preorder = PreOrder(self)
        self.order = GlobalOrder(self)
        self.view_change = ViewChange(self)
        self._dispatch = {
            PoRequest: self.preorder.on_po_request,
            PoAck: self.preorder.on_po_ack,
            PoAru: self.preorder.on_po_aru,
            PoFetch: self.preorder.on_po_fetch,
            PoFetchReply: self.preorder.on_po_fetch_reply,
            PrePrepare: self.order.on_pre_prepare,
            Prepare: self.order.on_prepare,
            Commit: self.order.on_commit,
            Heartbeat: self.order.on_heartbeat,
            BatchFetch: self.order.on_batch_fetch,
            BatchFetchReply: self.order.on_batch_fetch_reply,
            Suspect: self.view_change.on_suspect,
            VcState: self.view_change.on_vc_state,
            NewView: self.view_change.on_new_view,
        }

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Bring the engine online; begins leader duty if it is leader."""
        self.online = True
        self.view_change.start()
        self.preorder.start_retransmission()
        self.order.start_reconciliation()
        if self.is_leader():
            self.order.start_leader_duty()

    def stop(self) -> None:
        """Take the engine offline (crash / start of proactive recovery)."""
        self.online = False
        self.order.stop_leader_duty()
        self.order.stop_reconciliation()
        self.preorder.stop_retransmission()
        self.view_change.stop()

    def is_leader(self) -> bool:
        return self.config.leader_of(self.view) == self.replica_id

    # -- I/O ----------------------------------------------------------------------

    def handle(self, src: str, message: object) -> None:
        """Entry point for every protocol message addressed to this replica."""
        if not self.online:
            return
        if isinstance(message, _VIEW_CARRIERS):
            self.view_change.note_view_evidence(src, message.view)
        elif isinstance(message, Suspect):
            # A correct replica only suspects the successor of the view
            # it operates in, so Suspect(t) attests operation at t-1.
            # Counting it as view evidence is what rescues a replica (or
            # pair) that adopted a view the rest of the system abandoned
            # suspecting: their repeated suspicions pull everyone else up
            # (PBFT's f+1 join rule), where the abandon rule would
            # otherwise wedge them out of agreement forever.
            self.view_change.note_view_evidence(src, message.target_view - 1)
        handler = self._dispatch.get(type(message))
        if handler is None:
            raise ProtocolError(f"unknown Prime message type {type(message).__name__}")
        handler(src, message)

    def inject(self, update: OpaqueUpdate) -> Optional[int]:
        """Originate ``update`` into the pre-ordering protocol."""
        if not self.online:
            return None
        seq = self.preorder.inject(update)
        if seq is not None:
            self.view_change.note_work_pending()
        return seq

    def send(self, dst: str, message: object) -> None:
        self._send(dst, message)

    def multicast(self, message: object) -> None:
        self._multicast(message)

    # -- callbacks from sub-protocols ------------------------------------------------

    def deliver_batch(self, entries: List[BatchEntry], batch_seq: int) -> None:
        self.view_change.note_progress()
        self._deliver(entries, batch_seq)

    def validate_update(self, update: OpaqueUpdate) -> bool:
        return self._validate(update)

    def note_lagging(self, target_seq: int) -> None:
        if self._on_lagging is not None:
            self._on_lagging(target_seq)

    def trace(self, category: str, **detail: object) -> None:
        if self.tracer is not None:
            self.tracer.record(category, self.replica_id, **detail)

    # -- state transfer integration -----------------------------------------------------

    def resume_point(self) -> Tuple[int, int, Dict[str, int]]:
        """(batch_seq, ordinal, ordered_through) after last local execution."""
        return self.order.resume_point()

    def fast_forward(
        self,
        batch_seq: int,
        ordinal: int,
        ordered_through: Dict[str, int],
        view: int = 0,
    ) -> None:
        """Adopt a checkpoint-certified resume point."""
        if view > self.view:
            self.view = view
            self.order.replay_future_pre_prepares(view)
            if self.is_leader():
                self.order.start_leader_duty()
            else:
                self.order.stop_leader_duty()
        self.order.fast_forward(batch_seq, ordinal, dict(ordered_through))

    def gc_before(self, batch_seq: int) -> None:
        """Garbage-collect execution history before ``batch_seq``."""
        self.order.gc_before(batch_seq)
