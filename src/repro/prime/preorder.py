"""Prime's pre-ordering sub-protocol.

Every replica can *originate* updates: it assigns them a local pre-order
sequence number and disseminates them. Other replicas acknowledge receipt;
once a quorum (2f+k+1) of replicas has acknowledged an update it is
*certified* — enough correct replicas hold it that it can always be
retrieved. Each replica advertises, per originator, the highest contiguous
certified sequence (its PO-ARU vector); the leader turns those vectors
into global ordering proposals (see :mod:`repro.prime.order`).

This module owns: the po-request store, ack accounting, certification,
ARU vectors, and retransmission of stored requests to peers that are
missing them (po-fetch).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

from repro.prime.messages import (
    OpaqueUpdate,
    OriginId,
    PoAck,
    PoAru,
    PoFetch,
    PoFetchReply,
    PoRequest,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prime.engine import PrimeReplica

PoKey = Tuple[OriginId, int]


class PreOrder:
    """Pre-ordering state machine for one replica."""

    def __init__(self, engine: "PrimeReplica"):
        self._engine = engine
        metrics = engine.metrics
        self._m_originated = metrics.counter("prime.preorder.requests_originated")
        self._m_acks = metrics.counter("prime.preorder.acks")
        self._m_certified = metrics.counter("prime.preorder.certified")
        self._m_fetches = metrics.counter("prime.preorder.fetches")
        self._own_seq = 0
        self.requests: Dict[PoKey, PoRequest] = {}
        self._acks: Dict[PoKey, Set[str]] = {}
        self._injected_digests: Set[bytes] = set()
        # aru[origin]: highest contiguous certified seq from origin (local).
        self.aru: Dict[OriginId, int] = {}
        # matrix[replica][origin]: the peer's advertised ARU (monotonic).
        self.matrix: Dict[str, Dict[OriginId, int]] = {}
        self._pending_fetches: Dict[PoKey, object] = {}
        self._aru_flush_timer = None
        self._retransmit_timer = None

    # -- origination ---------------------------------------------------------

    @property
    def origin(self) -> OriginId:
        return f"{self._engine.replica_id}#{self._engine.incarnation}"

    def inject(self, update: OpaqueUpdate) -> Optional[int]:
        """Originate ``update``; returns its po-seq (None if duplicate)."""
        if update.digest in self._injected_digests:
            return None
        self._injected_digests.add(update.digest)
        self._own_seq += 1
        self._m_originated.inc()
        request = PoRequest(origin=self.origin, seq=self._own_seq, update=update)
        self._store_request(request, from_replica=self._engine.replica_id)
        self._engine.multicast(request)
        return self._own_seq

    # -- own-stream retransmission ---------------------------------------------

    def start_retransmission(self) -> None:
        """Begin periodically re-multicasting own uncertified po-requests.

        A replica whose site is isolated keeps originating (failover
        injections, transfer requests) into the void; without
        retransmission its origin stream would wedge forever — later
        sequence numbers can never certify past the lost gap. Prime
        retransmits unacknowledged po-requests for exactly this reason.
        """
        self.stop_retransmission()
        self._retransmit_timer = self._engine.kernel.call_later(
            self._engine.config.po_retransmit_interval, self._retransmit_own
        )

    def stop_retransmission(self) -> None:
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None

    def _retransmit_own(self) -> None:
        self._retransmit_timer = None
        if not self._engine.online:
            return
        origin = self.origin
        certified = self.aru.get(origin, 0)
        for seq in range(certified + 1, self._own_seq + 1):
            request = self.requests.get((origin, seq))
            if request is not None:
                self._engine.multicast(request)
        self._retransmit_timer = self._engine.kernel.call_later(
            self._engine.config.po_retransmit_interval, self._retransmit_own
        )

    # -- message handlers -------------------------------------------------------

    def on_po_request(self, src: str, message: PoRequest) -> None:
        key = (message.origin, message.seq)
        if key in self.requests:
            # Duplicate (e.g. a fetch raced a retransmission); re-ack so the
            # sender can still build its certificate.
            self._send_ack(message)
            return
        delay = self._engine.costs.update_validation
        if delay > 0:
            self._engine.kernel.call_later(delay, self._accept_request, src, message)
        else:
            self._accept_request(src, message)

    def _accept_request(self, src: str, message: PoRequest) -> None:
        if not self._engine.online:
            return
        if not self._engine.validate_update(message.update):
            self._engine.trace("prime.po.invalid", origin=message.origin, seq=message.seq)
            return
        self._store_request(message, from_replica=src)
        self._send_ack(message)

    def _send_ack(self, message: PoRequest) -> None:
        ack = PoAck(origin=message.origin, seq=message.seq, digest=message.update.digest)
        self._engine.multicast(ack)

    def on_po_ack(self, src: str, message: PoAck) -> None:
        key = (message.origin, message.seq)
        self._m_acks.inc()
        self._acks.setdefault(key, set()).add(src)
        self._maybe_certify(key)

    def on_po_aru(self, src: str, message: PoAru) -> None:
        row = self.matrix.setdefault(src, {})
        for origin, seq in message.vector.items():
            if seq > row.get(origin, 0):
                row[origin] = seq

    def on_po_fetch(self, src: str, message: PoFetch) -> None:
        request = self.requests.get((message.origin, message.seq))
        if request is not None:
            self._engine.send(src, PoFetchReply(request=request))

    def on_po_fetch_reply(self, src: str, message: PoFetchReply) -> None:
        request = message.request
        key = (request.origin, request.seq)
        timer = self._pending_fetches.pop(key, None)
        if timer is not None:
            timer.cancel()
        if key not in self.requests:
            if not self._engine.validate_update(request.update):
                return
            self._store_request(request, from_replica=src)
        self._engine.order.retry_execution()

    # -- internals ------------------------------------------------------------------

    def _store_request(self, request: PoRequest, from_replica: str) -> None:
        key = (request.origin, request.seq)
        self.requests[key] = request
        acks = self._acks.setdefault(key, set())
        # Holding the request is an implicit ack from both the originator
        # (who broadcast it) and ourselves (who stored it).
        acks.add(from_replica)
        acks.add(self._engine.replica_id)
        origin_replica = request.origin.split("#", 1)[0]
        acks.add(origin_replica)
        self._maybe_certify(key)

    def _maybe_certify(self, key: PoKey) -> None:
        if key not in self.requests:
            return
        if len(self._acks.get(key, ())) < self._engine.config.quorum:
            return
        origin, _seq = key
        advanced = False
        cursor = self.aru.get(origin, 0)
        while True:
            next_key = (origin, cursor + 1)
            if next_key not in self.requests:
                break
            if len(self._acks.get(next_key, ())) < self._engine.config.quorum:
                break
            cursor += 1
            advanced = True
            self._m_certified.inc()
        if advanced:
            self.aru[origin] = cursor
            self.matrix.setdefault(self._engine.replica_id, {})[origin] = cursor
            self._schedule_aru_flush()
            self._engine.order.on_aru_advanced()

    def _schedule_aru_flush(self) -> None:
        """Coalesce ARU advertisements: certifications arriving within one
        flush window share a single cumulative PO-ARU broadcast (Prime
        sends PO-ARUs periodically for the same reason)."""
        if self._aru_flush_timer is not None and self._aru_flush_timer.active:
            return
        self._aru_flush_timer = self._engine.kernel.call_later(
            self._engine.config.aru_flush_interval, self._flush_aru
        )

    def _flush_aru(self) -> None:
        self._aru_flush_timer = None
        if not self._engine.online:
            return
        self._engine.multicast(PoAru(vector=dict(self.aru)))

    # -- queries used by global ordering ----------------------------------------------

    def max_known(self, origin: OriginId) -> int:
        """Highest ARU for ``origin`` across every replica's advertisement."""
        best = self.aru.get(origin, 0)
        for row in self.matrix.values():
            seq = row.get(origin, 0)
            if seq > best:
                best = seq
        return best

    def known_origins(self) -> Set[OriginId]:
        origins = set(self.aru)
        for row in self.matrix.values():
            origins.update(row)
        return origins

    def fetch_missing(self, key: PoKey) -> None:
        """Ask peers (round-robin) for a po-request we need to execute."""
        if key in self.requests or key in self._pending_fetches:
            return
        self._m_fetches.inc()
        peers = [r for r in sorted(self._engine.config.replica_ids) if r != self._engine.replica_id]
        attempt = self._engine.kernel.events_processed % len(peers)
        target = peers[attempt]
        self._engine.send(target, PoFetch(origin=key[0], seq=key[1]))
        timer = self._engine.kernel.call_later(
            self._engine.config.fetch_retry, self._retry_fetch, key
        )
        self._pending_fetches[key] = timer

    def _retry_fetch(self, key: PoKey) -> None:
        self._pending_fetches.pop(key, None)
        if key not in self.requests and self._engine.online:
            self.fetch_missing(key)

    def gc_before(self, ordered_pairs) -> None:
        """Drop po-requests and acks covered by a stable checkpoint."""
        for key in ordered_pairs:
            self.requests.pop(key, None)
            self._acks.pop(key, None)
