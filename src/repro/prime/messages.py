"""Prime protocol messages.

All messages are immutable dataclasses. ``wire_size()`` returns the
approximate serialized size in bytes, which the network layer uses for
bandwidth/queueing; the estimates follow the C Spire message layouts
(headers + fixed fields + payload lengths).

Authentication model: as in deployed BFT systems, replica-to-replica
channels are authenticated (Spire uses per-link keys); the simulation's
network layer provides authenticated sender identity, and per-message
signature *cost* is charged through the cost model. The messages that the
paper's contribution actually inspects cryptographically — client updates,
threshold-signed introductions, threshold-signed responses, checkpoints —
carry real signatures produced by :mod:`repro.crypto`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

# An update originator is a (replica incarnation) identity: "r3#0" is
# replica 3's first incarnation; after a proactive recovery it injects as
# "r3#1", which keeps pre-ordering sequence spaces from colliding.
OriginId = str

_HEADER = 64  # common message header estimate (type, sender, view, auth tag)


@dataclass(frozen=True)
class OpaqueUpdate:
    """An update as Prime sees it: opaque payload plus routing metadata.

    In Confidential Spire the payload is an encrypted, threshold-signed
    client update; in the Spire baseline it is a plaintext signed update.
    ``digest`` identifies the update for deduplication and acks.
    """

    digest: bytes
    payload: object
    size: int
    # Codec bytes of ``payload``, filled at injection/decode time so the
    # intro, ordering, and store layers never re-encode the nested
    # update. Excluded from equality/repr: it is derived data.
    encoded: Optional[bytes] = field(default=None, compare=False, repr=False)

    def wire_size(self) -> int:
        return self.size


@dataclass(frozen=True)
class PoRequest:
    """Pre-order request: an originator introduces an update."""

    origin: OriginId
    seq: int
    update: OpaqueUpdate

    def wire_size(self) -> int:
        return _HEADER + 16 + self.update.size


@dataclass(frozen=True)
class PoAck:
    """Acknowledgement that the sender holds (origin, seq)'s po-request."""

    origin: OriginId
    seq: int
    digest: bytes

    def wire_size(self) -> int:
        return _HEADER + 16 + len(self.digest)


@dataclass(frozen=True)
class PoAru:
    """Cumulative pre-order acknowledgement vector.

    ``vector[origin]`` is the highest contiguous pre-order sequence from
    ``origin`` for which the sender holds a pre-order certificate.
    """

    vector: Mapping[OriginId, int]

    def wire_size(self) -> int:
        return _HEADER + 16 * max(1, len(self.vector))


@dataclass(frozen=True)
class PrePrepare:
    """Leader's global ordering proposal for batch ``seq`` in ``view``.

    ``cutoffs`` plays the role of Prime's summary matrix: the batch orders
    every (origin, s) with ordered-so-far < s <= cutoffs[origin].
    """

    view: int
    seq: int
    cutoffs: Mapping[OriginId, int]

    def wire_size(self) -> int:
        return _HEADER + 24 + 16 * max(1, len(self.cutoffs))

    def content_key(self) -> Tuple[int, Tuple[Tuple[OriginId, int], ...]]:
        """Hashable identity of the proposal content (excludes view)."""
        return (self.seq, tuple(sorted(self.cutoffs.items())))


@dataclass(frozen=True)
class Prepare:
    """Echo of a pre-prepare's content in the prepare phase."""

    view: int
    seq: int
    content_digest: bytes

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.content_digest)


@dataclass(frozen=True)
class Commit:
    """Commit vote: the sender holds a prepare certificate for the batch."""

    view: int
    seq: int
    content_digest: bytes

    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.content_digest)


@dataclass(frozen=True)
class Heartbeat:
    """Leader liveness beacon sent when there is nothing new to order.

    Heartbeats carry no ordering content and run no agreement; they exist
    so followers can distinguish "idle leader" from "dead leader".
    """

    view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True)
class Suspect:
    """Vote to replace the current leader by moving to ``target_view``."""

    target_view: int

    def wire_size(self) -> int:
        return _HEADER + 8


@dataclass(frozen=True)
class PreparedCert:
    """A prepared-but-possibly-uncommitted batch reported in a view change."""

    view: int
    seq: int
    cutoffs: Mapping[OriginId, int]

    def wire_size(self) -> int:
        return 24 + 16 * max(1, len(self.cutoffs))


@dataclass(frozen=True)
class VcState:
    """A replica's state report to the new leader of ``view``."""

    view: int
    last_committed: int
    prepared: Tuple[PreparedCert, ...] = ()

    def wire_size(self) -> int:
        return _HEADER + 16 + sum(c.wire_size() for c in self.prepared)


@dataclass(frozen=True)
class NewView:
    """New leader's announcement: adopted batches then fresh proposals."""

    view: int
    start_seq: int
    adopted: Tuple[PreparedCert, ...] = ()

    def wire_size(self) -> int:
        return _HEADER + 16 + sum(c.wire_size() for c in self.adopted)


@dataclass(frozen=True)
class BatchFetch:
    """Request retransmission of committed batches the sender is missing.

    A replica whose execution is stuck on a gap (it lost the pre-prepare
    or enough commits during a partition) asks its peers for the batches
    it cannot reconstruct; ``seqs`` lists the missing batch sequences.
    """

    seqs: Tuple[int, ...]

    def wire_size(self) -> int:
        return _HEADER + 8 * max(1, len(self.seqs))


@dataclass(frozen=True)
class BatchFetchReply:
    """Attestation of one committed batch's content.

    Only batches the responder itself committed (or executed) are ever
    attested; the requester adopts content once f+1 responders agree, so
    at least one correct replica vouches for it.
    """

    seq: int
    cutoffs: Mapping[OriginId, int]

    def wire_size(self) -> int:
        return _HEADER + 16 + 16 * max(1, len(self.cutoffs))


@dataclass(frozen=True)
class PoFetch:
    """Request retransmission of a missing po-request."""

    origin: OriginId
    seq: int

    def wire_size(self) -> int:
        return _HEADER + 16


@dataclass(frozen=True)
class PoFetchReply:
    """Retransmission of a stored po-request."""

    request: PoRequest

    def wire_size(self) -> int:
        return _HEADER + self.request.wire_size()
