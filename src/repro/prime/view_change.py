"""Leader election and view changes.

Prime's defining feature is that it bounds the damage a malicious-but-
functioning leader can do by monitoring delay; we distill its
suspect-leader machinery into two failure detectors plus a PBFT-style
view-change state transfer:

1. *Leader-alive*: followers expect a pre-prepare or heartbeat from the
   current leader within ``vc_timeout``; silence draws suspicion.
2. *Progress*: if certified updates exist that are not getting globally
   ordered (or committed batches are stuck), the leader is suspected even
   if it keeps chattering — this is what catches a leader that orders
   selectively or whose proposals cannot commit.

Suspicion is a vote for a specific next view. A replica joins a suspicion
once f+1 distinct replicas voted for it (it then contains at least one
correct voter) and the view changes once 2f+k+1 replicas voted. The new
leader collects state reports from a quorum, adopts the highest-view
prepared certificate for every batch above the collective commit point
(quorum intersection guarantees nothing committed is lost), fills true
gaps with empty batches, and resumes proposing.

Replicas also track the highest view attested by each peer; seeing f+1
peers operating at a higher view fast-forwards a lagging replica's view
without waiting for timeouts (this is how a rejoining replica resyncs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.prime.messages import NewView, PreparedCert, Suspect, VcState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.prime.engine import PrimeReplica


class ViewChange:
    """View-change state machine for one replica."""

    def __init__(self, engine: "PrimeReplica"):
        self._engine = engine
        self._m_suspects = engine.metrics.counter("prime.view_change.suspects")
        self._m_adopted = engine.metrics.counter("prime.view_change.adopted")
        self._suspect_votes: Dict[int, Set[str]] = {}
        self._own_suspects: Set[int] = set()
        self._vc_states: Dict[int, Dict[str, VcState]] = {}
        self._peer_views: Dict[str, int] = {}
        self._last_leader_sign = 0.0
        self._last_progress = 0.0
        self._pending_since: Optional[float] = None
        self._monitor_timer = None
        self._new_view_done: Set[int] = set()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._last_leader_sign = self._engine.kernel.now
        self._last_progress = self._engine.kernel.now
        self._arm_monitor()

    def stop(self) -> None:
        if self._monitor_timer is not None:
            self._monitor_timer.cancel()
            self._monitor_timer = None

    def _arm_monitor(self) -> None:
        interval = self._engine.config.vc_timeout / 3.0
        self._monitor_timer = self._engine.kernel.call_later(interval, self._monitor)

    # -- signals from the rest of the engine -------------------------------------

    def note_leader_alive(self) -> None:
        self._last_leader_sign = self._engine.kernel.now

    def note_progress(self) -> None:
        self._last_progress = self._engine.kernel.now
        if not self._work_pending():
            self._pending_since = None

    def note_work_pending(self) -> None:
        if self._pending_since is None:
            self._pending_since = self._engine.kernel.now

    def note_view_evidence(self, src: str, view: int) -> None:
        """Record that ``src`` attests to operating at ``view``."""
        if view > self._peer_views.get(src, -1):
            self._peer_views[src] = view
        if view <= self._engine.view:
            return
        attesting = sorted(self._peer_views.values(), reverse=True)
        threshold = self._engine.config.join_threshold
        if len(attesting) >= threshold and attesting[threshold - 1] > self._engine.view:
            self._adopt_view(attesting[threshold - 1], broadcast_state=True)

    # -- failure detection ----------------------------------------------------------

    def _work_pending(self) -> bool:
        order = self._engine.order
        if order.committed:
            return True
        preorder = self._engine.preorder
        for origin, certified in preorder.aru.items():
            if certified > order.ordered_through.get(origin, 0):
                return True
        return False

    def _monitor(self) -> None:
        self._monitor_timer = None
        if not self._engine.online:
            return
        if self._engine.catching_up or self._engine.order.execution_gap():
            # We are (or are about to be) in state transfer: our stall is
            # our own, not the leader's. Reset the detectors so suspicion
            # resumes cleanly once we are caught up.
            self._last_leader_sign = self._engine.kernel.now
            self._last_progress = self._engine.kernel.now
            self._arm_monitor()
            return
        now = self._engine.kernel.now
        timeout = self._engine.config.vc_timeout
        suspicious = False
        if not self._engine.is_leader():
            if now - self._last_leader_sign > timeout:
                suspicious = True
        if self._work_pending():
            self.note_work_pending()
            baseline = max(self._last_progress, self._pending_since or 0.0)
            if now - baseline > timeout:
                suspicious = True
        if suspicious:
            self._suspect(self._engine.view + 1)
        self._arm_monitor()

    def _suspect(self, target_view: int) -> None:
        self._own_suspects.add(target_view)
        message = Suspect(target_view=target_view)
        self._engine.multicast(message)
        self.on_suspect(self._engine.replica_id, message)
        self._m_suspects.inc()
        self._engine.trace("prime.suspect", target_view=target_view)
        # Postpone re-suspicion so votes can accumulate.
        self._last_leader_sign = self._engine.kernel.now
        self._last_progress = self._engine.kernel.now

    # -- message handlers ----------------------------------------------------------------

    def on_suspect(self, src: str, message: Suspect) -> None:
        target = message.target_view
        if target <= self._engine.view:
            return
        votes = self._suspect_votes.setdefault(target, set())
        votes.add(src)
        config = self._engine.config
        if (
            len(votes) >= config.join_threshold
            and target not in self._own_suspects
            and self._corroborates_suspicion()
        ):
            # Join only when our own detectors agree something is off:
            # f+1 votes prove one *correct* replica complained, but that
            # replica may merely have been partitioned and is now venting
            # stale suspicion — a healthy replica with a live leader must
            # not amplify it into a spurious view change.
            self._own_suspects.add(target)
            join = Suspect(target_view=target)
            self._engine.multicast(join)
            votes.add(self._engine.replica_id)
        if len(votes) >= config.quorum:
            self._adopt_view(target, broadcast_state=True)

    def _corroborates_suspicion(self) -> bool:
        """Half-timeout version of the failure detectors: are we at least
        mildly unhappy with the current leader ourselves?"""
        engine = self._engine
        if engine.catching_up or engine.order.execution_gap():
            return False
        now = engine.kernel.now
        half = engine.config.vc_timeout / 2.0
        if not engine.is_leader() and now - self._last_leader_sign > half:
            return True
        if self._work_pending():
            baseline = max(self._last_progress, self._pending_since or 0.0)
            if now - baseline > half:
                return True
        return False

    def _adopt_view(self, view: int, broadcast_state: bool) -> None:
        engine = self._engine
        if view <= engine.view:
            return
        engine.view = view
        self._m_adopted.inc()
        engine.trace("prime.view", view=view, leader=engine.config.leader_of(view))
        self._last_leader_sign = engine.kernel.now
        self._last_progress = engine.kernel.now
        for stale in [v for v in self._suspect_votes if v <= view]:
            del self._suspect_votes[stale]
        engine.order.stop_leader_duty()
        engine.order.replay_future_pre_prepares(view)
        if broadcast_state:
            self._send_vc_state(view)

    def _send_vc_state(self, view: int) -> None:
        engine = self._engine
        order = engine.order
        last_committed = order.last_committed_contiguous()
        prepared = tuple(
            PreparedCert(view=v, seq=s, cutoffs=dict(c))
            for v, s, c in order.prepared_certificates(last_committed)
        )
        state = VcState(view=view, last_committed=last_committed, prepared=prepared)
        leader = engine.config.leader_of(view)
        if leader == engine.replica_id:
            self.on_vc_state(engine.replica_id, state)
        else:
            engine.send(leader, state)

    def on_vc_state(self, src: str, message: VcState) -> None:
        engine = self._engine
        if message.view != engine.view:
            if message.view > engine.view:
                # Stash for when we adopt that view.
                self._vc_states.setdefault(message.view, {})[src] = message
            return
        if engine.config.leader_of(message.view) != engine.replica_id:
            return
        states = self._vc_states.setdefault(message.view, {})
        states[src] = message
        if message.view in self._new_view_done:
            return
        if len(states) < engine.config.quorum:
            return
        self._new_view_done.add(message.view)
        self._install_new_view(message.view, states)

    def _install_new_view(self, view: int, states: Dict[str, VcState]) -> None:
        engine = self._engine
        start = max(state.last_committed for state in states.values())
        best: Dict[int, PreparedCert] = {}
        for state in states.values():
            for cert in state.prepared:
                if cert.seq <= start:
                    continue
                current = best.get(cert.seq)
                if current is None or cert.view > current.view:
                    best[cert.seq] = cert
        top = max(best) if best else start
        adopted: List[PreparedCert] = []
        for seq in range(start + 1, top + 1):
            cert = best.get(seq)
            if cert is None:
                # True gap: no correct replica committed it, fill with an
                # empty batch (cutoffs below ordered state order nothing).
                cert = PreparedCert(view=0, seq=seq, cutoffs={})
            adopted.append(PreparedCert(view=view, seq=seq, cutoffs=dict(cert.cutoffs)))
        new_view = NewView(view=view, start_seq=start, adopted=tuple(adopted))
        engine.multicast(new_view)
        self.on_new_view(engine.replica_id, new_view)

    def on_new_view(self, src: str, message: NewView) -> None:
        engine = self._engine
        if message.view > engine.view:
            self._adopt_view(message.view, broadcast_state=False)
        if message.view != engine.view:
            return
        if src != engine.config.leader_of(message.view):
            return
        self.note_leader_alive()
        order = engine.order
        if message.start_seq > order.last_executed and (
            message.start_seq not in order.committed
        ):
            engine.note_lagging(message.start_seq)
        for cert in message.adopted:
            order.on_pre_prepare(
                src,
                _as_pre_prepare(message.view, cert),
            )
        order.propose_seq = max(
            order.propose_seq,
            message.start_seq,
            max((c.seq for c in message.adopted), default=0),
        )
        if engine.is_leader():
            order.start_leader_duty()


def _as_pre_prepare(view: int, cert: PreparedCert):
    from repro.prime.messages import PrePrepare

    return PrePrepare(view=view, seq=cert.seq, cutoffs=dict(cert.cutoffs))
