"""Prime engine configuration and quorum arithmetic.

Prime configured for proactive recovery (as in Spire) uses ``n = 3f+2k+1``
total replicas to tolerate ``f`` Byzantine replicas and ``k`` unavailable
ones (recovering, crashed, or disconnected); every certificate quorum is
``2f+k+1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PrimeConfig:
    """Static parameters shared by every replica in one Prime instance."""

    replica_ids: Tuple[str, ...]
    f: int
    k: int
    # Leader cadence: a pre-prepare is issued every pp_interval seconds
    # (non-empty batches run full agreement; empty ones act as heartbeats).
    pp_interval: float = 0.020
    # A replica suspects the leader after this long without a valid
    # pre-prepare (Prime's suspect-leader distilled to its timeout form).
    vc_timeout: float = 0.150
    # How long to wait before re-fetching a missing po-request.
    fetch_retry: float = 0.050
    # Coalescing window for cumulative PO-ARU advertisements.
    aru_flush_interval: float = 0.008
    # Retransmission period for own uncertified po-requests (repairs
    # streams broken by partitions or message loss).
    po_retransmit_interval: float = 0.500
    # Reconciliation period for missing committed batches: a replica
    # whose execution is stuck on a sequence gap re-fetches the batch
    # content from peers (f+1 matching attestations to adopt).
    batch_fill_interval: float = 0.120
    # At most this many missing sequences are requested per fill round.
    batch_fill_max: int = 16
    # How long execution may stall on a committed batch whose po-requests
    # cannot be fetched before the stall counts as an execution gap
    # (peers have pruned the data; only state transfer can jump it).
    # Generous relative to fetch_retry so in-band repair always wins on
    # live data.
    blocked_execution_timeout: float = 0.500
    # Retention of executed batch metadata (for serving po-fetches and
    # state transfer) before garbage collection, in batches.
    max_batch_history: int = 20000

    def __post_init__(self) -> None:
        if self.f < 0 or self.k < 0:
            raise ConfigurationError("f and k must be non-negative")
        expected = 3 * self.f + 2 * self.k + 1
        if len(self.replica_ids) != expected:
            raise ConfigurationError(
                f"Prime with f={self.f}, k={self.k} needs n={expected} replicas, "
                f"got {len(self.replica_ids)}"
            )
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ConfigurationError("replica ids must be unique")

    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def quorum(self) -> int:
        """Certificate size: 2f+k+1 (ordering, po-acks, stability)."""
        return 2 * self.f + self.k + 1

    @property
    def join_threshold(self) -> int:
        """f+1: enough votes to contain one correct replica."""
        return self.f + 1

    def leader_of(self, view: int) -> str:
        """Round-robin leader rotation in ``replica_ids`` order.

        The deployment builder passes replicas interleaved across sites,
        so consecutive views place the leader in different sites and a
        site disconnection costs a single view change, not one per
        replica in the dead site.
        """
        return self.replica_ids[view % len(self.replica_ids)]
