"""Confidential Spire: a reproduction of "Toward Intrusion Tolerance as a
Service: Confidentiality in Partially Cloud-Based BFT Systems" (Khan &
Babay, DSN 2021).

The library is layered bottom-up:

- :mod:`repro.sim` — deterministic discrete-event simulation kernel,
- :mod:`repro.crypto` — from-scratch AES-256-CBC, RSA, Shamir sharing,
  Shoup threshold RSA, and the TPM/SGX hardware-key model,
- :mod:`repro.net` — geographic topology, Spines-style intrusion-tolerant
  overlay, bandwidth/latency transport, and attack injection,
- :mod:`repro.prime` — the Prime-style intrusion-tolerant replication
  engine (pre-ordering, summary ordering, view changes),
- :mod:`repro.core` — the paper's contribution: replica distribution
  rules, threshold-signed introduction of encrypted updates, encrypted
  checkpoints, data-center-only state transfer, key renewal, and the
  executing/storage replica roles,
- :mod:`repro.scada` — the power-grid SCADA application,
- :mod:`repro.system` — deployment builder, proactive recovery, metrics,
- :mod:`repro.baselines` — related-work comparison systems.

Quickstart::

    from repro.system import SystemConfig, Mode, build

    deployment = build(SystemConfig(mode=Mode.CONFIDENTIAL, f=1))
    deployment.start()
    deployment.start_workload(duration=30.0)
    deployment.run(until=35.0)
    print(deployment.recorder.stats().row("confidential f=1"))
    deployment.auditor.assert_clean(set(deployment.data_center_hosts))
"""

from repro.costs import FREE, CostModel
from repro.errors import (
    ConfidentialityViolation,
    ConfigurationError,
    CryptoError,
    DecryptionError,
    KeyExfiltrationError,
    KeyScheduleError,
    NetworkError,
    ProtocolError,
    ReproError,
    SignatureError,
    SimulationError,
    StateTransferError,
    UnreachableError,
)
from repro.system import Deployment, Mode, SystemConfig, build

__version__ = "1.0.0"

__all__ = [
    "CostModel",
    "FREE",
    "Deployment",
    "Mode",
    "SystemConfig",
    "build",
    "ReproError",
    "ConfigurationError",
    "CryptoError",
    "SignatureError",
    "DecryptionError",
    "KeyExfiltrationError",
    "KeyScheduleError",
    "NetworkError",
    "UnreachableError",
    "ProtocolError",
    "StateTransferError",
    "ConfidentialityViolation",
    "SimulationError",
    "__version__",
]
