"""Related-work baselines implemented for comparison.

- :mod:`repro.baselines.secret_store` — DepSpace-style secret-sharing
  confidential storage: confidential against any f compromises, but
  limited to storage operations (no server-side application logic).
"""

from repro.baselines.secret_store import SecretStoreClient, SecretStoreReplica

__all__ = ["SecretStoreClient", "SecretStoreReplica"]
