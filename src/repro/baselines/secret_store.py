"""Secret-sharing confidential storage baseline (Section II-C).

The related-work approach to confidential BFT (DepSpace, Belisarius,
COBRA) has clients split values with an (f+1, n)-threshold secret-sharing
scheme, giving each replica one share: any f+1 replicas reconstruct, any f
learn nothing. This buys confidentiality *against f compromised replicas
anywhere* — stronger in that respect than Confidential Spire — but
supports only storage-shaped operations: the servers cannot execute
application logic over data they cannot see.

This module implements such a store over the same simulation substrate,
so the repository can demonstrate the trade-off concretely: the baseline
cannot run the SCADA master at all (no server-side execution), while
Confidential Spire can, at the cost of trusting the on-premises hosts.

The replication layer here is deliberately simple (write-to-all,
ack-quorum of 2f+1; read f+1 matching shares) — enough to measure the
storage data path, not a full BFT engine; the full engine is what
:mod:`repro.prime` provides for the main system.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crypto.shamir import reconstruct_bytes, split_bytes
from repro.errors import ConfigurationError
from repro.rt.substrate import Scheduler, Transport
from repro.sim.rng import RngRegistry


@dataclass(frozen=True)
class StoreWrite:
    key: str
    version: int
    share: bytes
    request_id: int

    def wire_size(self) -> int:
        return 64 + len(self.key) + len(self.share)


@dataclass(frozen=True)
class StoreWriteAck:
    key: str
    version: int
    request_id: int

    def wire_size(self) -> int:
        return 64 + len(self.key)


@dataclass(frozen=True)
class StoreRead:
    key: str
    request_id: int

    def wire_size(self) -> int:
        return 64 + len(self.key)


@dataclass(frozen=True)
class StoreReadReply:
    key: str
    version: int
    share: Optional[bytes]
    request_id: int
    replica_index: int

    def wire_size(self) -> int:
        return 64 + len(self.key) + (len(self.share) if self.share else 0)


class SecretStoreReplica:
    """One storage replica: holds a single share per key, never the value."""

    def __init__(self, network: Transport, host: str, index: int):
        self.network = network
        self.host = host
        self.index = index
        self._shares: Dict[str, Tuple[int, bytes]] = {}
        network.register(host, self.on_message)

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, StoreWrite):
            current = self._shares.get(message.key)
            if current is None or message.version > current[0]:
                self._shares[message.key] = (message.version, message.share)
            self.network.send(
                self.host,
                src,
                StoreWriteAck(
                    key=message.key, version=message.version, request_id=message.request_id
                ),
            )
        elif isinstance(message, StoreRead):
            stored = self._shares.get(message.key)
            version, share = stored if stored is not None else (0, None)
            self.network.send(
                self.host,
                src,
                StoreReadReply(
                    key=message.key,
                    version=version,
                    share=share,
                    request_id=message.request_id,
                    replica_index=self.index,
                ),
            )

    def stored_share(self, key: str) -> Optional[bytes]:
        stored = self._shares.get(key)
        return stored[1] if stored else None


class SecretStoreClient:
    """A client that splits values into shares and reassembles them."""

    def __init__(
        self,
        kernel: Scheduler,
        network: Transport,
        host: str,
        replicas: List[str],
        f: int,
        rng: RngRegistry,
    ):
        if len(replicas) < 3 * f + 1:
            raise ConfigurationError("secret-sharing BFT storage needs n >= 3f+1")
        self.kernel = kernel
        self.network = network
        self.host = host
        self.replicas = list(replicas)
        self.f = f
        self._rng = rng.stream(f"secret-store.{host}")
        self._request_ids = itertools.count(1)
        self._versions: Dict[str, int] = {}
        self._write_acks: Dict[int, Set[str]] = {}
        self._write_done: Dict[int, Callable[[], None]] = {}
        self._read_replies: Dict[int, Dict[int, StoreReadReply]] = {}
        self._read_done: Dict[int, Callable[[Optional[bytes]], None]] = {}
        network.register(host, self.on_message)

    # -- operations -------------------------------------------------------------

    def write(self, key: str, value: bytes, on_done: Callable[[], None]) -> int:
        """Split ``value`` and store one share per replica.

        Completion fires after a 2f+1 ack quorum, guaranteeing f+1 correct
        replicas hold shares (reconstruction quorum survives f failures).
        """
        request_id = next(self._request_ids)
        version = self._versions.get(key, 0) + 1
        self._versions[key] = version
        shares = split_bytes(value, self.f + 1, len(self.replicas), self._rng)
        self._write_acks[request_id] = set()
        self._write_done[request_id] = on_done
        for index, replica in enumerate(self.replicas, start=1):
            self.network.send(
                self.host,
                replica,
                StoreWrite(
                    key=key, version=version, share=shares[index], request_id=request_id
                ),
            )
        return request_id

    def read(self, key: str, on_done: Callable[[Optional[bytes]], None]) -> int:
        """Collect shares and reconstruct; None when the key is unknown."""
        request_id = next(self._request_ids)
        self._read_replies[request_id] = {}
        self._read_done[request_id] = on_done
        for replica in self.replicas:
            self.network.send(self.host, replica, StoreRead(key=key, request_id=request_id))
        return request_id

    # -- replies -------------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, StoreWriteAck):
            acks = self._write_acks.get(message.request_id)
            if acks is None:
                return
            acks.add(src)
            if len(acks) >= 2 * self.f + 1:
                done = self._write_done.pop(message.request_id, None)
                self._write_acks.pop(message.request_id, None)
                if done is not None:
                    done()
        elif isinstance(message, StoreReadReply):
            replies = self._read_replies.get(message.request_id)
            if replies is None:
                return
            replies[message.replica_index] = message
            self._try_reconstruct(message.request_id)

    def _try_reconstruct(self, request_id: int) -> None:
        replies = self._read_replies.get(request_id)
        if replies is None:
            return
        # Group replies by version; reconstruct once f+1 shares of the
        # highest acked version are available.
        by_version: Dict[int, Dict[int, bytes]] = {}
        empty = 0
        for reply in replies.values():
            if reply.share is None:
                empty += 1
            else:
                by_version.setdefault(reply.version, {})[reply.replica_index] = reply.share
        for version in sorted(by_version, reverse=True):
            shares = by_version[version]
            if len(shares) >= self.f + 1:
                subset = dict(list(shares.items())[: self.f + 1])
                value = reconstruct_bytes(subset)
                done = self._read_done.pop(request_id, None)
                self._read_replies.pop(request_id, None)
                if done is not None:
                    done(value)
                return
        if empty >= 2 * self.f + 1:
            done = self._read_done.pop(request_id, None)
            self._read_replies.pop(request_id, None)
            if done is not None:
                done(None)
