"""Schedule shrinking: bisect a failing timeline to a minimal repro.

Given a schedule that violates some invariant, :func:`shrink` removes
events delta-debugging style (Zeller's ddmin) until no single event can be
dropped without losing the failure. Because each
:class:`~repro.faultlab.schedule.FaultEvent` carries its whole window
(compromise+release, isolate+reconnect), events are independently
removable and the reduced schedule is always well-formed.

The reduction predicate is *same failing invariant*, not merely "still
fails": a schedule that trips confidentiality must shrink to a schedule
that still trips confidentiality, never drift to an unrelated liveness
failure discovered along the way.

:func:`regression_test_source` then renders the minimal schedule as a
ready-to-paste pytest function with the schedule JSON embedded, so a
counterexample found in a sweep becomes a permanent regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.faultlab.runner import FaultLabConfig, FaultLabResult, run_schedule
from repro.faultlab.schedule import FaultSchedule


@dataclass
class ShrinkResult:
    """Outcome of a shrink: the minimal schedule and the bookkeeping."""

    original: FaultSchedule
    minimal: FaultSchedule
    failing_invariants: Tuple[str, ...]
    runs: int
    final: FaultLabResult

    @property
    def removed(self) -> int:
        return len(self.original) - len(self.minimal)

    def summary(self) -> str:
        return (
            f"shrunk {len(self.original)} -> {len(self.minimal)} events "
            f"({self.runs} replays); still failing: "
            f"{', '.join(self.failing_invariants)}"
        )


def shrink(
    schedule: FaultSchedule,
    lab: Optional[FaultLabConfig] = None,
    max_runs: int = 64,
) -> ShrinkResult:
    """Minimize ``schedule`` while preserving its invariant failure.

    Raises ``ValueError`` if the schedule does not fail to begin with —
    shrinking a passing schedule is a caller bug, not an empty result.
    """
    lab = lab or FaultLabConfig()
    first = run_schedule(schedule, lab)
    if first.ok:
        raise ValueError("schedule passes all invariants; nothing to shrink")
    target = set(first.report.failing_invariants)

    runs = 1
    current = list(range(len(schedule.events)))
    best_result = first

    def still_fails(indices: Sequence[int]) -> Optional[FaultLabResult]:
        nonlocal runs
        if runs >= max_runs:
            return None
        runs += 1
        result = run_schedule(schedule.subset(indices), lab)
        if not result.ok and target & set(result.report.failing_invariants):
            return result
        return None

    # ddmin: try removing chunks, halving granularity when stuck.
    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if not candidate:
                start += chunk
                continue
            result = still_fails(candidate)
            if result is not None:
                current = candidate
                best_result = result
                granularity = max(granularity - 1, 2)
                reduced = True
                # Restart scanning the (shorter) list from the left.
                start = 0
            else:
                start += chunk
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)

    minimal = schedule.subset(current)
    return ShrinkResult(
        original=schedule,
        minimal=minimal,
        failing_invariants=tuple(sorted(target)),
        runs=runs,
        final=best_result,
    )


# ---------------------------------------------------------------------------
# Regression-test emission
# ---------------------------------------------------------------------------

_TEMPLATE = '''\
def test_{name}():
    """Auto-generated FaultLab regression (seed {seed}).

    Minimal schedule reproducing: {invariants}.
    Regenerate with: repro faultlab --seed {seed} --shrink --emit-test
    """
    from repro.faultlab import FaultLabConfig, FaultSchedule, run_schedule

    schedule = FaultSchedule.from_json("""{schedule_json}""")
    result = run_schedule(schedule, FaultLabConfig())
    assert not result.ok, "schedule no longer reproduces the failure"
    assert set(result.report.failing_invariants) & {invariant_set!r}, (
        "failure drifted to a different invariant: "
        + result.report.summary()
    )
'''


def regression_test_source(
    shrunk: ShrinkResult,
    name: Optional[str] = None,
) -> str:
    """Render a ready-to-paste pytest function pinning the counterexample.

    The generated test asserts the failure still *reproduces* — it is a
    bug tracker entry in executable form. Once the underlying bug is
    fixed, flip the assertions to ``assert result.ok``.
    """
    test_name = name or f"faultlab_seed_{shrunk.minimal.seed}_regression"
    return _TEMPLATE.format(
        name=test_name,
        seed=shrunk.minimal.seed,
        invariants=", ".join(shrunk.failing_invariants),
        schedule_json=shrunk.minimal.to_json(indent=2),
        invariant_set=set(shrunk.failing_invariants),
    )
