"""Seeded, replayable fault schedules.

A :class:`FaultSchedule` is the unit FaultLab explores, replays, and
shrinks: an ordered list of :class:`FaultEvent` windows, each describing
one adversarial act against a deployment — a Byzantine compromise with
specific behaviours, a site disconnection, a partial DoS, a WAN
message-loss window, a clock-skewed delivery window, a proactive recovery,
or (for checker validation only) a planted plaintext leak.

Two properties make schedules useful as test artifacts:

- **seeded**: :func:`generate_schedule` derives the whole timeline from a
  single integer seed, so ``repro faultlab --seed 1234`` reproduces the
  exact run that failed in a sweep;
- **serializable**: schedules round-trip through JSON, so a shrunk
  counterexample can be pasted into a regression test verbatim.

Events carry their whole window (``at`` .. ``until``): the compromise and
its release, the isolation and its reconnect, travel together. That makes
each event independently removable, which is what the shrinker needs.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.system.adversary import Behavior

#: Recognised fault kinds. ``leak`` is never generated randomly — it is the
#: deliberate confidentiality breach used to validate the checker. The
#: storage kinds (``torn_write``/``corrupt_segment``) are likewise explicit
#: only: adding them to the random pool would regenerate every existing
#: seed's schedule, invalidating the sweep baselines. The shard kinds are
#: generated only by the dedicated ShardLab sweep
#: (:func:`repro.faultlab.shardfaults.generate_shard_schedule`), never by
#: :func:`generate_schedule`, for the same reason.
KINDS = (
    "compromise", "isolate", "degrade", "loss", "skew", "recover", "leak",
    "torn_write", "corrupt_segment",
    "crash_during_compaction", "crash_mid_delta",
    "shard_kill_proposers", "shard_partition",
)

#: ShardLab kinds: ``target`` names a shard (``s0``, ``s1``, ...) of a
#: sharded deployment rather than a host or site.
#: ``shard_kill_proposers`` crash-recovers ``count`` of the shard's
#: on-premises proposers back-to-back (staggered by ``stagger`` so the
#: one-at-a-time recovery orchestrator never skips one);
#: ``shard_partition`` isolates one of the shard's on-premises sites for
#: the window — cross-shard commits into that shard stall and must drain
#: after the reconnect.
SHARD_KINDS = ("shard_kill_proposers", "shard_partition")

#: Kinds whose ``target`` names a site rather than a replica host.
SITE_KINDS = ("isolate", "degrade", "skew")

#: Kinds that crash a replica *and* damage its durable store before the
#: respawn: ``torn_write`` truncates the newest segment's tail (a crash
#: mid-append); ``corrupt_segment`` flips a byte inside a record (bit rot
#: / hostile storage); ``crash_during_compaction`` kills the process
#: between compaction's atomic swap steps (``stage`` 1-3 picks the crash
#: window), leaving the .compact.tmp/.old artifacts repair must resolve;
#: ``crash_mid_delta`` tears the newest delta-checkpoint file mid-write.
#: All carry recover-style ``duration`` params.
STORE_KINDS = (
    "torn_write",
    "corrupt_segment",
    "crash_during_compaction",
    "crash_mid_delta",
)

#: Kinds that require an ``until`` (they are windows, not instants).
WINDOW_KINDS = ("compromise", "isolate", "degrade", "loss", "skew", "shard_partition")


@dataclass(frozen=True)
class FaultEvent:
    """One fault window in a schedule.

    ``params`` is stored as a sorted tuple of pairs so events stay hashable
    and schedules stay value-comparable; use :meth:`param` to read one.
    """

    at: float
    kind: str
    target: str = ""
    until: Optional[float] = None
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        for key, value in self.params:
            if key == name:
                return value
        return default

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"at": self.at, "kind": self.kind}
        if self.target:
            data["target"] = self.target
        if self.until is not None:
            data["until"] = self.until
        data.update({key: value for key, value in self.params})
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultEvent":
        extras = {
            key: value
            for key, value in data.items()
            if key not in ("at", "kind", "target", "until")
        }
        return FaultEvent(
            at=float(data["at"]),
            kind=data["kind"],
            target=data.get("target", ""),
            until=float(data["until"]) if "until" in data else None,
            params=tuple(sorted(extras.items())),
        )

    def describe(self) -> str:
        window = f"@{self.at:.2f}"
        if self.until is not None:
            window += f"..{self.until:.2f}"
        extra = " ".join(f"{k}={v}" for k, v in self.params)
        return f"{self.kind} {self.target} {window}{(' ' + extra) if extra else ''}".strip()


def make_event(at: float, kind: str, target: str = "", until: Optional[float] = None,
               **params: Any) -> FaultEvent:
    """Convenience constructor accepting params as keyword arguments."""
    return FaultEvent(
        at=at, kind=kind, target=target, until=until,
        params=tuple(sorted(params.items())),
    )


@dataclass(frozen=True)
class FaultSchedule:
    """A seeded, ordered timeline of fault windows."""

    seed: int
    horizon: float
    events: Tuple[FaultEvent, ...] = ()

    def __len__(self) -> int:
        return len(self.events)

    def subset(self, indices: Iterable[int]) -> "FaultSchedule":
        """The schedule restricted to the given event indices (for shrinking)."""
        keep = sorted(set(indices))
        return FaultSchedule(
            seed=self.seed,
            horizon=self.horizon,
            events=tuple(self.events[i] for i in keep),
        )

    def with_event(self, event: FaultEvent) -> "FaultSchedule":
        """A copy with ``event`` merged in, keeping time order."""
        events = sorted(self.events + (event,), key=lambda e: (e.at, e.kind, e.target))
        return FaultSchedule(seed=self.seed, horizon=self.horizon, events=tuple(events))

    @property
    def clear_time(self) -> float:
        """Virtual time by which every scheduled fault has ended."""
        ends = [e.until if e.until is not None else e.at + self._tail(e) for e in self.events]
        return max(ends, default=0.0)

    @staticmethod
    def _tail(event: FaultEvent) -> float:
        if event.kind == "recover" or event.kind in STORE_KINDS:
            return float(event.param("duration", 3.0))
        if event.kind == "shard_kill_proposers":
            # ``count`` staggered kills, each lasting ``duration``.
            count = max(1, int(event.param("count", 1)))
            stagger = float(event.param("stagger", 0.6))
            return float(event.param("duration", 3.0)) + stagger * (count - 1)
        return 0.0

    # -- serialization -------------------------------------------------------

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "horizon": self.horizon,
                "events": [event.to_dict() for event in self.events],
            },
            indent=indent,
            sort_keys=True,
        )

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        data = json.loads(text)
        schedule = FaultSchedule(
            seed=int(data["seed"]),
            horizon=float(data["horizon"]),
            events=tuple(FaultEvent.from_dict(e) for e in data.get("events", [])),
        )
        validate_schedule(schedule)
        return schedule

    def describe(self) -> str:
        lines = [f"schedule seed={self.seed} horizon={self.horizon:.1f} "
                 f"({len(self.events)} events)"]
        for index, event in enumerate(self.events):
            lines.append(f"  [{index}] {event.describe()}")
        return "\n".join(lines)


_SHARD_TARGET = re.compile(r"^s\d+$")


def validate_schedule(schedule: FaultSchedule) -> None:
    """Structural validation; raises :class:`ConfigurationError`."""
    for event in schedule.events:
        if event.kind not in KINDS:
            raise ConfigurationError(f"unknown fault kind {event.kind!r}")
        if event.at < 0:
            raise ConfigurationError(f"event starts before t=0: {event.describe()}")
        if event.kind in WINDOW_KINDS:
            if event.until is None:
                raise ConfigurationError(f"{event.kind} event needs 'until'")
            if event.until <= event.at:
                raise ConfigurationError(
                    f"empty fault window: {event.describe()}"
                )
        if event.kind == "compromise":
            behaviors = event.param("behaviors")
            if not behaviors:
                raise ConfigurationError("compromise event needs 'behaviors'")
            for name in behaviors:
                Behavior(name)  # raises ValueError-like on unknown
        if event.kind not in ("loss", "leak") and not event.target:
            # loss is global; leak defaults to the first executing replica.
            raise ConfigurationError(f"{event.kind} event needs a target")
        if event.kind in SHARD_KINDS and not _SHARD_TARGET.match(event.target):
            raise ConfigurationError(
                f"{event.kind} target must name a shard ('s0', 's1', ...), "
                f"got {event.target!r}"
            )


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------

_BEHAVIOR_NAMES = [b.value for b in Behavior]

# Relative likelihood of each fault kind in generated schedules. Compromise
# dominates because Byzantine behaviour exercises the most protocol surface.
_KIND_WEIGHTS = (
    ("compromise", 0.30),
    ("isolate", 0.20),
    ("degrade", 0.15),
    ("loss", 0.12),
    ("skew", 0.11),
    ("recover", 0.12),
)


@dataclass(frozen=True)
class ScheduleSpace:
    """What a generated schedule may act on, and when.

    Derived from a deployment's shape (see :func:`space_for`); kept as
    plain data so generation never needs a built deployment.
    """

    on_premises_hosts: Tuple[str, ...]
    data_center_hosts: Tuple[str, ...]
    sites: Tuple[str, ...]
    f: int
    start: float = 1.5
    horizon: float = 9.0
    max_events: int = 6

    @property
    def all_hosts(self) -> Tuple[str, ...]:
        return self.on_premises_hosts + self.data_center_hosts


def space_for(deployment, start: float = 1.5, horizon: float = 9.0,
              max_events: int = 6) -> ScheduleSpace:
    """Build a :class:`ScheduleSpace` from a live deployment's shape."""
    sites = tuple(sorted({
        deployment.site_of_host(host)
        for host in deployment.on_premises_hosts + deployment.data_center_hosts
    }))
    return ScheduleSpace(
        on_premises_hosts=tuple(deployment.on_premises_hosts),
        data_center_hosts=tuple(deployment.data_center_hosts),
        sites=sites,
        f=deployment.plan.f,
        start=start,
        horizon=horizon,
        max_events=max_events,
    )


def generate_schedule(seed: int, space: ScheduleSpace) -> FaultSchedule:
    """Compose a random-but-valid fault timeline from ``seed``.

    Constraints respected by construction (so generated schedules stay
    inside the paper's threat model and liveness remains checkable):

    - at most ``f`` replicas are compromised at any instant;
    - at most one site-level attack (isolate/degrade/skew) is active at a
      time — the residual network attack of Section III isolates *one*
      site;
    - recoveries are spaced so the one-at-a-time orchestrator never has to
      skip them;
    - every window closes by ``space.horizon``.
    """
    rng = random.Random(seed)
    events: List[FaultEvent] = []
    compromise_windows: List[Tuple[float, float]] = []
    site_windows: List[Tuple[float, float]] = []
    recover_windows: List[Tuple[float, float]] = []
    loss_windows: List[Tuple[float, float]] = []

    count = rng.randint(1, space.max_events)
    for _ in range(count):
        kind = _pick_kind(rng)
        window = _fit_window(rng, space, {
            "compromise": compromise_windows,
            "isolate": site_windows,
            "degrade": site_windows,
            "skew": site_windows,
            "recover": recover_windows,
            "loss": loss_windows,
        }[kind], max_f=space.f if kind == "compromise" else 1)
        if window is None:
            continue
        at, until = window
        if kind == "compromise":
            host = rng.choice(space.on_premises_hosts)
            behaviors = rng.sample(
                _BEHAVIOR_NAMES, k=rng.randint(1, min(2, len(_BEHAVIOR_NAMES)))
            )
            compromise_windows.append((at, until))
            events.append(make_event(at, "compromise", host, until,
                                     behaviors=sorted(behaviors)))
        elif kind == "isolate":
            site = rng.choice(space.sites)
            site_windows.append((at, until))
            events.append(make_event(at, "isolate", site, until))
        elif kind == "degrade":
            site = rng.choice(space.sites)
            site_windows.append((at, until))
            events.append(make_event(
                at, "degrade", site, until,
                bandwidth_divisor=round(rng.uniform(4.0, 20.0), 1),
                added_latency=round(rng.uniform(0.005, 0.030), 4),
                loss=round(rng.uniform(0.01, 0.05), 3),
            ))
        elif kind == "skew":
            site = rng.choice(space.sites)
            site_windows.append((at, until))
            events.append(make_event(
                at, "skew", site, until,
                skew=round(rng.uniform(0.005, 0.040), 4),
            ))
        elif kind == "loss":
            loss_windows.append((at, until))
            events.append(make_event(
                at, "loss", "", until,
                probability=round(rng.uniform(0.02, 0.15), 3),
            ))
        else:  # recover
            host = rng.choice(space.all_hosts)
            duration = round(min(until - at, rng.uniform(2.0, 4.0)), 2)
            recover_windows.append((at, at + duration))
            events.append(make_event(at, "recover", host, duration=duration))

    events.sort(key=lambda e: (e.at, e.kind, e.target))
    schedule = FaultSchedule(
        seed=seed, horizon=space.horizon, events=tuple(events)
    )
    validate_schedule(schedule)
    return schedule


def _pick_kind(rng: random.Random) -> str:
    roll = rng.random() * sum(weight for _k, weight in _KIND_WEIGHTS)
    for kind, weight in _KIND_WEIGHTS:
        roll -= weight
        if roll <= 0:
            return kind
    return _KIND_WEIGHTS[-1][0]


def _fit_window(
    rng: random.Random,
    space: ScheduleSpace,
    taken: List[Tuple[float, float]],
    max_f: int,
    attempts: int = 8,
) -> Optional[Tuple[float, float]]:
    """A [at, until] window inside [start, horizon] that overlaps fewer
    than ``max_f`` windows already in ``taken``; None if none fits."""
    for _ in range(attempts):
        duration = rng.uniform(0.5, 3.0)
        latest_start = space.horizon - duration
        if latest_start <= space.start:
            continue
        at = round(rng.uniform(space.start, latest_start), 2)
        until = round(min(at + duration, space.horizon), 2)
        overlapping = sum(1 for s, e in taken if at < e and s < until)
        if overlapping < max_f:
            return (at, until)
    return None
