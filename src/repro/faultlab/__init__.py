"""FaultLab: deterministic fault-schedule exploration for the reproduction.

Generate seeded fault timelines (:mod:`repro.faultlab.schedule`), replay
them against fresh deployments while checking safety and liveness
invariants online (:mod:`repro.faultlab.invariants`,
:mod:`repro.faultlab.runner`), and shrink any failure to a minimal
regression test (:mod:`repro.faultlab.shrinker`).

See ``docs/FAULTLAB.md`` for the schedule format, invariant catalogue,
and the seed-replay workflow.
"""

from repro.faultlab.invariants import (
    BoundedDisclosureInvariant,
    CheckpointMonotonicityInvariant,
    ConfidentialityInvariant,
    Invariant,
    InvariantChecker,
    InvariantReport,
    LivenessInvariant,
    OrderingSafetyInvariant,
    Violation,
    default_invariants,
)
from repro.faultlab.runner import (
    FaultLabConfig,
    FaultLabResult,
    plant_leak,
    run_schedule,
    schedule_for_seed,
    sweep,
)
from repro.faultlab.schedule import (
    FaultEvent,
    FaultSchedule,
    ScheduleSpace,
    generate_schedule,
    make_event,
    space_for,
    validate_schedule,
)
from repro.faultlab.shrinker import ShrinkResult, regression_test_source, shrink

__all__ = [
    "BoundedDisclosureInvariant",
    "CheckpointMonotonicityInvariant",
    "ConfidentialityInvariant",
    "FaultEvent",
    "FaultLabConfig",
    "FaultLabResult",
    "FaultSchedule",
    "Invariant",
    "InvariantChecker",
    "InvariantReport",
    "LivenessInvariant",
    "OrderingSafetyInvariant",
    "ScheduleSpace",
    "ShrinkResult",
    "Violation",
    "default_invariants",
    "generate_schedule",
    "make_event",
    "plant_leak",
    "regression_test_source",
    "run_schedule",
    "schedule_for_seed",
    "shrink",
    "space_for",
    "sweep",
    "validate_schedule",
]
