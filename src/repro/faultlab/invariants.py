"""Online safety/liveness invariant checking over simulation traces.

The checker subscribes to a deployment's :class:`~repro.sim.trace.Tracer`
*before* the run starts and evaluates each invariant as events stream in,
so a violation is pinned to the virtual time and host where it first
became observable — not discovered post-hoc from aggregate state. A final
:meth:`InvariantChecker.finish` pass adds the end-of-run obligations
(quiescence, disclosure bounds) that only make sense once the schedule's
faults have cleared.

Invariant catalogue (each maps to a claim in the paper):

- ``confidentiality`` — Definition 3: no data-center host ever observes
  plaintext (network delivery or local observation);
- ``ordering-safety`` — BFT safety: no two replicas execute conflicting
  batches at the same global sequence number;
- ``checkpoint-monotonicity`` — Section V-C discipline: a replica only
  treats a checkpoint as stable after evidence (own correct checkpoint or
  an adopted stable one), stable ordinals never regress within an
  incarnation, and garbage collection never outruns stability;
- ``bounded-disclosure`` — Section V-D: keys stolen from a compromised
  replica decrypt at most ``key_validity + key_slack`` updates submitted
  after the compromise;
- ``durable-recovery`` — StoreLab contract: recovery from a file-backed
  store never resumes below the last checkpoint that was stable before
  the crash, and a damaged store is detected (and repaired via network
  state transfer) rather than silently served;
- ``liveness`` — after all scheduled faults clear (quiescence), clients
  finish their updates, no proxy gives up, and online replicas converge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.trace import TraceEvent


@dataclass(frozen=True)
class Violation:
    """One invariant violation, pinned to when/where it was observed."""

    invariant: str
    time: float
    host: str
    detail: str

    def describe(self) -> str:
        return f"[{self.invariant}] t={self.time:.3f} {self.host}: {self.detail}"


class Invariant:
    """Base class: stream events in, collect violations."""

    name = "invariant"

    def __init__(self) -> None:
        self.violations: List[Violation] = []
        self.skipped_reason: Optional[str] = None

    def on_event(self, event: TraceEvent) -> None:  # pragma: no cover - override
        pass

    def finish(self, ctx: "CheckContext") -> None:  # pragma: no cover - override
        pass

    def violate(self, time: float, host: str, detail: str) -> None:
        self.violations.append(Violation(self.name, time, host, detail))

    def skip(self, reason: str) -> None:
        self.skipped_reason = reason


@dataclass
class CheckContext:
    """Everything finish-time checks may consult."""

    deployment: object
    adversary: Optional[object] = None
    quiesce_at: Optional[float] = None


class ConfidentialityInvariant(Invariant):
    """No data-center host may observe plaintext (Definition 3).

    Only meaningful for the confidential system: the Spire baseline has
    every replica execute plaintext by design, so there the invariant is
    skipped rather than trivially violated.
    """

    name = "confidentiality"

    def __init__(self, data_center_hosts: Set[str], enforced: bool = True):
        super().__init__()
        self.data_center_hosts = set(data_center_hosts)
        self.enforced = enforced
        if not enforced:
            self.skip("Spire baseline: data-center replicas execute plaintext by design")

    def on_event(self, event: TraceEvent) -> None:
        if not self.enforced:
            return
        if event.category == "audit.exposure" and event.host in self.data_center_hosts:
            self.violate(
                event.time,
                event.host,
                "data-center host observed plaintext "
                f"({event.detail.get('label')!r} via {event.detail.get('channel')})",
            )

    def finish(self, ctx: CheckContext) -> None:
        # Belt and braces: the auditor's aggregate view must agree with the
        # stream. Catches exposures recorded while tracing was disabled.
        auditor = getattr(ctx.deployment, "auditor", None)
        if auditor is None or not self.enforced:
            return
        seen_hosts = {v.host for v in self.violations}
        for host in sorted(auditor.exposed_hosts & self.data_center_hosts):
            if host not in seen_hosts:
                self.violate(
                    float("nan"),
                    host,
                    "auditor recorded plaintext exposure not seen in the trace",
                )


class OrderingSafetyInvariant(Invariant):
    """No conflicting executions at the same global sequence number."""

    name = "ordering-safety"

    def __init__(self) -> None:
        super().__init__()
        self._digests: Dict[int, Tuple[str, str]] = {}  # seq -> (digest, first host)

    def on_event(self, event: TraceEvent) -> None:
        if event.category != "order.batch":
            return
        seq = event.detail["batch_seq"]
        digest = event.detail["digest"]
        first = self._digests.get(seq)
        if first is None:
            self._digests[seq] = (digest, event.host)
        elif first[0] != digest:
            self.violate(
                event.time,
                event.host,
                f"batch {seq} digest {digest} conflicts with {first[0]} "
                f"first delivered at {first[1]}",
            )


class CheckpointMonotonicityInvariant(Invariant):
    """correct -> stable -> GC, ordinals never regressing per incarnation."""

    name = "checkpoint-monotonicity"

    def __init__(self) -> None:
        super().__init__()
        self._correct: Dict[str, Set[int]] = {}
        self._adopted: Dict[str, Set[int]] = {}
        self._stable_high: Dict[str, int] = {}

    def on_event(self, event: TraceEvent) -> None:
        host = event.host
        category = event.category
        if category == "replica.recovered":
            # A recovery wipes local state; the replica legitimately starts
            # over (it will re-learn checkpoints via state transfer).
            self._correct.pop(host, None)
            self._adopted.pop(host, None)
            self._stable_high.pop(host, None)
            return
        if category == "checkpoint.correct":
            self._correct.setdefault(host, set()).add(event.detail["ordinal"])
        elif category == "checkpoint.adopted":
            self._adopted.setdefault(host, set()).add(event.detail["ordinal"])
        elif category == "checkpoint.stable":
            ordinal = event.detail["ordinal"]
            evidence = self._correct.get(host, set()) | self._adopted.get(host, set())
            if ordinal not in evidence:
                self.violate(
                    event.time,
                    host,
                    f"checkpoint {ordinal} became stable without a prior "
                    "correct/adopted checkpoint at that ordinal",
                )
            high = self._stable_high.get(host)
            if high is not None and ordinal < high:
                self.violate(
                    event.time,
                    host,
                    f"stable checkpoint ordinal regressed: {ordinal} < {high}",
                )
            else:
                self._stable_high[host] = ordinal
        elif category == "checkpoint.gc":
            ordinal = event.detail["ordinal"]
            high = self._stable_high.get(host, -1)
            if ordinal > high:
                self.violate(
                    event.time,
                    host,
                    f"garbage collection at ordinal {ordinal} outran the "
                    f"stable high-water mark {high}",
                )


class DurableRecoveryInvariant(Invariant):
    """Disk recovery never regresses, and damage is detected, not served.

    Armed only by durable-store activity in the trace (``store.recovered``,
    ``store.corrupted``, ``fault.store-damage``): the default MemoryStore
    sweep produces none of those events and skips this invariant, keeping
    seed schedules and their verdicts untouched.
    """

    name = "durable-recovery"

    def __init__(self) -> None:
        super().__init__()
        self._armed = False
        self._stable_high: Dict[str, int] = {}
        # Stable high-water mark frozen at the instant a host went down:
        # the floor its later disk recovery must not regress below.
        self._down_high: Dict[str, int] = {}
        self._pending_damage: Dict[str, float] = {}    # corrupt_segment applied, not yet detected
        self._awaiting_fallback: Dict[str, float] = {} # corruption detected, no xfer.complete yet

    def on_event(self, event: TraceEvent) -> None:
        host = event.host
        category = event.category
        if category in ("checkpoint.stable", "checkpoint.adopted"):
            ordinal = event.detail["ordinal"]
            if ordinal > self._stable_high.get(host, 0):
                self._stable_high[host] = ordinal
        elif category == "replica.down":
            self._down_high[host] = self._stable_high.get(host, 0)
        elif category == "fault.store-damage":
            self._armed = True
            if event.detail.get("applied") and event.detail.get("kind") == "corrupt_segment":
                self._pending_damage[host] = event.time
        elif category == "store.corrupted":
            self._armed = True
            self._pending_damage.pop(host, None)
            self._awaiting_fallback.setdefault(host, event.time)
        elif category == "store.recovered":
            self._armed = True
            floor = self._down_high.get(host, 0)
            ordinal = event.detail["ordinal"]
            # A detected-corrupt store is allowed to come back below the
            # floor — network state transfer covers the gap; that path is
            # policed by _awaiting_fallback instead.
            if ordinal < floor and host not in self._awaiting_fallback:
                self.violate(
                    event.time,
                    host,
                    f"disk recovery resumed at checkpoint ordinal {ordinal}, "
                    f"below the pre-crash stable ordinal {floor}",
                )
        elif category == "xfer.complete":
            self._awaiting_fallback.pop(host, None)

    def finish(self, ctx: CheckContext) -> None:
        if not self._armed:
            self.skip("no durable-store activity in this run")
            return
        for host, when in sorted(self._pending_damage.items()):
            self.violate(
                when,
                host,
                "segment corruption was injected but recovery never "
                "reported store.corrupted (damage served silently?)",
            )
        for host, when in sorted(self._awaiting_fallback.items()):
            self.violate(
                when,
                host,
                "store corruption was detected but no network state "
                "transfer completed afterwards to repair it",
            )


class BoundedDisclosureInvariant(Invariant):
    """Leaked keys decrypt at most V + x post-compromise updates (Sec V-D)."""

    name = "bounded-disclosure"

    def __init__(self) -> None:
        super().__init__()
        self._leak_times: Dict[str, float] = {}  # host -> first leak-keys compromise
        self._first_exec: Dict[Tuple[str, int], float] = {}  # (alias, seq) -> time

    def on_event(self, event: TraceEvent) -> None:
        if event.category == "adversary.compromise":
            if "leak-keys" in event.detail.get("behaviors", ()):
                self._leak_times.setdefault(event.host, event.time)
        elif event.category == "replica.executed":
            key = (event.detail["client"], event.detail["seq"])
            self._first_exec.setdefault(key, event.time)

    def finish(self, ctx: CheckContext) -> None:
        env = getattr(ctx.deployment, "env", None)
        if env is None or not getattr(env, "key_renewal_enabled", False):
            self.skip("key renewal disabled; disclosure is unbounded by design")
            return
        if not self._leak_times or ctx.adversary is None:
            self.skip("no key-leaking compromise in this schedule")
            return
        bound = env.key_validity + env.key_slack
        for host, leaked_at in sorted(self._leak_times.items()):
            bag = ctx.adversary.loot.get(host)
            if bag is None:
                continue
            for alias, (_start, end_seq) in sorted(bag.client_epochs.items()):
                # Updates the stolen keys can still decrypt: submitted after
                # the compromise but within the leaked epoch's range.
                exposed = sum(
                    1
                    for (a, seq), time in self._first_exec.items()
                    if a == alias and seq <= end_seq and time > leaked_at
                )
                if exposed > bound:
                    self.violate(
                        leaked_at,
                        host,
                        f"keys leaked for {alias} decrypt {exposed} "
                        f"post-compromise updates (> bound V+x={bound})",
                    )


class LivenessInvariant(Invariant):
    """After the last fault clears, the system makes and completes progress."""

    name = "liveness"

    def __init__(self, quiesce_at: Optional[float]):
        super().__init__()
        self.quiesce_at = quiesce_at
        self._completes_after_quiesce = 0
        self._gave_up: List[TraceEvent] = []

    def on_event(self, event: TraceEvent) -> None:
        if event.category == "proxy.gave-up":
            self._gave_up.append(event)
        elif event.category == "proxy.complete":
            if self.quiesce_at is None or event.time > self.quiesce_at:
                self._completes_after_quiesce += 1

    def finish(self, ctx: CheckContext) -> None:
        if self.quiesce_at is None:
            self.skip("no quiescence point configured")
            return
        for event in self._gave_up:
            self.violate(
                event.time,
                event.host,
                f"proxy exhausted retransmissions for seq {event.detail.get('seq')}",
            )
        deployment = ctx.deployment
        now = deployment.kernel.now
        for client_id in sorted(deployment.proxies):
            proxy = deployment.proxies[client_id]
            if proxy.outstanding:
                self.violate(
                    now,
                    proxy.host,
                    f"{proxy.outstanding} update(s) still outstanding at "
                    "end of run despite quiescence",
                )
        if self._completes_after_quiesce == 0:
            self.violate(
                now,
                "system",
                f"no update completed after quiescence at t={self.quiesce_at:.2f}",
            )
        ordinals = {
            host: replica.executed_ordinal()
            for host, replica in sorted(deployment.replicas.items())
            if replica.online
        }
        if ordinals and max(ordinals.values()) - min(ordinals.values()) > 0:
            lag = {h: o for h, o in ordinals.items() if o != max(ordinals.values())}
            self.violate(
                now,
                "system",
                f"online replicas did not converge: behind={lag}, "
                f"head={max(ordinals.values())}",
            )


@dataclass
class InvariantReport:
    """Outcome of a checked run."""

    violations: Tuple[Violation, ...] = ()
    skipped: Dict[str, str] = field(default_factory=dict)
    checked: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def failing_invariants(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for violation in self.violations:
            if violation.invariant not in seen:
                seen.append(violation.invariant)
        return tuple(seen)

    def summary(self) -> str:
        if self.ok:
            checked = ", ".join(n for n in self.checked if n not in self.skipped)
            lines = [f"all invariants hold ({checked})"]
        else:
            lines = [f"{len(self.violations)} violation(s):"]
            lines.extend("  " + v.describe() for v in self.violations)
        for name, reason in sorted(self.skipped.items()):
            lines.append(f"  (skipped {name}: {reason})")
        return "\n".join(lines)


def default_invariants(deployment, quiesce_at: Optional[float]) -> List[Invariant]:
    mode = getattr(getattr(deployment, "config", None), "mode", None)
    confidential = getattr(mode, "value", mode) != "spire"
    return [
        ConfidentialityInvariant(
            set(deployment.data_center_hosts), enforced=confidential
        ),
        OrderingSafetyInvariant(),
        CheckpointMonotonicityInvariant(),
        DurableRecoveryInvariant(),
        BoundedDisclosureInvariant(),
        LivenessInvariant(quiesce_at),
    ]


class InvariantChecker:
    """Attaches invariants to a deployment's tracer and scores the run.

    Usage::

        checker = InvariantChecker(deployment, adversary, quiesce_at=8.0)
        checker.attach()          # before deployment.run(...)
        deployment.run(until=17.0)
        report = checker.finish()
        assert report.ok, report.summary()
    """

    def __init__(
        self,
        deployment,
        adversary=None,
        quiesce_at: Optional[float] = None,
        invariants: Optional[List[Invariant]] = None,
    ):
        self.deployment = deployment
        self.adversary = adversary
        self.quiesce_at = quiesce_at
        self.invariants = (
            invariants
            if invariants is not None
            else default_invariants(deployment, quiesce_at)
        )
        self._attached = False

    def attach(self) -> "InvariantChecker":
        if self._attached:
            return self
        if not self.deployment.tracer.enabled:
            raise RuntimeError(
                "invariant checking needs tracing enabled (SystemConfig.tracing)"
            )
        self.deployment.tracer.subscribe(self._on_event)
        self._attached = True
        return self

    def detach(self) -> None:
        """Stop observing the tracer (idempotent)."""
        if self._attached:
            self.deployment.tracer.unsubscribe(self._on_event)
            self._attached = False

    def _on_event(self, event: TraceEvent) -> None:
        for invariant in self.invariants:
            invariant.on_event(event)

    def finish(self) -> InvariantReport:
        # Scoring ends the observation: anything traced after finish() —
        # post-mortem replays, a reused kernel — must not mutate verdicts.
        self.detach()
        ctx = CheckContext(
            deployment=self.deployment,
            adversary=self.adversary,
            quiesce_at=self.quiesce_at,
        )
        for invariant in self.invariants:
            invariant.finish(ctx)
        violations: List[Violation] = []
        skipped: Dict[str, str] = {}
        for invariant in self.invariants:
            violations.extend(invariant.violations)
            if invariant.skipped_reason is not None:
                skipped[invariant.name] = invariant.skipped_reason
        violations.sort(key=lambda v: (v.time if v.time == v.time else 1e18, v.invariant))
        return InvariantReport(
            violations=tuple(violations),
            skipped=skipped,
            checked=tuple(i.name for i in self.invariants),
        )
