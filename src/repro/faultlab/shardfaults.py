"""FaultLab for sharded deployments: shard-scoped faults and verdicts.

ShardLab (``repro.shard``) builds S replica groups inside one virtual
world: a shared kernel and tracer, per-shard networks and Prime
instances. This module turns FaultLab loose on that topology:

- **shard-scoped fault kinds** (explicit-only, see
  :data:`~repro.faultlab.schedule.SHARD_KINDS`): ``shard_kill_proposers``
  crash-recovers a shard's lead proposers back-to-back;
  ``shard_partition`` isolates one of a shard's on-premises sites for a
  window — cross-shard commits into the shard stall mid-flight and must
  drain after the reconnect;
- **per-shard invariant checking**: one
  :class:`~repro.faultlab.invariants.InvariantChecker` per shard, fed
  only that shard's trace events (hostnames carry the ``sN.`` namespace,
  so one shared tracer still yields per-shard verdicts);
- **cross-shard consistency**: after quiescence, every intent the
  coordinator accepted must have committed, and every cross-written key
  must hold the *same* last-writer-wins version tag (and value) on every
  shard that holds it — the sharded analogue of the single-group
  convergence check.

:func:`run_shard_schedule` is deterministic the same way
:func:`~repro.faultlab.runner.run_schedule` is: one schedule against one
config always yields the same verdict, which is what makes the 20-seed
shard sweep in CI meaningful.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faultlab.invariants import (
    InvariantChecker,
    InvariantReport,
    Violation,
)
from repro.faultlab.schedule import (
    SHARD_KINDS,
    FaultEvent,
    FaultSchedule,
    make_event,
    validate_schedule,
)
from repro.shard.builder import ShardedDeployment, build_sharded
from repro.system.adversary import Adversary
from repro.system.config import Mode, SystemConfig


@dataclass(frozen=True)
class ShardFaultLabConfig:
    """Sizing for sharded FaultLab runs.

    Small enough to sweep 20 seeds in CI, big enough that every shard
    keeps a few clients and the cross-shard path stays busy through the
    fault windows (``cross_shard_every``)."""

    mode: Mode = Mode.CONFIDENTIAL
    shards: int = 2
    f: int = 1
    data_centers: int = 2
    #: 8 clients keeps the rendezvous map non-degenerate (every shard gets
    #: at least one client) across the whole CI seed range 1..20.
    num_clients: int = 8
    update_interval: float = 0.35
    checkpoint_interval: int = 25

    #: Every Nth update per client is a cross-shard write (see
    #: :meth:`repro.shard.builder.ShardedDeployment.start_workload`).
    cross_shard_every: int = 4

    #: Faults start after warm-up and close by the horizon; the quiet
    #: stretch after it lets recoveries, view changes, and stalled
    #: cross-shard commits drain before scoring.
    fault_start: float = 1.5
    horizon: float = 9.0
    quiescence: float = 8.0
    max_events: int = 3

    def system_config(self, seed: int) -> SystemConfig:
        return SystemConfig(
            mode=self.mode,
            f=self.f,
            data_centers=self.data_centers,
            seed=seed,
            num_clients=self.num_clients,
            update_interval=self.update_interval,
            checkpoint_interval=self.checkpoint_interval,
            shards=self.shards,
            tracing=True,
        )


class ShardInvariantChecker(InvariantChecker):
    """An invariant checker that sees only one shard's trace events.

    Sharded deployments share a single tracer; hostnames disambiguate
    (``s0.cc-a-r0``, ``s0.proxy-client-02``). Filtering on the namespace
    keeps e.g. ordering-safety from comparing two shards' independent
    batch sequence numbers against each other."""

    def __init__(self, deployment, adversary=None, quiesce_at=None,
                 namespace: str = ""):
        super().__init__(deployment, adversary, quiesce_at=quiesce_at)
        self.namespace = namespace

    def _on_event(self, event) -> None:
        if self.namespace and not event.host.startswith(self.namespace):
            return
        super()._on_event(event)


@dataclass
class ShardFaultResult:
    """One shard schedule's verdict: per-shard reports plus the
    cross-shard obligations no single group can check."""

    schedule: FaultSchedule
    reports: Dict[int, InvariantReport]
    cross_violations: Tuple[Violation, ...]
    cross_committed: int
    cross_rejected: int
    end_time: float
    deployment: Optional[ShardedDeployment] = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return not self.cross_violations and all(
            report.ok for report in self.reports.values()
        )

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        per_shard = " ".join(
            f"s{shard}:{'ok' if report.ok else len(report.violations)}"
            for shard, report in sorted(self.reports.items())
        )
        line = (
            f"{status} seed={self.schedule.seed} events={len(self.schedule)} "
            f"xs={self.cross_committed}/{self.cross_committed + self.cross_rejected} "
            f"[{per_shard}]"
        )
        if self.cross_violations:
            line += "".join(
                "\n  " + violation.describe() for violation in self.cross_violations
            )
        for shard, report in sorted(self.reports.items()):
            if not report.ok:
                line += "".join(
                    f"\n  s{shard} " + v.describe() for v in report.violations
                )
        return line


# ---------------------------------------------------------------------------
# Seeded generation
# ---------------------------------------------------------------------------

def generate_shard_schedule(
    seed: int, lab: Optional[ShardFaultLabConfig] = None
) -> FaultSchedule:
    """A seeded timeline of shard-scoped faults.

    Constraints by construction: at most one fault window is open per
    shard at a time (so a partitioned shard is never also mid-recovery),
    and every window closes by the horizon. The RNG is salted with a
    string so shard schedules never alias the classic per-seed pool."""
    lab = lab or ShardFaultLabConfig()
    rng = random.Random(f"shardfaults-{seed}")
    events: List[FaultEvent] = []
    open_windows: Dict[int, List[Tuple[float, float]]] = {
        shard: [] for shard in range(lab.shards)
    }

    count = rng.randint(1, lab.max_events)
    for _ in range(count):
        kind = rng.choice(SHARD_KINDS)
        shard = rng.randrange(lab.shards)
        window = _fit_shard_window(rng, lab, open_windows[shard])
        if window is None:
            continue
        at, until = window
        open_windows[shard].append(window)
        if kind == "shard_partition":
            events.append(
                make_event(
                    at, "shard_partition", f"s{shard}", until,
                    site_index=rng.randrange(2),
                )
            )
        else:  # shard_kill_proposers
            kills = rng.choice((1, 2))
            stagger = 0.6
            duration = round(
                max(0.8, (until - at - stagger * (kills - 1)) / kills), 2
            )
            events.append(
                make_event(
                    at, "shard_kill_proposers", f"s{shard}",
                    count=kills, duration=duration, stagger=stagger,
                )
            )

    events.sort(key=lambda e: (e.at, e.kind, e.target))
    schedule = FaultSchedule(seed=seed, horizon=lab.horizon, events=tuple(events))
    validate_schedule(schedule)
    return schedule


def _fit_shard_window(
    rng: random.Random,
    lab: ShardFaultLabConfig,
    taken: List[Tuple[float, float]],
    attempts: int = 8,
) -> Optional[Tuple[float, float]]:
    for _ in range(attempts):
        duration = rng.uniform(1.2, 3.0)
        latest_start = lab.horizon - duration
        if latest_start <= lab.fault_start:
            continue
        at = round(rng.uniform(lab.fault_start, latest_start), 2)
        until = round(min(at + duration, lab.horizon), 2)
        if not any(at < e and s < until for s, e in taken):
            return (at, until)
    return None


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------

def _shard_index(event: FaultEvent, num_shards: int) -> int:
    index = int(event.target[1:])
    if index >= num_shards:
        raise ConfigurationError(
            f"{event.describe()} targets shard {index} but the deployment "
            f"has only {num_shards}"
        )
    return index


def install_shard_events(
    schedule: FaultSchedule, sharded: ShardedDeployment
) -> None:
    """Install shard-scoped fault windows as kernel callbacks."""
    kernel = sharded.kernel
    for event in schedule.events:
        if event.kind not in SHARD_KINDS:
            raise ConfigurationError(
                f"non-shard fault kind {event.kind!r} in a shard schedule; "
                "use repro.faultlab.runner for host/site-scoped kinds"
            )
        shard = sharded.shards[_shard_index(event, sharded.num_shards)]
        if event.kind == "shard_partition":
            sites = sorted({
                shard.site_of_host(host) for host in shard.on_premises_hosts
            })
            site = sites[int(event.param("site_index", 0)) % len(sites)]
            kernel.call_at(event.at, shard.attacks.isolate_site, site)
            kernel.call_at(event.until, shard.attacks.reconnect_site, site)
        else:  # shard_kill_proposers
            # The shard's proposers, lead first: Prime's view-0 leader is
            # the first on-premises host, so staggered kills always hit
            # the replica currently driving the shard's order.
            count = max(1, int(event.param("count", 1)))
            duration = float(event.param("duration", 3.0))
            stagger = float(event.param("stagger", 0.6))
            targets = list(shard.on_premises_hosts)[:count]
            for index, host in enumerate(targets):
                shard.recovery.schedule_recovery(
                    host, event.at + index * stagger, duration
                )


# ---------------------------------------------------------------------------
# Cross-shard consistency
# ---------------------------------------------------------------------------

def check_cross_shard_consistency(
    sharded: ShardedDeployment, now: float
) -> List[Violation]:
    """The obligations only the whole topology can check.

    1. the coordinator holds no in-flight intent (everything accepted
       before quiescence committed or was rejected);
    2. no commit was rejected by a participant (a rejection under a
       crash/partition schedule means a certificate failed to verify);
    3. every cross-written key carries the same version tag — and the
       same value — on every online shard that holds it (last-writer-wins
       convergence across the topology).
    """
    violations: List[Violation] = []
    coordinator = sharded.coordinator
    if coordinator is not None:
        for (cid, seq) in sorted(coordinator._pending):
            violations.append(Violation(
                "cross-shard-liveness", now, f"router-{cid}",
                f"intent ({cid}, seq {seq}) still in flight at end of run",
            ))
        for (cid, seq, shard, reason) in coordinator.rejected:
            violations.append(Violation(
                "cross-shard-certification", now, f"s{shard}",
                f"participant rejected commit ({cid}, seq {seq}): "
                f"{reason.decode('utf-8', 'replace')}",
            ))

    # key -> shard -> (tag, value), read from each shard's freshest online
    # executing replica (per-shard convergence is the liveness checker's
    # job; here one witness per shard suffices).
    tables: Dict[str, Dict[int, Tuple[tuple, Optional[str]]]] = {}
    for shard_id, shard in enumerate(sharded.shards):
        apps = [
            replica.app
            for replica in shard.executing_replicas()
            if replica.online
        ]
        if not apps:
            continue
        app = max(apps, key=lambda a: a.inner.executed_count)
        reader = getattr(app.inner, "get", None)
        for key, tag in app.versions.items():
            value = reader(key) if reader is not None else None
            tables.setdefault(key, {})[shard_id] = (tuple(tag), value)

    for key, holders in sorted(tables.items()):
        tags = {tag for tag, _value in holders.values()}
        if len(tags) > 1:
            violations.append(Violation(
                "cross-shard-consistency", now, "topology",
                f"key {key!r} diverged: "
                + ", ".join(
                    f"s{shard}={tag}" for shard, (tag, _v) in sorted(holders.items())
                ),
            ))
            continue
        values = {value for _tag, value in holders.values()}
        if len(values) > 1:
            violations.append(Violation(
                "cross-shard-consistency", now, "topology",
                f"key {key!r} agrees on tags but not values: "
                + ", ".join(
                    f"s{shard}={value!r}"
                    for shard, (_t, value) in sorted(holders.items())
                ),
            ))
    return violations


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

def run_shard_schedule(
    schedule: FaultSchedule,
    lab: Optional[ShardFaultLabConfig] = None,
    keep_deployment: bool = False,
) -> ShardFaultResult:
    """Replay a shard schedule against a fresh sharded deployment."""
    lab = lab or ShardFaultLabConfig()
    validate_schedule(schedule)

    sharded = build_sharded(lab.system_config(schedule.seed))
    quiesce_at = max(schedule.clear_time, lab.horizon)
    checkers: Dict[int, ShardInvariantChecker] = {}
    for shard_id, shard in enumerate(sharded.shards):
        checkers[shard_id] = ShardInvariantChecker(
            shard,
            Adversary(shard),
            quiesce_at=quiesce_at,
            namespace=f"s{shard_id}." if sharded.num_shards > 1 else "",
        ).attach()

    install_shard_events(schedule, sharded)

    try:
        sharded.start()
        end_time = quiesce_at + lab.quiescence
        sharded.start_workload(
            duration=quiesce_at + lab.quiescence * 0.4,
            cross_shard_every=lab.cross_shard_every,
        )
        sharded.run(until=end_time)

        reports = {
            shard_id: checker.finish()
            for shard_id, checker in sorted(checkers.items())
        }
        cross = check_cross_shard_consistency(sharded, end_time)
        coordinator = sharded.coordinator
        return ShardFaultResult(
            schedule=schedule,
            reports=reports,
            cross_violations=tuple(cross),
            cross_committed=len(coordinator.completed) if coordinator else 0,
            cross_rejected=len(coordinator.rejected) if coordinator else 0,
            end_time=end_time,
            deployment=sharded if keep_deployment else None,
        )
    finally:
        sharded.shutdown()


def shard_sweep(
    seeds: Iterable[int],
    lab: Optional[ShardFaultLabConfig] = None,
    on_result=None,
) -> List[ShardFaultResult]:
    """One generated shard schedule per seed (the CI 20-seed sweep)."""
    lab = lab or ShardFaultLabConfig()
    results = []
    for seed in seeds:
        result = run_shard_schedule(generate_shard_schedule(seed, lab), lab)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results
