"""Execute fault schedules against freshly built deployments.

:func:`run_schedule` is FaultLab's core loop: build a deployment from the
schedule's seed, attach the invariant checker, install every fault window
as kernel callbacks, run a client workload through the turbulence, let the
system quiesce, and score the run. Because the simulation is fully
deterministic, the same :class:`~repro.faultlab.schedule.FaultSchedule`
against the same :class:`FaultLabConfig` always yields the same
:class:`FaultLabResult` — which is what makes sweeping, replaying, and
shrinking meaningful.
"""

from __future__ import annotations

import dataclasses
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.faultlab.invariants import InvariantChecker, InvariantReport
from repro.faultlab.schedule import (
    STORE_KINDS,
    FaultSchedule,
    ScheduleSpace,
    generate_schedule,
    space_for,
    validate_schedule,
)
from repro.system.adversary import Adversary, Behavior
from repro.system.builder import build
from repro.system.config import Mode, SystemConfig


@dataclass(frozen=True)
class FaultLabConfig:
    """Sizing for FaultLab runs: small enough to sweep, big enough to
    exercise checkpoints, recovery, and state transfer."""

    mode: Mode = Mode.CONFIDENTIAL
    f: int = 1
    data_centers: int = 2
    num_clients: int = 3
    update_interval: float = 0.35
    checkpoint_interval: int = 25
    key_renewal_enabled: bool = False

    #: Faults start after the system has warmed up...
    fault_start: float = 1.5
    #: ...and every fault window closes by this virtual time.
    horizon: float = 9.0
    #: Extra quiet time after the horizon for recovery/catch-up/liveness.
    quiescence: float = 8.0
    #: Largest number of events a generated schedule may carry.
    max_events: int = 6

    #: Give every replica a FileStore (in a run-scoped temp directory) even
    #: when the schedule carries no storage faults. Off by default: the
    #: sweep's MemoryStore runs are the trace-identity baseline.
    durable_store: bool = False
    #: fsync policy for FaultLab file stores. The sim's crash model never
    #: loses the page cache, so ``never`` keeps sweeps fast.
    store_fsync: str = "never"

    #: BatchLab: introduction batch size. 1 sweeps the singleton path
    #: (the trace-identity baseline); > 1 sweeps the batched intro and
    #: response pipelines under the same fault schedules.
    intro_batch_size: int = 1

    #: WatchLab: attach the online anomaly-detector suite to the run and
    #: score every injected fault against the health events it raises
    #: (fault→detection latency lands in ``faultlab.detection_latency``).
    #: Off by default: the bare sweep is the trace-identity baseline.
    detectors: bool = False

    #: CompactLab: delta-checkpoint chain length and background-compaction
    #: tick. Both off by default (the trace-identity baseline); the
    #: dedicated compaction/delta crash kinds turn them on explicitly so
    #: there are artifacts to damage.
    checkpoint_delta_interval: int = 0
    store_compaction_interval: float = 0.0

    def system_config(self, seed: int) -> SystemConfig:
        return SystemConfig(
            mode=self.mode,
            f=self.f,
            data_centers=self.data_centers,
            seed=seed,
            num_clients=self.num_clients,
            update_interval=self.update_interval,
            checkpoint_interval=self.checkpoint_interval,
            key_renewal_enabled=self.key_renewal_enabled,
            intro_batch_size=self.intro_batch_size,
            checkpoint_delta_interval=self.checkpoint_delta_interval,
            store_compaction_interval=self.store_compaction_interval,
            tracing=True,
        )


@dataclass
class MetricWindow:
    """Counter deltas over one fault event's window.

    ``deltas`` maps ``name{label=value}`` to the counter's increase between
    the snapshot at the window's open and the one at its close (zero-delta
    counters are dropped). Lets a sweep answer "what did the leader-site
    isolation *cost*" — retransmits, view changes, drops — per window.
    """

    label: str
    start: float
    end: float
    deltas: Dict[str, float] = field(default_factory=dict)

    def describe(self, top: int = 6) -> str:
        ranked = sorted(self.deltas.items(), key=lambda kv: -abs(kv[1]))[:top]
        body = ", ".join(f"{name}+{delta:g}" for name, delta in ranked)
        return f"[{self.start:.2f}..{self.end:.2f}] {self.label}: {body or 'no change'}"


@dataclass
class FaultLabResult:
    """One schedule's verdict."""

    schedule: FaultSchedule
    report: InvariantReport
    end_time: float
    trace_events: int
    deployment: object = field(default=None, repr=False)
    adversary: object = field(default=None, repr=False)
    metric_windows: Tuple[MetricWindow, ...] = ()
    #: WatchLab (lab.detectors): the health events the online detector
    #: suite raised during the run, and each injected fault scored
    #: against them (with fault→detection latency).
    health_events: Tuple = ()
    detections: Tuple = ()

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def detected_faults(self) -> int:
        return sum(1 for match in self.detections if match.detected)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        line = (
            f"{status} seed={self.schedule.seed} events={len(self.schedule)} "
            f"t_end={self.end_time:.1f} :: {self.report.summary().splitlines()[0]}"
        )
        if self.detections:
            line += f" :: detected {self.detected_faults}/{len(self.detections)} faults"
        return line


def schedule_for_seed(seed: int, lab: Optional[FaultLabConfig] = None) -> FaultSchedule:
    """Generate the schedule a sweep would run for ``seed``."""
    lab = lab or FaultLabConfig()
    deployment = build(lab.system_config(seed))
    space = space_for(
        deployment,
        start=lab.fault_start,
        horizon=lab.horizon,
        max_events=lab.max_events,
    )
    return generate_schedule(seed, space)


def run_schedule(
    schedule: FaultSchedule,
    lab: Optional[FaultLabConfig] = None,
    keep_deployment: bool = False,
    detector_config=None,
) -> FaultLabResult:
    """Replay ``schedule`` against a fresh deployment and check invariants.

    With ``lab.detectors`` (or an explicit ``detector_config``, a
    :class:`~repro.obs.watch.detectors.DetectorConfig`), the online
    anomaly-detector suite rides along on the deployment's tracer and the
    result carries its health events plus a per-fault detection verdict.
    The suite only *reads* the tracer, so detector runs replay the exact
    same traces as bare ones.
    """
    lab = lab or FaultLabConfig()
    validate_schedule(schedule)

    config = lab.system_config(schedule.seed)
    # Storage faults need real files to damage; an explicit durable_store
    # opt-in gets them too. Everything else keeps the MemoryStore, whose
    # traces are the byte-identity baseline for existing seeds.
    needs_store = lab.durable_store or any(
        event.kind in STORE_KINDS for event in schedule.events
    )
    tempdir: Optional[str] = None
    if needs_store and config.store_dir is None:
        tempdir = tempfile.mkdtemp(prefix="faultlab-store-")
        config = dataclasses.replace(
            config, store_dir=tempdir, store_fsync=lab.store_fsync
        )

    deployment = build(config)
    adversary = Adversary(deployment)
    quiesce_at = max(schedule.clear_time, lab.horizon)
    checker = InvariantChecker(deployment, adversary, quiesce_at=quiesce_at).attach()

    # Snapshot timers go in before the fault callbacks so that, at the
    # same virtual instant, the registry is read *before* the fault flips —
    # the kernel drains same-time events in insertion order.
    windows = _install_metric_windows(schedule, deployment)
    _install_events(schedule, deployment, adversary)

    suite = None
    if lab.detectors or detector_config is not None:
        from repro.obs.watch.detectors import DetectorSuite

        suite = DetectorSuite(
            now_fn=lambda: deployment.kernel.now, config=detector_config
        ).attach(deployment.tracer)
        suite.watch_hosts(deployment.replicas.keys())
        suite.restrict_exposure(deployment.data_center_hosts)

    try:
        deployment.start()
        end_time = quiesce_at + lab.quiescence
        # Clients keep submitting through the faults and for a short stretch
        # past quiescence, so the liveness invariant has fresh updates to watch
        # complete; the remaining quiet time lets retransmissions drain.
        deployment.start_workload(duration=quiesce_at + lab.quiescence * 0.4)
        deployment.run(until=end_time)

        report = checker.finish()
        health_events: Tuple = ()
        detections: Tuple = ()
        if suite is not None:
            from repro.obs.watch.detectors import match_detections

            suite.poll(end_time)
            health_events = tuple(suite.drain())
            detections = tuple(
                match_detections(schedule.events, health_events)
            )
            latency_hist = deployment.metrics.histogram("faultlab.detection_latency")
            for match in detections:
                if match.latency is not None:
                    latency_hist.observe(match.latency)
            suite.detach()
        return FaultLabResult(
            schedule=schedule,
            report=report,
            end_time=end_time,
            trace_events=len(deployment.tracer.events),
            deployment=deployment if keep_deployment else None,
            adversary=adversary if keep_deployment else None,
            metric_windows=tuple(_finalize_metric_windows(windows, deployment)),
            health_events=health_events,
            detections=detections,
        )
    finally:
        if needs_store:
            for replica in deployment.replicas.values():
                replica.store.close()
        if tempdir is not None and not keep_deployment:
            shutil.rmtree(tempdir, ignore_errors=True)


def sweep(
    seeds: Iterable[int],
    lab: Optional[FaultLabConfig] = None,
    on_result=None,
) -> List[FaultLabResult]:
    """Run one generated schedule per seed; ``on_result`` (if given) is
    called after each run, e.g. for progress printing."""
    lab = lab or FaultLabConfig()
    results = []
    for seed in seeds:
        result = run_schedule(schedule_for_seed(seed, lab), lab)
        results.append(result)
        if on_result is not None:
            on_result(result)
    return results


def plant_leak(schedule: FaultSchedule, at: Optional[float] = None,
               host: Optional[str] = None) -> FaultSchedule:
    """Add a deliberate confidentiality breach to ``schedule``.

    Used to validate the checker end-to-end: the resulting schedule MUST
    fail the confidentiality invariant, and shrinking it MUST retain the
    ``leak`` event.
    """
    from repro.faultlab.schedule import make_event

    leak_at = at if at is not None else min(schedule.horizon - 1.0, 4.0)
    event = make_event(leak_at, "leak", host or "")
    return schedule.with_event(event)


# ---------------------------------------------------------------------------
# Metric windows
# ---------------------------------------------------------------------------

def _metric_key_label(key) -> str:
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _window_bounds(event) -> Tuple[float, float]:
    if event.until is not None:
        return event.at, event.until
    if event.kind == "recover" or event.kind in STORE_KINDS:
        return event.at, event.at + float(event.param("duration", 3.0))
    # Instant faults (e.g. leak): watch one second of aftermath.
    return event.at, event.at + 1.0


def _install_metric_windows(schedule: FaultSchedule, deployment) -> List[dict]:
    """Schedule counter snapshots at each fault window's open and close."""
    if not deployment.metrics.enabled:
        return []
    windows: List[dict] = []
    for event in schedule.events:
        start, end = _window_bounds(event)
        record = {
            "label": f"{event.kind} {event.target}".strip(),
            "start": start,
            "end": end,
            "before": None,
            "after": None,
        }

        def snap(record, slot):
            record[slot] = deployment.metrics.counter_values()

        deployment.kernel.call_at(start, snap, record, "before")
        deployment.kernel.call_at(end, snap, record, "after")
        windows.append(record)
    return windows


def _finalize_metric_windows(windows: List[dict], deployment) -> List[MetricWindow]:
    results: List[MetricWindow] = []
    for record in windows:
        before = record["before"]
        if before is None:
            continue  # window opened after the run ended
        # A close past the end of the run reads the final values instead.
        after = record["after"] or deployment.metrics.counter_values()
        # Iterate the *after* snapshot: counters born inside the window
        # (a first view change, a new drop reason) have no "before" entry
        # and count from zero.
        deltas = {
            _metric_key_label(key): value - before.get(key, 0.0)
            for key, value in sorted(after.items())
            if value != before.get(key, 0.0)
        }
        results.append(
            MetricWindow(
                label=record["label"],
                start=record["start"],
                end=record["end"],
                deltas=deltas,
            )
        )
    return results


# ---------------------------------------------------------------------------
# Event installation
# ---------------------------------------------------------------------------

def _install_events(schedule: FaultSchedule, deployment, adversary: Adversary) -> None:
    kernel = deployment.kernel
    for event in schedule.events:
        if event.kind == "compromise":
            behaviors = tuple(Behavior(b) for b in event.param("behaviors"))
            kernel.call_at(
                event.at, adversary.compromise, event.target, *behaviors
            )
            kernel.call_at(event.until, adversary.release, event.target)
        elif event.kind == "isolate":
            kernel.call_at(event.at, deployment.attacks.isolate_site, event.target)
            kernel.call_at(event.until, deployment.attacks.reconnect_site, event.target)
        elif event.kind == "degrade":
            kernel.call_at(
                event.at,
                deployment.attacks.degrade_site,
                event.target,
                event.param("bandwidth_divisor", 10.0),
                event.param("added_latency", 0.020),
                event.param("loss", 0.02),
            )
            kernel.call_at(event.until, deployment.attacks.restore_site, event.target)
        elif event.kind == "loss":
            probability = event.param("probability", 0.05)
            base = deployment.config.wan_loss_probability
            kernel.call_at(event.at, deployment.network.set_wan_loss, probability)
            kernel.call_at(event.until, deployment.network.set_wan_loss, base)
        elif event.kind == "skew":
            kernel.call_at(
                event.at,
                deployment.network.set_delivery_skew,
                event.target,
                event.param("skew", 0.02),
            )
            kernel.call_at(
                event.until, deployment.network.clear_delivery_skew, event.target
            )
        elif event.kind == "recover":
            deployment.recovery.schedule_recovery(
                event.target, event.at, event.param("duration", 3.0)
            )
        elif event.kind in STORE_KINDS:
            # Crash the replica, then damage its durable store while it is
            # down; the recovery's respawn must detect the damage and fall
            # back to network transfer for whatever was lost. Damage is
            # registered AFTER schedule_recovery so the same-instant kernel
            # drain runs go_down first (insertion order).
            deployment.recovery.schedule_recovery(
                event.target, event.at, float(event.param("duration", 3.0))
            )
            kernel.call_at(event.at, _damage_store, deployment, event)
        elif event.kind == "leak":
            host = event.target or deployment.on_premises_hosts[0]
            kernel.call_at(event.at, adversary.exfiltrate_plaintext, host)
        else:  # pragma: no cover - validate_schedule rejects unknown kinds
            raise ConfigurationError(f"unknown fault kind {event.kind!r}")


def _damage_store(deployment, event) -> None:
    """Apply a storage fault to the target replica's on-disk store.

    No-ops (with ``applied=False`` in the trace) against a MemoryStore —
    volatile stores have no files to damage."""
    replica = deployment.replicas[event.target]
    store = replica.store
    applied = False
    if event.kind == "torn_write":
        damage = getattr(store, "damage_torn_write", None)
        if damage is not None:
            applied = damage(int(event.param("bytes", 64))) is not None
    elif event.kind == "crash_during_compaction":
        damage = getattr(store, "damage_crash_during_compaction", None)
        if damage is not None:
            applied = damage(int(event.param("stage", 2))) is not None
    elif event.kind == "crash_mid_delta":
        damage = getattr(store, "damage_crash_mid_delta", None)
        if damage is not None:
            applied = damage() is not None
    else:  # corrupt_segment
        damage = getattr(store, "damage_corrupt_segment", None)
        if damage is not None:
            offset = event.param("offset")
            applied = damage(int(offset) if offset is not None else None) is not None
    replica.trace("fault.store-damage", kind=event.kind, applied=applied)
