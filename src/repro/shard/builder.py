"""Build a sharded deployment: S replica groups behind a routing tier.

:func:`build_sharded` turns the single-group :func:`repro.system.builder.build`
into a topology of groups:

* **shared world** — one kernel, one tracer, one metrics registry, one
  span tracker across all groups, so traces, spans, and bundles merge
  for free;
* **per-group world** — each shard gets its own RNG registry (seeded by
  ``shard_seed``), topology, network, Prime instance, threshold groups,
  stores, and key-renewal schedule, built by the ordinary ``build()``
  under a :class:`~repro.system.builder.GroupContext` with an ``sN.``
  hostname namespace;
* **global identities** — client signing keys are drawn once from the
  deployment seed and shared with every group, so any group can verify
  any client (cross-shard commits are signed by foreign clients);
* **routing tier** — one :class:`~repro.shard.router.ShardRouter` per
  client, mapping alias → home shard via the :class:`ShardMap` every
  router reconstructs from the same :class:`ShardMapAnnounce`;
* **cross-shard path** — one :class:`CrossShardCoordinator` handling the
  two-phase certify-then-inject flow for multi-shard updates.

With ``config.shards == 1`` the classic builder runs unmodified and the
routers are inert pass-throughs: traces are byte-identical to unsharded
builds (enforced by tests/test_shard_identity.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.core.app import Application, KeyValueApplication
from repro.crypto.rsa import generate_keypair
from repro.errors import ConfigurationError
from repro.obs import NULL_METRICS, MetricsRegistry, SpanTracker
from repro.rt.bootstrap import validate_client_ids
from repro.shard.app import ShardAwareApplication, ShardCrossContext
from repro.shard.coordinator import CrossShardCoordinator
from repro.shard.messages import ShardMapAnnounce
from repro.shard.router import ShardRouter
from repro.shard.shardmap import ShardMap, shard_seed
from repro.sim.kernel import Kernel
from repro.sim.process import Process, Timeout, spawn
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer
from repro.system.builder import BodyFn, Deployment, GroupContext, build
from repro.system.config import SystemConfig


def _default_body(client_id: str, seq: int) -> bytes:
    return f"SET {client_id}-key-{seq % 17} value-{seq}".encode("utf-8")


@dataclass
class ShardedDeployment:
    """S independent replica groups, one routing tier, one virtual world."""

    config: SystemConfig
    kernel: Kernel
    rng: RngRegistry
    tracer: Tracer
    metrics: MetricsRegistry
    spans: Optional[SpanTracker]
    announce: ShardMapAnnounce
    shard_map: ShardMap
    shards: List[Deployment]
    routers: Dict[str, ShardRouter]
    coordinator: Optional[CrossShardCoordinator]
    client_ids: List[str] = field(default_factory=list)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def shutdown(self) -> None:
        for shard in self.shards:
            shard.shutdown()

    def run(self, until: float) -> float:
        return self.kernel.run(until=until)

    # -- views ---------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of_client(self, client_id: str) -> int:
        return self.routers[client_id].shard_id

    def proxies(self) -> Dict[str, object]:
        """Every client's home-shard proxy, across all shards."""
        return {cid: router.proxy for cid, router in self.routers.items()}

    def completed_count(self) -> int:
        """Total completed client updates across every home proxy."""
        return sum(
            len(proxy.completed) for proxy in self.proxies().values()
        )

    def latencies(self) -> List[float]:
        """Every completed update's latency, across all shards."""
        return [
            latency
            for proxy in self.proxies().values()
            for _, (latency, _) in sorted(proxy.completed.items())
        ]

    # -- workload ------------------------------------------------------------

    def start_workload(
        self,
        body_fn: Optional[BodyFn] = None,
        duration: Optional[float] = None,
        interval: Optional[float] = None,
        start_at: float = 0.5,
        cross_shard_every: int = 0,
    ) -> List[Process]:
        """The paper's phase-staggered workload, routed through the tier.

        With ``cross_shard_every = N > 0`` (and S > 1), every Nth update
        per client writes a key owned by the *key's* shard — usually a
        foreign one — and flows through the two-phase cross-shard path.
        """
        if len(self.shards) == 1:
            # Single shard: delegate to the classic workload generator so
            # the whole run stays byte-identical to an unsharded build.
            return self.shards[0].start_workload(
                body_fn=body_fn,
                duration=duration,
                interval=interval,
                start_at=start_at,
            )
        interval = interval if interval is not None else self.config.update_interval
        body_fn = body_fn or _default_body
        processes = []
        client_ids = sorted(self.routers)
        for index, client_id in enumerate(client_ids):
            phase = start_at + (index / max(1, len(client_ids))) * interval
            jitter_rng = self.rng.stream(f"workload.{client_id}")

            def gen(
                router=self.routers[client_id],
                cid=client_id,
                phase=phase,
                rng=jitter_rng,
            ):
                yield Timeout(phase)
                seq = 0
                while duration is None or self.kernel.now < start_at + duration:
                    seq += 1
                    if cross_shard_every and seq % cross_shard_every == 0:
                        # A multi-key update touching a key the shard map
                        # assigns to some shard — the router adds home,
                        # so the participant set crosses a boundary
                        # whenever the key lives elsewhere.
                        key = f"xkey-{cid}-{seq % 5}"
                        body = f"SET {key} xvalue-{seq}".encode("utf-8")
                        router.submit_cross(
                            body, {self.shard_map.key_shard(key)}
                        )
                    else:
                        router.submit(body_fn(cid, seq))
                    yield Timeout(interval * rng.uniform(0.9, 1.1))

            processes.append(
                spawn(self.kernel, gen(), name=f"workload-{client_id}")
            )
        return processes


def build_sharded(
    config: SystemConfig,
    app_factory: Optional[Callable[[], Application]] = None,
) -> ShardedDeployment:
    """Construct a sharded deployment per ``config.shards``."""
    app_factory = app_factory or KeyValueApplication
    shard_map = ShardMap(seed=config.seed, shards=config.shards)
    announce = shard_map.announce()

    if config.shards == 1:
        deployment = build(config, app_factory=app_factory)
        routers = {
            cid: ShardRouter(
                client_id=cid,
                shard_id=0,
                proxy=proxy,
                kernel=deployment.kernel,
                inert=True,
            )
            for cid, proxy in deployment.proxies.items()
        }
        return ShardedDeployment(
            config=config,
            kernel=deployment.kernel,
            rng=deployment.rng,
            tracer=deployment.tracer,
            metrics=deployment.metrics,
            spans=deployment.spans,
            announce=announce,
            shard_map=ShardMap.from_announce(announce),
            shards=[deployment],
            routers=routers,
            coordinator=None,
            client_ids=list(deployment.proxies),
        )

    # -- shared world ---------------------------------------------------------
    kernel = Kernel()
    rng = RngRegistry(config.seed)
    tracer = Tracer(kernel, enabled=config.tracing)
    metrics = (
        MetricsRegistry(now_fn=lambda: kernel.now)
        if config.metrics_enabled
        else NULL_METRICS
    )
    spans = SpanTracker().attach(tracer) if config.tracing else None
    metrics.register_gauge("kernel.events_processed", lambda: kernel.events_processed)
    metrics.register_gauge("kernel.pending_events", lambda: kernel.pending_events)
    metrics.register_gauge("kernel.timers_scheduled", lambda: kernel.timers_scheduled)
    metrics.register_gauge("kernel.heap_depth", lambda: kernel.heap_depth)

    # -- global client identities --------------------------------------------
    client_ids = [f"client-{i:02d}" for i in range(config.num_clients)]
    validate_client_ids(client_ids)
    keygen = rng.stream("keygen")
    client_keys = {
        cid: generate_keypair(config.rsa_bits, keygen) for cid in client_ids
    }

    assignment = shard_map.assign(client_ids)
    empty = sorted(s for s, ids in assignment.items() if not ids)
    if empty:
        raise ConfigurationError(
            f"shard map (seed={config.seed}, shards={config.shards}) leaves "
            f"shards {empty} without clients; use more clients, fewer "
            "shards, or another seed"
        )

    # -- per-shard groups -----------------------------------------------------
    cross = ShardCrossContext()
    shards: List[Deployment] = []
    for shard_id in range(config.shards):
        local_ids = assignment[shard_id]
        shard_config = replace(
            config,
            shards=1,
            num_clients=len(local_ids),
            seed=shard_seed(config.seed, shard_id),
        )

        def shard_app_factory(_shard_id=shard_id):
            return ShardAwareApplication(app_factory(), _shard_id, cross)

        group = GroupContext(
            kernel=kernel,
            rng=RngRegistry(shard_config.seed),
            tracer=tracer,
            metrics=metrics,
            spans=spans,
            namespace=f"s{shard_id}.",
            client_ids=local_ids,
            client_keys=client_keys,
            shard_id=shard_id,
        )
        shards.append(build(shard_config, app_factory=shard_app_factory, group=group))

    # Certificate verification material: filled before the kernel runs, so
    # every replica's wrapper sees the complete registry from time zero.
    for shard_id, deployment in enumerate(shards):
        cross.response_publics[shard_id] = deployment.env.response_public
    cross.verify_cache = shards[0].env.verify_cache

    # -- routing tier ---------------------------------------------------------
    # Routers reconstruct the map from the announce (not the original
    # object): what a real edge tier would do with the wire message.
    routing_map = ShardMap.from_announce(announce)
    coordinator = CrossShardCoordinator(
        kernel=kernel,
        shard_map=routing_map,
        client_keys=client_keys,
        tracer=tracer,
        metrics=metrics,
    )
    for shard_id, deployment in enumerate(shards):
        coordinator.attach_shard(shard_id, deployment)

    routers: Dict[str, ShardRouter] = {}
    for shard_id, deployment in enumerate(shards):
        for cid in assignment[shard_id]:
            routers[cid] = ShardRouter(
                client_id=cid,
                shard_id=shard_id,
                proxy=deployment.proxies[cid],
                kernel=kernel,
                route_delay=config.route_delay,
                tracer=tracer,
                metrics=metrics,
                coordinator=coordinator,
            )

    return ShardedDeployment(
        config=config,
        kernel=kernel,
        rng=rng,
        tracer=tracer,
        metrics=metrics,
        spans=spans,
        announce=announce,
        shard_map=routing_map,
        shards=shards,
        routers=routers,
        coordinator=coordinator,
        client_ids=client_ids,
    )
