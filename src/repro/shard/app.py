"""Execution-layer shard awareness: certificates and the ordering tiebreak.

Every executing replica of a sharded deployment runs its application under
:class:`ShardAwareApplication`. Ordinary updates pass straight through to
the wrapped application; bodies carrying a shard-protocol magic are
handled here:

* an **intent** (home shard) applies its payload and answers with the
  intent digest — the threshold signature the shard produces over that
  answer becomes the prepare certificate;
* a **commit** (participant shard) first verifies the home shard's
  threshold certificate — at execution time, so every replica of the
  shard accepts or rejects identically — then applies the payload.

Cross-shard payloads apply under a **last-writer-wins tiebreak**: each
cross-written key remembers the tag ``(client_id, client_seq, home_shard)``
of the intent that wrote it, and an apply is skipped when the key already
holds a later tag. Participant shards may order two commits differently;
the tag rule makes their final states agree anyway. The tag table is part
of the snapshot, so checkpoint comparison and state transfer keep it
byte-consistent across replicas.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.app import Application
from repro.core.messages import response_batch_signing_bytes
from repro.crypto.merkle import verify_inclusion
from repro.crypto.verifycache import verify_with
from repro.shard.messages import (
    XS_COMMIT_MAGIC,
    XS_INTENT_MAGIC,
    XS_OK,
    XS_PREPARED_MAGIC,
    XS_REJECT,
    CrossShardCommit,
    CrossShardIntent,
)

VersionTag = Tuple[str, int, int]


@dataclass
class ShardCrossContext:
    """What participant replicas need to verify foreign certificates.

    Built empty, filled once every group exists (and before the kernel
    runs): ``response_publics`` maps shard id → that shard's
    response-group threshold public key.
    """

    response_publics: Dict[int, object] = field(default_factory=dict)
    verify_cache: Optional[object] = None


def _set_key(body: bytes) -> Optional[str]:
    """The key of a single ``SET key value`` body, else None.

    Cross-shard payloads are single-key SETs by construction (the router
    only routes multi-*shard* updates through the coordinator when they
    write one foreign-owned key); anything unparseable applies without
    version tracking.
    """
    try:
        parts = body.decode("utf-8").split(" ", 2)
    except UnicodeDecodeError:
        return None
    if len(parts) == 3 and parts[0].upper() == "SET":
        return parts[1]
    return None


class ShardAwareApplication(Application):
    """Wraps one shard's application with the cross-shard protocol."""

    def __init__(
        self,
        inner: Application,
        shard_id: int,
        cross: ShardCrossContext,
    ):
        self.inner = inner
        self.shard_id = shard_id
        self.cross = cross
        self.versions: Dict[str, VersionTag] = {}
        self.cross_applied = 0
        self.cross_skipped = 0
        self.cross_rejected = 0

    # -- execution -----------------------------------------------------------

    def execute(self, client_id: str, client_seq: int, body: bytes) -> Optional[bytes]:
        if body.startswith(XS_INTENT_MAGIC):
            return self._execute_intent(client_id, client_seq, body)
        if body.startswith(XS_COMMIT_MAGIC):
            return self._execute_commit(body)
        # A local write supersedes any cross-shard tag on its key: the
        # owner shard's Prime order is authoritative for owned keys.
        key = _set_key(body)
        if key is not None:
            self.versions.pop(key, None)
        return self.inner.execute(client_id, client_seq, body)

    def _decode(self, payload: bytes):
        from repro.net.codec import decode_message

        message, _ = decode_message(payload)
        return message

    def _execute_intent(
        self, client_id: str, client_seq: int, body: bytes
    ) -> bytes:
        try:
            intent = self._decode(body[len(XS_INTENT_MAGIC):])
        except Exception:
            self.cross_rejected += 1
            return XS_REJECT + b"|malformed-intent"
        if not isinstance(intent, CrossShardIntent):
            self.cross_rejected += 1
            return XS_REJECT + b"|not-an-intent"
        # The digest (and so the certificate) binds the slot the intent
        # was submitted under; a replayed or re-sequenced intent fails.
        if intent.client_id != client_id or intent.client_seq != client_seq:
            self.cross_rejected += 1
            return XS_REJECT + b"|slot-mismatch"
        if intent.home_shard != self.shard_id:
            self.cross_rejected += 1
            return XS_REJECT + b"|wrong-home"
        self._apply_tagged(client_id, client_seq, intent)
        return XS_PREPARED_MAGIC + intent.digest()

    def _execute_commit(self, body: bytes) -> bytes:
        try:
            commit = self._decode(body[len(XS_COMMIT_MAGIC):])
        except Exception:
            self.cross_rejected += 1
            return XS_REJECT + b"|malformed-commit"
        if not isinstance(commit, CrossShardCommit):
            self.cross_rejected += 1
            return XS_REJECT + b"|not-a-commit"
        intent, prepare = commit.intent, commit.prepare
        if prepare.intent_digest != intent.digest():
            self.cross_rejected += 1
            return XS_REJECT + b"|digest-mismatch"
        if (
            prepare.client_id != intent.client_id
            or prepare.home_shard != intent.home_shard
        ):
            self.cross_rejected += 1
            return XS_REJECT + b"|binding-mismatch"
        if self.shard_id not in intent.targets:
            self.cross_rejected += 1
            return XS_REJECT + b"|not-a-participant"
        public = self.cross.response_publics.get(intent.home_shard)
        if public is None:
            self.cross_rejected += 1
            return XS_REJECT + b"|unknown-home-shard"
        if not self._verify_certificate(prepare, public):
            self.cross_rejected += 1
            return XS_REJECT + b"|bad-certificate"
        self._apply_tagged(intent.client_id, intent.client_seq, intent)
        return XS_OK

    def _verify_certificate(self, prepare, public) -> bool:
        if prepare.cert_kind == 0:
            return verify_with(
                self.cross.verify_cache,
                public,
                prepare.response_signing_bytes(),
                prepare.cert_sig,
            )
        if prepare.cert_kind == 1:
            return verify_with(
                self.cross.verify_cache,
                public,
                response_batch_signing_bytes(
                    prepare.batch_root, prepare.batch_count
                ),
                prepare.cert_sig,
            ) and verify_inclusion(
                prepare.batch_root, prepare.leaf(), prepare.proof
            )
        return False

    def _apply_tagged(
        self, client_id: str, client_seq: int, intent: CrossShardIntent
    ) -> None:
        tag = intent.tag()
        key = _set_key(intent.body.data)
        if key is not None:
            current = self.versions.get(key)
            if current is not None and current >= tag:
                self.cross_skipped += 1
                return
            self.versions[key] = tag
        self.cross_applied += 1
        self.inner.execute(client_id, client_seq, intent.body.data)

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> bytes:
        return json.dumps(
            {
                "inner": self.inner.snapshot().hex(),
                "versions": {
                    key: list(tag) for key, tag in sorted(self.versions.items())
                },
            },
            sort_keys=True,
        ).encode("utf-8")

    def restore(self, blob: bytes) -> None:
        state = json.loads(blob.decode("utf-8"))
        self.inner.restore(bytes.fromhex(state["inner"]))
        self.versions = {
            key: (tag[0], int(tag[1]), int(tag[2]))
            for key, tag in state["versions"].items()
        }
