"""Cross-shard protocol messages (ShardLab).

A multi-key update crosses shard boundaries in two phases:

1. **Intent** — the client's router wraps the update body in a
   :class:`CrossShardIntent` and submits it to the client's *home* shard
   through the normal confidential pipeline (signed, encrypted,
   introduced, ordered). Executing the intent applies it on the home
   shard and produces a response whose body binds the intent digest; the
   home shard's threshold signature over that response *is* the prepare
   certificate — no extra signing round exists.
2. **Commit** — the coordinator assembles a :class:`CrossShardCommit`
   (intent + :class:`CrossShardPrepare` certificate) and injects it into
   every other participant shard's order as a gateway-signed client
   update. Participant replicas verify the home shard's threshold
   signature at execution time and apply the body under the deterministic
   last-writer-wins tiebreak (see repro.shard.app).

:class:`ShardMapAnnounce` is the routing tier's epoch announcement: the
(seed, shards, version) triple every router and node derives the identical
:class:`~repro.shard.shardmap.ShardMap` from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.confidentiality import Sensitive

_HEADER = 64

#: Body prefixes marking shard-protocol payloads inside ordinary client
#: updates. The cross-shard path deliberately rides the existing pipeline
#: (signing, encryption, introduction, ordering, response certification),
#: so shard messages appear at exactly two seams: inside update bodies
#: (these magics) and in the codec (tags 36-39).
XS_INTENT_MAGIC = b"XSHARD-INTENT1|"
XS_COMMIT_MAGIC = b"XSHARD-COMMIT1|"
XS_PREPARED_MAGIC = b"XSHARD-PREPARED1|"
XS_OK = b"XSHARD-OK"
XS_REJECT = b"XSHARD-REJECT"


@dataclass(frozen=True)
class ShardMapAnnounce:
    """One routing epoch: everything needed to reconstruct the shard map."""

    seed: int
    shards: int
    version: int

    def wire_size(self) -> int:
        return _HEADER + 24


@dataclass(frozen=True)
class CrossShardIntent:
    """A multi-key update bound to its home shard and participant set.

    ``client_seq`` is the home-shard proxy sequence number the intent is
    submitted under, fixed *before* submission so the digest — and
    therefore the prepare certificate — binds the exact slot the home
    shard ordered.
    """

    client_id: str
    client_seq: int
    home_shard: int
    targets: Tuple[int, ...]
    body: Sensitive

    def signing_bytes(self) -> bytes:
        targets = ",".join(str(t) for t in self.targets)
        return (
            f"xintent|{self.client_id}|{self.client_seq}|"
            f"{self.home_shard}|{targets}|".encode("utf-8")
            + self.body.data
        )

    def digest(self) -> bytes:
        return hashlib.sha256(self.signing_bytes()).digest()

    def tag(self) -> Tuple[str, int, int]:
        """Total order over intents for the last-writer-wins tiebreak."""
        return (self.client_id, self.client_seq, self.home_shard)

    def wire_size(self) -> int:
        return _HEADER + 32 + 4 * len(self.targets) + len(self.body)

    def sensitive_parts(self) -> List[str]:
        return [self.body.label]


@dataclass(frozen=True)
class CrossShardPrepare:
    """The home shard's threshold certificate over a prepared intent.

    ``cert_kind`` 0 carries a singleton :class:`ClientResponse` threshold
    signature; kind 1 carries a BatchLab :class:`CertifiedResponse`
    certificate (batch signature + Merkle inclusion proof). Either way the
    signed bytes are the home shard's response to the intent update, whose
    body is ``XS_PREPARED_MAGIC + intent_digest`` — participants rebuild
    those bytes and verify against the home shard's response-group public
    key, so a coordinator cannot graft a certificate from a different
    update onto this intent.
    """

    client_id: str
    client_seq: int
    home_shard: int
    intent_digest: bytes
    cert_kind: int
    cert_sig: bytes
    batch_root: bytes = b""
    batch_count: int = 0
    proof: object = None  # Optional[MerkleProof] when cert_kind == 1

    def response_body(self) -> bytes:
        return XS_PREPARED_MAGIC + self.intent_digest

    def response_signing_bytes(self) -> bytes:
        return (
            f"response|{self.client_id}|{self.client_seq}|".encode("utf-8")
            + self.response_body()
        )

    def leaf(self) -> bytes:
        return hashlib.sha256(self.response_signing_bytes()).digest()

    def wire_size(self) -> int:
        proof_size = self.proof.wire_size() if self.proof is not None else 0
        return (
            _HEADER
            + 32
            + len(self.intent_digest)
            + len(self.cert_sig)
            + len(self.batch_root)
            + proof_size
        )


@dataclass(frozen=True)
class CrossShardCommit:
    """Phase two: the certified intent, injected into a participant shard."""

    intent: CrossShardIntent
    prepare: CrossShardPrepare

    def wire_size(self) -> int:
        return (
            _HEADER
            + (self.intent.wire_size() - _HEADER)
            + (self.prepare.wire_size() - _HEADER)
        )

    def sensitive_parts(self) -> List[str]:
        return self.intent.sensitive_parts()
