"""The cross-shard two-phase coordinator.

Phase 1 (**prepare**): the intent rides the normal client pipeline on the
home shard — signed by the client's key, encrypted at introduction,
ordered by the home shard's Prime instance, executed everywhere. The home
shard's threshold-signed response (whose body binds the intent digest) is
the prepare certificate: f+1 correct home replicas vouch that the intent
occupies exactly one slot in the home shard's order.

Phase 2 (**commit**): the coordinator wraps (intent, certificate) into a
:class:`CrossShardCommit` and submits it to every other participant shard
through a *gateway proxy* — a :class:`~repro.core.proxy.ClientProxy`
signing with the same client key, registered on the participant's
network. The commit flows through the participant's full pipeline too
(confidential introduction included: data-center replicas of the
participant shard only ever see the commit's ciphertext). Participant
replicas verify the certificate at execution time and apply under the
last-writer-wins tiebreak (see repro.shard.app).

The coordinator is untrusted for safety: certificates bind the intent
digest, participants re-verify them against the home shard's
response-group public key, and gateway retransmission handles loss — a
crashed coordinator can stall a cross-shard update (liveness), never
fork state (safety).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.confidentiality import Sensitive
from repro.core.messages import CertifiedResponse, ClientResponse
from repro.core.proxy import ClientProxy
from repro.net.codec import encode_message
from repro.obs.registry import NULL_METRICS
from repro.shard.messages import (
    XS_COMMIT_MAGIC,
    XS_INTENT_MAGIC,
    XS_OK,
    XS_PREPARED_MAGIC,
    CrossShardCommit,
    CrossShardIntent,
    CrossShardPrepare,
)

CrossCallback = Callable[[str, int, float], None]


@dataclass
class _Pending:
    intent: CrossShardIntent
    started: float
    awaiting: Set[int]
    prepare: Optional[CrossShardPrepare] = None
    commit_seqs: Dict[int, int] = field(default_factory=dict)


class CrossShardCoordinator:
    """Drives intents through prepare and commit across shard boundaries."""

    def __init__(
        self,
        kernel,
        shard_map,
        client_keys,
        tracer=None,
        metrics=None,
        retransmit_timeout: float = 1.0,
    ):
        self.kernel = kernel
        self.shard_map = shard_map
        self.client_keys = client_keys
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.retransmit_timeout = retransmit_timeout
        self.shards: Dict[int, object] = {}
        self._gateways: Dict[Tuple[str, int], ClientProxy] = {}
        #: (client_id, home proxy seq) -> in-flight intent
        self._pending: Dict[Tuple[str, int], _Pending] = {}
        #: (client_id, shard, gateway seq) -> pending key
        self._commit_index: Dict[Tuple[str, int, int], Tuple[str, int]] = {}
        self._callbacks: List[CrossCallback] = []
        self.completed: List[Tuple[str, int, float]] = []
        self.rejected: List[Tuple[str, int, int, bytes]] = []
        self._m_latency = self.metrics.histogram("shard.cross_latency")
        self._m_committed = self.metrics.counter("shard.cross_committed")
        self._m_rejected = self.metrics.counter("shard.cross_rejected")

    # -- wiring --------------------------------------------------------------

    def attach_shard(self, shard_id: int, deployment) -> None:
        """Register one shard and listen on its local proxies for
        prepared-intent responses."""
        self.shards[shard_id] = deployment
        for proxy in deployment.proxies.values():
            proxy.on_certified(self._on_home_response)

    def on_committed(self, callback: CrossCallback) -> None:
        """Register a callback invoked as (client_id, seq, latency) once an
        intent has committed on every participant shard."""
        self._callbacks.append(callback)

    @property
    def outstanding(self) -> int:
        return len(self._pending)

    # -- phase 1: intent -----------------------------------------------------

    def submit_cross(self, router, body: bytes, participants: Set[int]) -> int:
        cid = router.client_id
        home = router.shard_id
        targets = tuple(sorted(participants))
        seq = router.predict_seq()
        intent = CrossShardIntent(
            client_id=cid,
            client_seq=seq,
            home_shard=home,
            targets=targets,
            body=Sensitive(body, label="client-update-body"),
        )
        self._pending[(cid, seq)] = _Pending(
            intent=intent,
            started=self.kernel.now,
            awaiting=set(targets) - {home},
        )
        self.metrics.counter("shard.cross_shard", shard=f"s{home}").inc()
        if self.tracer:
            self.tracer.record(
                "xshard.intent",
                router.host,
                client=cid,
                seq=seq,
                home=home,
                targets=list(targets),
            )
        wrapped = XS_INTENT_MAGIC + encode_message(intent)
        assigned = router.submit(wrapped)
        if assigned != seq:
            raise AssertionError(
                f"intent for {cid} bound seq {seq} but router assigned {assigned}"
            )
        return seq

    # -- phase transition: home response -> certificate ----------------------

    def _on_home_response(self, message) -> None:
        body = message.body.data
        if not body.startswith(XS_PREPARED_MAGIC):
            return
        key = (message.client_id, message.client_seq)
        pending = self._pending.get(key)
        if pending is None or pending.prepare is not None:
            return
        if body[len(XS_PREPARED_MAGIC):] != pending.intent.digest():
            # A correct home shard echoes the digest of the intent it
            # executed; a mismatch means this response belongs to some
            # other update and cannot certify ours.
            return
        pending.prepare = self._prepare_from(message, pending.intent)
        if self.tracer:
            self.tracer.record(
                "xshard.prepared",
                f"router-{message.client_id}",
                client=message.client_id,
                seq=message.client_seq,
                home=pending.intent.home_shard,
            )
        if not pending.awaiting:
            self._complete(key, pending)
            return
        for shard_id in sorted(pending.awaiting):
            self._inject_commit(shard_id, key, pending)

    @staticmethod
    def _prepare_from(message, intent: CrossShardIntent) -> CrossShardPrepare:
        if isinstance(message, CertifiedResponse):
            return CrossShardPrepare(
                client_id=message.client_id,
                client_seq=message.client_seq,
                home_shard=intent.home_shard,
                intent_digest=intent.digest(),
                cert_kind=1,
                cert_sig=message.batch_sig,
                batch_root=message.batch_root,
                batch_count=message.batch_count,
                proof=message.proof,
            )
        assert isinstance(message, ClientResponse)
        return CrossShardPrepare(
            client_id=message.client_id,
            client_seq=message.client_seq,
            home_shard=intent.home_shard,
            intent_digest=intent.digest(),
            cert_kind=0,
            cert_sig=message.threshold_sig,
        )

    # -- phase 2: commit -----------------------------------------------------

    def _inject_commit(
        self, shard_id: int, key: Tuple[str, int], pending: _Pending
    ) -> None:
        cid = key[0]
        gateway = self._gateway(cid, shard_id)
        commit = CrossShardCommit(intent=pending.intent, prepare=pending.prepare)
        gw_seq = gateway.submit(XS_COMMIT_MAGIC + encode_message(commit))
        pending.commit_seqs[shard_id] = gw_seq
        self._commit_index[(cid, shard_id, gw_seq)] = key
        if self.tracer:
            self.tracer.record(
                "xshard.commit",
                gateway.host,
                client=cid,
                seq=key[1],
                shard=shard_id,
                gw_seq=gw_seq,
            )

    def _gateway(self, cid: str, shard_id: int) -> ClientProxy:
        gateway = self._gateways.get((cid, shard_id))
        if gateway is not None:
            return gateway
        deployment = self.shards[shard_id]
        host = deployment.env.proxy_of_client[cid]
        gateway = ClientProxy(
            kernel=self.kernel,
            network=deployment.network,
            host=host,
            client_id=cid,
            signing_key=self.client_keys[cid],
            response_public=deployment.env.response_public,
            on_premises_replicas=list(deployment.on_premises_hosts),
            costs=deployment.config.costs,
            retransmit_timeout=self.retransmit_timeout,
            tracer=deployment.tracer,
            metrics=self.metrics,
            verify_cache=deployment.env.verify_cache,
        )
        gateway.on_response(
            lambda seq, body, latency, _cid=cid, _shard=shard_id: (
                self._on_commit_response(_cid, _shard, seq, body)
            )
        )
        self._gateways[(cid, shard_id)] = gateway
        return gateway

    def _on_commit_response(
        self, cid: str, shard_id: int, gw_seq: int, body: bytes
    ) -> None:
        key = self._commit_index.pop((cid, shard_id, gw_seq), None)
        if key is None:
            return
        pending = self._pending.get(key)
        if pending is None:
            return
        if body != XS_OK:
            self._m_rejected.inc()
            self.rejected.append((cid, key[1], shard_id, body))
            if self.tracer:
                self.tracer.record(
                    "xshard.rejected",
                    f"router-{cid}",
                    client=cid,
                    seq=key[1],
                    shard=shard_id,
                    reason=body.decode("utf-8", "replace"),
                )
            return
        pending.awaiting.discard(shard_id)
        if not pending.awaiting:
            self._complete(key, pending)

    def _complete(self, key: Tuple[str, int], pending: _Pending) -> None:
        del self._pending[key]
        latency = self.kernel.now - pending.started
        self._m_committed.inc()
        self._m_latency.observe(latency)
        self.completed.append((key[0], key[1], latency))
        if self.tracer:
            self.tracer.record(
                "xshard.committed",
                f"router-{key[0]}",
                client=key[0],
                seq=key[1],
                latency=latency,
                shards=sorted(pending.intent.targets),
            )
        for callback in self._callbacks:
            callback(key[0], key[1], latency)
