"""The shard map: a stable hash partition of the client keyspace.

Routing uses rendezvous (highest-random-weight) hashing: every
(shard, alias) pair gets a deterministic sha256 weight, and an alias lives
on the shard with the highest weight. The properties the routing tier
depends on (and the Hypothesis suite in tests/test_shardmap.py enforces):

* **total** — every alias maps to exactly one shard in [0, S);
* **stable** — the mapping is a pure function of (seed, version, S, alias):
  two processes with the same announce agree with no coordination;
* **balanced** — weights are independent per alias, so loads concentrate
  around n/S like balls into bins;
* **rebalance-free growth** — an alias's shard depends only on its own
  weights, never on the rest of the client set, so adding clients moves
  nobody (changing S is a different epoch: bump ``version``).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.core.messages import client_alias
from repro.errors import ConfigurationError
from repro.shard.messages import ShardMapAnnounce


class ShardMap:
    """Deterministic alias → shard assignment for one routing epoch."""

    def __init__(self, seed: int, shards: int, version: int = 1):
        if shards < 1:
            raise ConfigurationError("a shard map needs at least one shard")
        self.seed = int(seed)
        self.shards = int(shards)
        self.version = int(version)

    # -- the mapping ---------------------------------------------------------

    def _weight(self, shard: int, alias: str) -> int:
        material = f"{self.seed}|{self.version}|{shard}|{alias}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def shard_of(self, alias: str) -> int:
        """The home shard for an alias (highest rendezvous weight wins)."""
        if self.shards == 1:
            return 0
        return max(range(self.shards), key=lambda s: (self._weight(s, alias), s))

    def shard_of_client(self, client_id: str) -> int:
        return self.shard_of(client_alias(client_id))

    def key_shard(self, key: str) -> int:
        """Owner shard for an application key (used to pick cross-shard
        participants); same rendezvous scheme over the key string."""
        return self.shard_of(f"key:{key}")

    def assign(self, client_ids: Iterable[str]) -> Dict[int, List[str]]:
        """Partition ``client_ids`` into per-shard sorted lists.

        Every shard appears in the result; a shard that owns no client is
        reported with an empty list so callers can reject it explicitly.
        """
        partition: Dict[int, List[str]] = {s: [] for s in range(self.shards)}
        for cid in sorted(client_ids):
            partition[self.shard_of_client(cid)].append(cid)
        return partition

    # -- wire form -----------------------------------------------------------

    def announce(self) -> ShardMapAnnounce:
        return ShardMapAnnounce(
            seed=self.seed, shards=self.shards, version=self.version
        )

    @classmethod
    def from_announce(cls, msg: ShardMapAnnounce) -> "ShardMap":
        return cls(seed=msg.seed, shards=msg.shards, version=msg.version)


def shard_seed(master_seed: int, shard_id: int) -> int:
    """Per-shard master seed: independent key material and jitter per
    group, still a pure function of the deployment seed."""
    digest = hashlib.sha256(f"shard|{master_seed}|{shard_id}".encode()).digest()
    return int.from_bytes(digest[:8], "big")
