"""ShardLab: multi-group sharded execution (repro.shard).

One Prime instance is the hard scalability ceiling of the single-group
system. ShardLab partitions the client keyspace across S independent
replica groups — each with its own Prime instance, threshold signing
groups, encrypted log/checkpoint store, and key-renewal schedule — fronted
by a thin routing tier and a two-phase cross-shard ordering path for the
rare multi-key update. See docs/SHARDING.md.
"""

from repro.shard.messages import (
    CrossShardCommit,
    CrossShardIntent,
    CrossShardPrepare,
    ShardMapAnnounce,
)
from repro.shard.shardmap import ShardMap

__all__ = [
    "CrossShardCommit",
    "CrossShardIntent",
    "CrossShardPrepare",
    "ShardMap",
    "ShardMapAnnounce",
    "ShardedDeployment",
    "build_sharded",
]


def __getattr__(name: str):
    # The builder pulls in the whole system stack (which pulls in the
    # codec, which imports repro.shard.messages) — importing it lazily
    # keeps `import repro.shard.messages` cycle-free.
    if name in ("ShardedDeployment", "build_sharded"):
        from repro.shard import builder

        return getattr(builder, name)
    raise AttributeError(name)
