"""The routing tier: one thin router per client.

A router owns the client's view of the sharded system: it knows the shard
map, fronts the client's proxy on its home shard, and hands multi-shard
updates to the cross-shard coordinator. Routing is deliberately cheap —
a hash lookup and a fixed ``route_delay`` forwarding cost — so the tier
adds a bounded, observable latency phase (``route`` in spans) rather than
a second consensus hop.

In a single-shard deployment the router is **inert**: `submit` calls the
proxy directly with no events, no metrics, and no delay, keeping S=1
traces byte-identical to unsharded builds (test-enforced).
"""

from __future__ import annotations

from typing import Optional

from repro.core.messages import client_alias
from repro.core.proxy import ClientProxy
from repro.obs.registry import NULL_METRICS


class ShardRouter:
    """Routes one client's updates to its home shard."""

    def __init__(
        self,
        client_id: str,
        shard_id: int,
        proxy: ClientProxy,
        kernel,
        route_delay: float = 0.0,
        tracer=None,
        metrics=None,
        coordinator=None,
        inert: bool = False,
    ):
        self.client_id = client_id
        self.alias = client_alias(client_id)
        self.shard_id = shard_id
        self.proxy = proxy
        self.kernel = kernel
        self.route_delay = route_delay
        self.tracer = tracer
        self.coordinator = coordinator
        self.inert = inert
        self.host = f"router-{client_id}"
        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_routed = metrics.counter("shard.updates", shard=f"s{shard_id}")
        self._m_route_latency = metrics.histogram("shard.route_latency")
        # The router is the proxy's only submitter, so the next sequence
        # number is predictable; predicting it lets route.submit (and the
        # cross-shard intent digest) carry the slot before the proxy
        # assigns it.
        self._next_seq = proxy.next_seq

    def predict_seq(self) -> int:
        """The proxy seq the next routed submission will be assigned."""
        return self._next_seq

    def submit(self, body: bytes) -> int:
        """Route one single-shard update to the home shard's proxy."""
        if self.inert:
            return self.proxy.submit(body)
        seq = self._next_seq
        self._next_seq += 1
        if self.tracer:
            # Span-open milestone for sharded runs: the routing hop is
            # the first thing that happens to an update, so the span
            # tracker keys the span here and measures proxy.submit as the
            # end of the "route" phase.
            self.tracer.record(
                "route.submit",
                self.host,
                client=self.client_id,
                alias=self.alias,
                seq=seq,
                shard=self.shard_id,
            )
        self._m_routed.inc()
        self._m_route_latency.observe(self.route_delay)
        self.kernel.call_later(self.route_delay, self._forward, body, seq)
        return seq

    def _forward(self, body: bytes, seq: int) -> None:
        assigned = self.proxy.submit(body)
        if assigned != seq:
            raise AssertionError(
                f"router predicted seq {seq} but proxy assigned {assigned}; "
                "something else submitted through this proxy"
            )

    def submit_cross(self, body: bytes, targets) -> Optional[int]:
        """Route a multi-shard update through the two-phase coordinator.

        ``targets`` are the participant shard ids; the home shard is
        always included. Falls back to a plain submit when the update
        turns out not to cross a shard boundary.
        """
        participants = set(int(t) for t in targets)
        participants.add(self.shard_id)
        if len(participants) == 1 or self.coordinator is None:
            return self.submit(body)
        return self.coordinator.submit_cross(self, body, participants)
