"""ShardLab scaling benchmark: fixed client load over 1/2/4 shards.

Runs the same 40-client workload against sharded deployments of 1, 2,
and 4 groups and measures completed updates per *virtual* second. The
simulation is deterministic, so the numbers are exactly reproducible on
any machine — which is why ``--check`` can enforce a hard floor on the
2-shard/1-shard scaling ratio instead of a fuzzy wall-clock comparison.

At this load a single group is far past saturation (clients offer ~130
updates/s against a group capacity around 10/s), so sharding the
keyspace shows up directly in completions: each extra group adds
ordering, introduction, and threshold-signing capacity.

Usage:

    PYTHONPATH=src python benchmarks/bench_shard_scaling.py            # full run
    PYTHONPATH=src python benchmarks/bench_shard_scaling.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.load.closedloop import latency_stats  # noqa: E402
from repro.shard.builder import build_sharded  # noqa: E402
from repro.system.config import SystemConfig  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_RESULTS_PATH = Path("benchmarks") / "results" / "BENCH_shard.json"

#: The acceptance floor: two shards must complete at least this multiple
#: of the single-shard run's updates under the same offered load.
SCALING_FLOOR_2X = 1.6

FULL = {"clients": 40, "interval": 0.3, "duration": 5.0, "shards": (1, 2, 4)}
QUICK = {"clients": 16, "interval": 0.25, "duration": 4.0, "shards": (1, 2)}


def run_point(shards: int, clients: int, interval: float, duration: float,
              seed: int = 11) -> dict:
    config = SystemConfig(
        seed=seed,
        f=1,
        num_clients=clients,
        update_interval=interval,
        checkpoint_interval=50,
        shards=shards,
        tracing=False,
    )
    deployment = build_sharded(config)
    deployment.start()
    deployment.start_workload(duration=duration)
    deployment.run(until=duration + 3.0)
    completed = deployment.completed_count()
    latencies = deployment.latencies()
    deployment.shutdown()
    # Shared reporting (repro.load.closedloop): the same percentile math
    # every other benchmark uses. `updates_per_sec` is virtual-time
    # throughput, the quantity the scaling ratios are built from.
    stats = latency_stats(latencies, completed, duration)
    return {
        "shards": shards,
        "completed": completed,
        "updates_per_sec": round(completed / duration, 3),
        "latency_p50_ms": stats["latency_p50_ms"],
        "latency_p99_ms": stats["latency_p99_ms"],
    }


def run_scaling(quick: bool = False, seed: int = 11) -> dict:
    params = QUICK if quick else FULL
    points = [
        run_point(s, params["clients"], params["interval"], params["duration"],
                  seed=seed)
        for s in params["shards"]
    ]
    base = points[0]["updates_per_sec"]
    ratios = {
        f"{p['shards']}/1": round(p["updates_per_sec"] / base, 3)
        for p in points[1:]
    }
    return {
        "benchmark": "shard_scaling",
        "quick": quick,
        "seed": seed,
        "clients": params["clients"],
        "update_interval": params["interval"],
        "duration": params["duration"],
        "points": points,
        "ratios": ratios,
    }


def check(result: dict, baseline: dict | None, tolerance: float) -> list:
    failures = []
    two = result["ratios"].get("2/1")
    if two is None:
        failures.append("no 2-shard point in this run; cannot check the floor")
    elif two < SCALING_FLOOR_2X:
        failures.append(
            f"2-shard scaling ratio {two} below the acceptance floor "
            f"{SCALING_FLOOR_2X}"
        )
    if baseline is not None and baseline.get("quick") == result.get("quick"):
        for key, ratio in baseline.get("ratios", {}).items():
            fresh = result["ratios"].get(key)
            if fresh is None:
                failures.append(f"baseline ratio {key} missing from this run")
            elif fresh < ratio * (1 - tolerance):
                failures.append(
                    f"ratio {key} regressed: {fresh} vs baseline {ratio} "
                    f"(tolerance {tolerance:.0%})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="16 clients, 1/2 shards only (CI smoke; skips baseline ratios "
        "unless the baseline is also quick)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="enforce the 2-shard scaling floor (and baseline ratios when "
        "comparable); exit 1 on failure",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / DEFAULT_RESULTS_PATH,
        help="baseline JSON for --check (default: the committed results file)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write results (default: the committed results file, "
        "full runs only)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional erosion of baseline ratios (default 0.25)",
    )
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    result = run_scaling(quick=args.quick, seed=args.seed)
    print(json.dumps(result, indent=2, sort_keys=True))

    if args.check:
        baseline = None
        if args.baseline.exists():
            baseline = json.loads(args.baseline.read_text())
        failures = check(result, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("scaling check passed", file=sys.stderr)

    out = args.out
    if out is None and not args.quick and not args.check:
        out = REPO_ROOT / DEFAULT_RESULTS_PATH
    if out is not None:
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
