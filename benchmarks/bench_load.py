"""LoadLab saturation benchmark: open-loop offered-load sweep.

Thin driver over :mod:`repro.load.sweep`. Steps offered load through a
ladder of arrival rates for both the singleton and batched introduction
configurations, records latency-vs-offered-load and goodput curves, and
detects the saturation knee (the last rung where goodput keeps up with
at least ``KNEE_GOODPUT_FRACTION`` of the offered rate).

The sweep runs in virtual time, so every number is machine-independent
and ``--check`` can enforce structural guarantees as hard failures:
a knee must exist for every configuration, the batched knee must sit at
or above the singleton knee, and per-point accounting must balance
(offered == admitted + dropped).

Usage:

    PYTHONPATH=src python benchmarks/bench_load.py              # full run, writes results
    PYTHONPATH=src python benchmarks/bench_load.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.load.sweep import (  # noqa: E402
    DEFAULT_RESULTS_PATH,
    REPO_ROOT,
    check_load,
    load_results,
    run_sweep,
    write_results,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short 2-point ladder for CI")
    parser.add_argument("--check", action="store_true",
                        help="enforce knee/accounting guarantees; exit 1 on failure")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline BENCH_load.json for regression comparison")
    parser.add_argument("--out", type=Path, default=None,
                        help="write results here (default: committed results path)")
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--profile", default="poisson")
    args = parser.parse_args(argv)

    result = run_sweep(quick=args.quick, seed=args.seed, profile=args.profile)
    print(json.dumps(result, indent=2))

    out = args.out
    if out is None and not args.quick:
        out = REPO_ROOT / DEFAULT_RESULTS_PATH
    if out is not None:
        write_results(result, out)
        print(f"wrote {out}", file=sys.stderr)

    if args.check:
        baseline_path = args.baseline
        if baseline_path is None:
            committed = REPO_ROOT / DEFAULT_RESULTS_PATH
            if committed.exists():
                baseline_path = committed
        baseline = load_results(baseline_path) if baseline_path else None
        failures = check_load(result, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"CHECK FAIL: {failure}", file=sys.stderr)
            return 1
        print("CHECK OK", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
