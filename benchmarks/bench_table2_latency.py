"""E2 — Table II: the latency cost of confidentiality.

Reproduces the paper's headline comparison: Spire 1.2 vs Confidential
Spire at f=1 and f=2 (two control centers + two data centers, ten clients
at one update per second). The paper's absolute numbers (on their
testbed):

    Spire        f=1  3+3+3+3  avg 51.7 ms   p0.1 39.7  p50 51.7  p99.9 63.9
    Spire        f=2  5+5+5+4  avg 54.4 ms   p0.1 42.5  p50 54.4  p99.9 67.7
    Confidential f=1  4+4+3+3  avg 53.6 ms   p0.1 41.6  p50 53.6  p99.9 66.1
    Confidential f=2  6+6+5+4  avg 61.2 ms   p0.1 46.0  p50 61.1  p99.9 86.2

Shape assertions: every configuration keeps 100% of updates under 100 ms
(the SCADA requirement); Confidential Spire pays a small overhead over
Spire at the same f (about 2 ms at f=1 in the paper); the overhead grows
with f; and f=2 costs more than f=1 within each system.
"""

import pytest

from repro.system import Mode

from benchmarks.conftest import TABLE2_DURATION, record_result, run_latency_config

PAPER_ROWS = {
    ("spire", 1): ("3+3+3+3", 51.7),
    ("spire", 2): ("5+5+5+4", 54.4),
    ("confidential", 1): ("4+4+3+3", 53.6),
    ("confidential", 2): ("6+6+5+4", 61.2),
}

_results = {}


def _run(benchmark, mode, f):
    def once():
        return run_latency_config(mode, f)

    deployment, stats = benchmark.pedantic(once, rounds=1, iterations=1)
    label, paper_avg = PAPER_ROWS[(mode.value, f)]
    assert deployment.plan.label().startswith(label)
    row = stats.row(f"{mode.value} f={f} ({label})")
    print(row + f"   | paper avg {paper_avg} ms")
    _results[(mode.value, f)] = stats
    # The SCADA timing requirement holds in every configuration.
    assert stats.pct_under_100ms == 100.0
    assert stats.pct_under_200ms == 100.0
    # Confidential Spire keeps data centers dark; Spire does not.
    exposed_dcs = deployment.auditor.exposed_hosts & set(deployment.data_center_hosts)
    if mode is Mode.CONFIDENTIAL:
        assert not exposed_dcs
    else:
        assert exposed_dcs
    return stats


def test_spire_f1(benchmark):
    _run(benchmark, Mode.SPIRE, 1)


def test_spire_f2(benchmark):
    _run(benchmark, Mode.SPIRE, 2)


def test_confidential_f1(benchmark):
    _run(benchmark, Mode.CONFIDENTIAL, 1)


def test_confidential_f2(benchmark):
    _run(benchmark, Mode.CONFIDENTIAL, 2)


def test_table2_shape(benchmark):
    """Cross-configuration assertions + emit the final table."""
    missing = [key for key in PAPER_ROWS if key not in _results]
    for mode_name, f in missing:
        mode = Mode.SPIRE if mode_name == "spire" else Mode.CONFIDENTIAL
        _results[(mode_name, f)] = run_latency_config(mode, f)[1]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    s1, s2 = _results[("spire", 1)], _results[("spire", 2)]
    c1, c2 = _results[("confidential", 1)], _results[("confidential", 2)]

    lines = [
        "Table II — update latency, ours vs paper "
        f"({int(TABLE2_DURATION)} s runs, 10 clients @ 1/s):",
        "",
    ]
    for (key, stats) in (
        (("spire", 1), s1),
        (("spire", 2), s2),
        (("confidential", 1), c1),
        (("confidential", 2), c2),
    ):
        label, paper_avg = PAPER_ROWS[key]
        lines.append(
            stats.row(f"{key[0]} f={key[1]} ({label})") + f"  | paper avg {paper_avg}"
        )
    overhead_f1 = (c1.average - s1.average) * 1000
    overhead_f2 = (c2.average - s2.average) * 1000
    lines.append("")
    lines.append(
        f"confidentiality overhead: f=1 {overhead_f1:+.2f} ms (paper +1.9), "
        f"f=2 {overhead_f2:+.2f} ms (paper +6.8)"
    )
    record_result("table2", lines)
    for line in lines:
        print(line)

    # Shape: who wins and in what order (paper's qualitative claims).
    assert c1.average > s1.average, "confidentiality costs something at f=1"
    assert c2.average > s2.average, "confidentiality costs something at f=2"
    assert overhead_f2 > overhead_f1, "overhead grows with f"
    assert s2.average > s1.average and c2.average > c1.average
    # Magnitude: overheads land in the paper's band (low single-digit ms).
    assert 0.5 < overhead_f1 < 8.0
    assert 1.0 < overhead_f2 < 12.0
    # Absolute calibration sanity: averages within ~25% of the paper.
    for key, stats in _results.items():
        paper_avg = PAPER_ROWS[key][1] / 1000.0
        assert abs(stats.average - paper_avg) / paper_avg < 0.25
