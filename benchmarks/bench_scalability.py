"""A5 — extension: scalability beyond the paper's configurations.

The paper evaluates f=1 and f=2. This bench extends the same measurement
along two axes the design arguments predict:

1. **Fault tolerance**: f = 1, 2, 3 for Confidential Spire (Table I's
   column two: 14, 21, 28 replicas). Latency should grow moderately with
   the quadratic message volume, while staying within the 100 ms SCADA
   bound — the design claims the architecture scales to f=3.
2. **Load**: update rate x1, x2, x4 at f=1. Prime's batching should
   absorb added load with sublinear latency growth (more updates share
   each proposal).
"""

import pytest

from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result


def run(f: int, interval: float, seed: int = 37, duration: float = 40.0):
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=f,
        num_clients=10,
        seed=seed,
        update_interval=interval,
    )
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=duration)
    deployment.run(until=duration + 3.0)
    return deployment


def test_latency_vs_fault_tolerance(benchmark):
    results = {}

    def sweep():
        for f in (1, 2, 3):
            results[f] = run(f, interval=1.0)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Scalability — latency vs tolerated intrusions (Confidential Spire):", ""]
    # The SCADA bound: 100 ms normally, 200 ms tolerable (Section VII-B).
    # f=1 and f=2 (the paper's configurations) essentially always meet
    # 100 ms; f=3 (beyond the paper) develops a tail but stays within the
    # degraded bound.
    floors = {1: 100.0, 2: 99.0, 3: 90.0}
    for f, deployment in results.items():
        stats = deployment.recorder.stats()
        lines.append(stats.row(f"f={f} ({deployment.plan.label()})"))
        assert stats.pct_under_100ms >= floors[f]
        assert stats.pct_under_200ms == 100.0
        deployment.auditor.assert_clean(set(deployment.data_center_hosts))
    averages = [results[f].recorder.stats().average for f in (1, 2, 3)]
    assert averages[0] < averages[1] < averages[2], "latency grows with f"
    # ... but stays moderate: f=3 within 1.5x of f=1.
    assert averages[2] < averages[0] * 1.5
    record_result("scalability_f", lines)
    for line in lines:
        print(line)


def test_latency_vs_load(benchmark):
    results = {}

    def sweep():
        for rate, interval in ((1, 1.0), (2, 0.5), (4, 0.25)):
            results[rate] = run(1, interval=interval, duration=30.0)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Scalability — latency vs per-client update rate (f=1):", ""]
    for rate, deployment in results.items():
        stats = deployment.recorder.stats()
        lines.append(stats.row(f"{rate} upd/s per client (n={stats.count})"))
        assert stats.pct_under_200ms == 100.0
    base = results[1].recorder.stats().average
    heavy = results[4].recorder.stats().average
    # Batching absorbs 4x load with far less than 4x latency.
    assert heavy < base * 1.5
    record_result("scalability_load", lines)
    for line in lines:
        print(line)
