"""Sim vs live: the same f=1 workload on both substrates.

The simulation *predicts* throughput and latency from modelled costs; the
live runtime *measures* them with real processes, real sockets, and real
RSA. This benchmark runs the identical workload shape (5 clients, 40
updates each, f=1 confidential distribution) on both and writes the pair
to ``benchmarks/results/BENCH_rt.json`` so the gap between model and
metal is a checked-in, diffable number.

Run directly (the live half spawns ~19 OS processes):

    PYTHONPATH=src python benchmarks/bench_rt_live.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.load.closedloop import latency_stats, run_closed_loop_sim
from repro.rt.bootstrap import RtConfig
from repro.rt.launcher import run_deployment
from repro.system import Mode, SystemConfig

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_rt.json"

NUM_CLIENTS = 5
UPDATES_PER_CLIENT = 40
UPDATE_INTERVAL = 0.05
SEED = 23


def run_sim() -> dict:
    """The same closed-loop workload under the deterministic simulation.

    Mirrors the live ClientDriver exactly: one in-flight update per
    client — submit, wait for the threshold-verified response, sleep the
    interval, repeat (the shared driver in ``repro.load.closedloop``).
    """
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        seed=SEED,
        num_clients=NUM_CLIENTS,
        update_interval=UPDATE_INTERVAL,
    )
    deployment, latencies, elapsed = run_closed_loop_sim(
        config, UPDATES_PER_CLIENT, UPDATE_INTERVAL
    )
    deployment.shutdown()
    return latency_stats(latencies, len(latencies), elapsed)


def run_live(out_dir: str) -> dict:
    """The same workload on real processes and sockets."""
    config = RtConfig(
        mode="confidential",
        f=1,
        seed=SEED,
        num_clients=NUM_CLIENTS,
        updates_per_client=UPDATES_PER_CLIENT,
        update_interval=UPDATE_INTERVAL,
        base_port=22000,
        out_dir=out_dir,
    )
    summary = run_deployment(config, timeout=240.0)
    if not summary["finished"]:
        raise RuntimeError(f"live workload did not finish: {summary}")
    latencies = []
    clients_dir = Path(out_dir) / "clients"
    for path in sorted(clients_dir.glob("*.json")):
        result = json.loads(path.read_text())
        latencies.extend(latency for _seq, latency in result["latencies"])
    return latency_stats(
        latencies, summary["updates_completed"], summary["workload_seconds"]
    )


def main(out_dir: str = "rt-bench") -> dict:
    result = {
        "workload": {
            "mode": "confidential",
            "f": 1,
            "clients": NUM_CLIENTS,
            "updates_per_client": UPDATES_PER_CLIENT,
            "update_interval_s": UPDATE_INTERVAL,
            "seed": SEED,
        },
        "sim": run_sim(),
        "live": run_live(out_dir),
    }
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    return result


if __name__ == "__main__":
    out = main(sys.argv[1] if len(sys.argv) > 1 else "rt-bench")
    print(json.dumps(out, indent=2, sort_keys=True))
