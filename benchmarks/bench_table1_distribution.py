"""E1 — Table I: replica distribution configurations.

Regenerates the paper's Table I (system configurations tolerating a
proactive recovery, a disconnected site, and 1-3 intrusions, for 1-3 data
centers) and checks it cell-for-cell, plus the Spire baselines used in
Table II.
"""

from repro.core.distribution import plan_confidential, plan_spire, table_one

from benchmarks.conftest import record_result

PAPER_TABLE_ONE = [
    ["6+6+6 (18)", "4+4+3+3 (14)", "4+4+2+2+2 (14)"],
    ["9+9+9 (27)", "6+6+5+4 (21)", "6+6+3+3+3 (21)"],
    ["12+12+12 (36)", "8+8+6+6 (28)", "8+8+4+4+4 (28)"],
]


def test_table1_reproduction(benchmark):
    table = benchmark(table_one)
    assert table == PAPER_TABLE_ONE

    lines = ["Table I — replica distributions (ours == paper, exact):", ""]
    header = f"{'':8s}" + "".join(f"{f'{d} data centers':>18s}" for d in (1, 2, 3))
    lines.append(header)
    for f, row in zip((1, 2, 3), table):
        lines.append(f"f = {f}   " + "".join(f"{cell:>18s}" for cell in row))
    lines.append("")
    lines.append("Spire 1.2 baselines (Section VII-A):")
    lines.append(f"  f=1: {plan_spire(1, 2).label()}   (paper: 3+3+3+3 (12))")
    lines.append(f"  f=2: {plan_spire(2, 2).label()}   (paper: 5+5+5+4 (19))")
    record_result("table1", lines)
    for line in lines:
        print(line)


def test_table1_derived_quorums(benchmark):
    def derive():
        return [
            (plan_confidential(f, d).quorum, plan_confidential(f, d).k)
            for f in (1, 2, 3)
            for d in (1, 2, 3)
        ]

    quorums = benchmark(derive)
    # Spot-check the flagship config: f=1, 2 DCs -> k=5, quorum 8.
    assert quorums[1] == (8, 5)
