"""Shared benchmark infrastructure.

Every benchmark regenerates a paper table or figure (or an ablation) and
prints the rows it produces; the same rows are appended to
``benchmarks/results/`` so EXPERIMENTS.md can reference stable outputs.

Scale: by default runs are shortened relative to the paper's 1-hour
experiments (latency distributions converge with far fewer samples in a
deterministic simulation). Set ``REPRO_BENCH_FULL=1`` to reproduce the
full 3600 s / 36 000-update runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Tuple

import pytest

from repro.system import Deployment, Mode, SystemConfig, build
from repro.system.metrics import LatencyStats

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL") == "1"
TABLE2_DURATION = 3600.0 if FULL_SCALE else 60.0
FIG2_SCALE = 1.0 if FULL_SCALE else 1.0  # Figure 2 is a 6-minute timeline either way


def record_result(name: str, lines) -> None:
    """Write one experiment's rows to benchmarks/results/<name>.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")


def run_latency_config(
    mode: Mode, f: int, seed: int = 3, duration: float = TABLE2_DURATION, **overrides
) -> Tuple[Deployment, LatencyStats]:
    """Run one Table II configuration and return its stats."""
    config = SystemConfig(mode=mode, f=f, num_clients=10, seed=seed, **overrides)
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=duration)
    deployment.run(until=duration + 3.0)
    return deployment, deployment.recorder.stats()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def _deterministic_batch_jitter():
    """Pin the intro batch-window jitter stream for the whole benchmark
    session. The builder reseeds it per deployment, but benchmarks that
    construct several deployments in one process (speedup ratios, A/B
    arms) must not depend on how many draws earlier benchmarks made."""
    from repro.core.intro import seed_batch_jitter

    seed_batch_jitter(0)
