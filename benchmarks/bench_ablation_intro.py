"""A1 — ablation: the introduction pipeline stays on the LAN.

Section VII-A's explanation of the small f=1 overhead: each on-premises
site holds 2f+2 >= f+1 replicas, so a replica can always assemble the
f+1 threshold-signature shares it needs from *within its own site* — the
added communication never crosses the WAN on the critical path.

This ablation measures exactly that: the time from a client update's
arrival at its introducer to its injection into Prime, compared against
the one-way WAN latency between control centers. It also quantifies the
end-to-end confidentiality overhead decomposition (intro cost vs ordering
cost) by comparing Confidential Spire to Spire at matched f.
"""

import pytest

from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result, run_latency_config

CC_WAN_ONE_WAY = 0.0085  # topology: cc-a <-> cc-b


def measure_intro_latency():
    """Per-update delay between proxy arrival and Prime injection."""
    config = SystemConfig(mode=Mode.CONFIDENTIAL, f=1, num_clients=10, seed=23)
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=30.0)
    deployment.run(until=33.0)
    arrivals = {}
    intro_delays = []
    for event in deployment.tracer.events:
        if event.category == "intro.injected":
            key = (event.detail["alias"], event.detail["seq"])
            if key in arrivals:
                intro_delays.append(event.time - arrivals[key])
        elif event.category == "replica.executed":
            pass
    # Arrival time approximated by the proxy submit time from samples.
    submit = {
        (s.client_id, s.client_seq): s.submit_time
        for s in deployment.recorder.samples
    }
    from repro.core.messages import client_alias

    alias_of = {client_alias(c): c for c in deployment.proxies}
    delays = []
    for event in deployment.tracer.select(category="intro.injected"):
        client = alias_of.get(event.detail["alias"])
        key = (client, event.detail["seq"])
        if key in submit:
            delays.append(event.time - submit[key])
    return deployment, sorted(delays)


def test_intro_stays_local(benchmark):
    deployment, delays = benchmark.pedantic(
        measure_intro_latency, rounds=1, iterations=1
    )
    assert delays
    median = delays[len(delays) // 2]
    p99 = delays[int(len(delays) * 0.99)]

    lines = [
        "Ablation A1 — introduction pipeline locality:",
        "",
        f"updates measured: {len(delays)}",
        f"intro delay (proxy->injection) median: {median * 1000:.2f} ms",
        f"intro delay p99: {p99 * 1000:.2f} ms",
        f"cc-a <-> cc-b one-way WAN latency: {CC_WAN_ONE_WAY * 1000:.2f} ms",
    ]
    record_result("ablation_intro", lines)
    for line in lines:
        print(line)

    # The whole pipeline — proxy hop, verification, encryption, share
    # exchange, combine — completes in LAN + crypto time: well under two
    # WAN round trips (it would take several if shares crossed the WAN).
    assert median < 2 * 2 * CC_WAN_ONE_WAY


def test_overhead_decomposition(benchmark):
    def run_pair():
        _s_dep, spire = run_latency_config(Mode.SPIRE, 1, seed=23, duration=30.0)
        _c_dep, conf = run_latency_config(Mode.CONFIDENTIAL, 1, seed=23, duration=30.0)
        return spire, conf

    spire, conf = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    overhead = (conf.average - spire.average) * 1000
    print(
        f"confidentiality overhead at f=1: {overhead:+.2f} ms "
        f"(spire {spire.average * 1000:.1f} -> conf {conf.average * 1000:.1f})"
    )
    assert 0.0 < overhead < 8.0
