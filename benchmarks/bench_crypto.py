"""A4 — cryptographic primitive microbenchmarks (Section VI-B substrate).

Measures the real wall-clock cost of every primitive on the critical
path: AES block/CBC, the deterministic HMAC-IV construction, RSA
signatures, and Shoup threshold RSA (partial, combine, verify). These are
the pure-Python costs; the *simulated* costs charged inside deployments
come from :class:`repro.costs.CostModel` (calibrated to C/OpenSSL-class
implementations) — this benchmark documents the gap.
"""

import random

import pytest

from repro.crypto.aes import AES
from repro.crypto.modes import cbc_encrypt
from repro.crypto.rsa import generate_keypair
from repro.crypto.shamir import reconstruct_bytes, split_bytes
from repro.crypto.symmetric import decrypt, derive_keypair, encrypt
from repro.crypto.threshold import combine_partials, generate_threshold_key

KEY = bytes(range(32))
BLOCK = bytes(range(16))
UPDATE = b"x" * 100          # a typical SCADA status report
CHECKPOINT = b"y" * 8192     # a small state snapshot


@pytest.fixture(scope="module")
def aes():
    return AES(KEY)


@pytest.fixture(scope="module")
def sym_keys():
    return derive_keypair(b"bench")


@pytest.fixture(scope="module")
def rsa():
    return generate_keypair(512, random.Random(1))


@pytest.fixture(scope="module")
def tsig():
    return generate_threshold_key(384, 2, 8, random.Random(2))


def test_aes_encrypt_block(benchmark, aes):
    benchmark(aes.encrypt_block, BLOCK)


def test_aes_decrypt_block(benchmark, aes):
    benchmark(aes.decrypt_block, BLOCK)


def test_aes_cbc_1kb(benchmark, aes):
    benchmark(cbc_encrypt, aes, BLOCK, b"z" * 1024)


def test_symmetric_encrypt_update(benchmark, sym_keys):
    benchmark(encrypt, sym_keys, UPDATE)


def test_symmetric_decrypt_update(benchmark, sym_keys):
    blob = encrypt(sym_keys, UPDATE)
    benchmark(decrypt, sym_keys, blob)


def test_symmetric_encrypt_checkpoint(benchmark, sym_keys):
    benchmark(encrypt, sym_keys, CHECKPOINT)


def test_rsa_sign(benchmark, rsa):
    benchmark(rsa.sign, UPDATE)


def test_rsa_verify(benchmark, rsa):
    signature = rsa.sign(UPDATE)
    benchmark(rsa.public.verify, UPDATE, signature)


def test_threshold_partial_sign(benchmark, tsig):
    benchmark(tsig.shares[1].sign_partial, UPDATE)


def test_threshold_combine(benchmark, tsig):
    partials = [tsig.shares[i].sign_partial(UPDATE) for i in (1, 2)]
    benchmark(combine_partials, tsig.public, UPDATE, partials)


def test_threshold_verify(benchmark, tsig):
    partials = [tsig.shares[i].sign_partial(UPDATE) for i in (1, 2)]
    signature = combine_partials(tsig.public, UPDATE, partials)
    benchmark(tsig.public.verify, UPDATE, signature)


def test_shamir_split(benchmark):
    rng = random.Random(3)
    benchmark(split_bytes, UPDATE, 2, 8, rng)


def test_shamir_reconstruct(benchmark):
    shares = split_bytes(UPDATE, 2, 8, random.Random(3))
    subset = {1: shares[1], 5: shares[5]}
    benchmark(reconstruct_bytes, subset)
