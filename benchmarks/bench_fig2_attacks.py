"""E3 — Figure 2: latency under proactive recoveries and site disconnections.

Reproduces the paper's attack timeline on the Confidential Spire
"4+4+3+3" configuration (10 clients at 1 update/s):

    paper event                      ours (seconds into the run)
    1:00-1:30 leader recovery        60-68   (view change; one spike)
    2:00 leader-site disconnected    120     (view change; brief spike,
                                              slightly elevated average)
    2:30 site reconnects             150     (catch-up burst)
    3:15-3:45 non-leader recovery    195-203 (no visible impact)
    4:19 non-leader site (DC) cut    259     (no view change, no spike)
    5:00 site reconnects             300     (catch-up burst)

Shape assertions mirror the paper's observations: leader events cause
view changes and the only >100 ms excursions; non-leader events are nearly
invisible; every update still completes; the system converges afterwards.
Absolute spike heights depend on flow-control engineering (the paper's
prototype reached 450 ms on reconnection; ours is milder), so the
assertions are on structure, not on matching the spike heights.
"""

import pytest

from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result

WINDOWS = [
    ("baseline", 5.0, 58.0),
    ("leader recovery", 58.0, 72.0),
    ("steady", 72.0, 118.0),
    ("leader site cut", 118.0, 126.0),
    ("during disconnection", 126.0, 149.0),
    ("reconnection", 149.0, 160.0),
    ("steady 2", 160.0, 193.0),
    ("non-leader recovery", 193.0, 207.0),
    ("steady 3", 207.0, 257.0),
    ("dc site cut+gone", 257.0, 299.0),
    ("dc reconnection", 299.0, 310.0),
    ("tail", 310.0, 355.0),
]


def run_timeline():
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL, f=1, num_clients=10, seed=7, checkpoint_interval=50
    )
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=355.0)

    deployment.run(until=60.0)
    leader_0 = deployment.current_leader()
    deployment.recovery.schedule_recovery(leader_0, 60.0, 8.0)

    deployment.run(until=120.0)
    leader_site = deployment.site_of_host(deployment.current_leader())
    deployment.attacks.isolate_site(leader_site)
    deployment.run(until=150.0)
    deployment.attacks.reconnect_site(leader_site)

    deployment.run(until=195.0)
    leader_now = deployment.current_leader()
    non_leader = next(
        h
        for h in deployment.on_premises_hosts
        if h != leader_now and h != leader_0
        and deployment.site_of_host(h) != deployment.site_of_host(leader_now)
    )
    deployment.recovery.schedule_recovery(non_leader, 195.0, 8.0)

    deployment.run(until=259.0)
    deployment.attacks.isolate_site("dc-2")
    deployment.run(until=300.0)
    deployment.attacks.reconnect_site("dc-2")

    deployment.run(until=360.0)
    return deployment, leader_site


@pytest.fixture(scope="module")
def timeline():
    return run_timeline()


def window_stats(deployment, start, end):
    values = [l for t, l in deployment.recorder.timeline() if start <= t < end]
    if not values:
        return None, None
    return max(values), sum(values) / len(values)


def test_figure2_timeline(benchmark, timeline):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    deployment, leader_site = timeline

    lines = [
        "Figure 2 — latency under recoveries and disconnections "
        "(Confidential Spire 4+4+3+3, 10 clients @ 1/s):",
        "",
        f"{'window':24s}{'max':>10s}{'avg':>10s}",
    ]
    stats = {}
    for name, start, end in WINDOWS:
        mx, avg = window_stats(deployment, start, end)
        stats[name] = (mx, avg)
        lines.append(f"{name:24s}{mx * 1000:9.1f}ms{avg * 1000:9.1f}ms")
    lines.append("")
    views = sorted({r.engine.view for r in deployment.replicas.values()})
    lines.append(f"final views: {views}; leader site attacked: {leader_site}")
    spikes = [
        (round(t, 1), round(l * 1000, 1))
        for t, l in deployment.recorder.timeline()
        if l > 0.100
    ]
    lines.append(f">100 ms updates (time, ms): {spikes}")
    record_result("fig2", lines)
    for line in lines:
        print(line)

    base_max, base_avg = stats["baseline"]

    # Paper: proactive recovery of a non-leader "has almost no impact".
    nl_max, nl_avg = stats["non-leader recovery"]
    assert nl_max < 0.100
    assert nl_avg < base_avg * 1.2

    # Paper: no latency spike when a non-leader (DC) site is disconnected.
    dc_max, _dc_avg = stats["dc site cut+gone"]
    assert dc_max < 0.120

    # Paper: during an on-premises disconnection the average rises
    # modestly (the fastest quorum is gone) but stays within bounds.
    _cut_max, cut_avg = stats["during disconnection"]
    assert cut_avg < 0.100
    assert cut_avg > base_avg * 0.9

    # Paper: leader events (recovery, site cut) are where view changes
    # and the worst latencies live.
    lr_max, _ = stats["leader recovery"]
    lc_max, _ = stats["leader site cut"]
    assert max(lr_max, lc_max) > base_max
    assert max(views) >= 2  # leader recovery + leader site cut

    # Every update completes; the system converges afterwards.
    for proxy in deployment.proxies.values():
        assert proxy.outstanding == 0
    assert len({r.executed_ordinal() for r in deployment.replicas.values()}) == 1
    deployment.auditor.assert_clean(set(deployment.data_center_hosts))

    # Timeliness: nothing ever exceeds the paper's 200 ms degraded bound
    # by more than the reconnection bursts the paper itself reports
    # (200-450 ms); and >100 ms excursions are confined to attack windows.
    assert deployment.recorder.max_latency() < 0.450
    for t, _l in [(t, l) for t, l in deployment.recorder.timeline() if l > 0.100]:
        assert any(
            start <= t < end
            for name, start, end in WINDOWS
            if "leader" in name or "reconnection" in name
        ), f"unexpected spike outside attack windows at t={t:.1f}"
