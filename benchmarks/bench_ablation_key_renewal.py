"""A3 — ablation: key renewal (Section V-D).

The paper designs (but does not implement) automatic key renewal; we
implement it and measure:

1. its latency overhead relative to renewal-off (should be small: one
   extra ordered message per client per validity period, plus hardware
   encryption of seeds),
2. the disclosure bound: keys leaked from one epoch decrypt none of the
   ciphertexts of later epochs, so a compromised-then-recovered replica
   exposes at most V + x updates per client going forward.
"""

import pytest

from repro.core.messages import EncryptedUpdate, client_alias
from repro.crypto import symmetric
from repro.errors import DecryptionError
from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result


def run_system(renewal: bool, validity: int = 15):
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=5,
        seed=29,
        key_renewal_enabled=renewal,
        key_validity=validity,
        key_slack=5,
        # Keep the whole run's ciphertexts resident (no stable-checkpoint
        # garbage collection) so the disclosure analysis below can scan
        # every epoch's stored updates.
        checkpoint_interval=100_000,
    )
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=45.0, interval=0.5)
    deployment.run(until=49.0)
    return deployment


def test_key_renewal_overhead(benchmark):
    def run_pair():
        return run_system(False), run_system(True)

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    stats_off = off.recorder.stats()
    stats_on = on.recorder.stats()
    replica = on.executing_replicas()[0]
    renewals = replica.renewal.renewals_completed
    overhead = (stats_on.average - stats_off.average) * 1000

    lines = [
        "Ablation A3 — key renewal overhead and disclosure bound:",
        "",
        stats_off.row("renewal off"),
        stats_on.row(f"renewal on (V=15, x=5)"),
        f"renewals completed: {renewals}",
        f"latency overhead: {overhead:+.2f} ms",
    ]

    # Rotation actually happened, traffic was never disrupted, and the
    # overhead is small.
    assert renewals >= 15  # 5 clients x ~90 updates / 15-update epochs
    assert stats_on.pct_under_200ms == 100.0
    assert abs(overhead) < 5.0

    # Disclosure bound: epoch-0 keys decrypt nothing beyond epoch 0.
    alias = sorted(on.env.alias_to_client)[0]
    schedule = replica.key_manager.schedule_for(alias)
    assert len(schedule.epochs) >= 3
    leaked = schedule.epochs[0]
    storage = on.storage_replicas()[0]
    later, decryptable = 0, 0
    for record in storage.update_log.values():
        for _ordinal, payload in record.entries:
            if not isinstance(payload, EncryptedUpdate) or payload.alias != alias:
                continue
            if payload.client_seq <= leaked.end_seq:
                continue
            later += 1
            try:
                symmetric.decrypt(leaked.keys, payload.ciphertext)
                decryptable += 1
            except DecryptionError:
                pass
    lines.append(
        f"post-epoch ciphertexts decryptable with leaked epoch-0 keys: "
        f"{decryptable}/{later}"
    )
    record_result("ablation_key_renewal", lines)
    for line in lines:
        print(line)
    assert later > 0 and decryptable == 0
