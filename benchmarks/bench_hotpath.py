"""PerfLab hot-path benchmark: encode-once fan-out, sim deployments, live fleet.

Runs the :mod:`repro.perf` suite and writes the result document to
``benchmarks/results/BENCH_hotpath.json``. With ``--check`` the fresh run
is compared against the committed baseline: the regression guard works on
cached-vs-uncached *speedup ratios* measured in the same run, so the
verdict is machine-independent even though absolute ops/s are not.

Usage:

    PYTHONPATH=src python benchmarks/bench_hotpath.py             # full suite
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick --check
    PYTHONPATH=src python benchmarks/bench_hotpath.py --live      # + process fleet
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf import (  # noqa: E402  (path bootstrap above)
    DEFAULT_RESULTS_PATH,
    compare_results,
    load_results,
    run_suite,
    write_results,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one small sim scenario and fewer encode repeats (CI smoke)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="also run the live multi-process deployment benchmark",
    )
    parser.add_argument(
        "--no-batch",
        dest="batch",
        action="store_false",
        help="skip the batched-intro scenarios (singleton hot path only)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare speedup ratios against the baseline; exit 1 on regression",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / DEFAULT_RESULTS_PATH,
        help="baseline JSON for --check (default: the committed results file)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where to write results (default: the committed results file; "
        "pass /dev/null-ish paths at your peril)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional erosion of baseline speedups (default 0.35)",
    )
    args = parser.parse_args(argv)

    result = run_suite(quick=args.quick, live=args.live, batch=args.batch)
    print(json.dumps(result, indent=2, sort_keys=True))

    if args.check:
        baseline = load_results(args.baseline)
        failures = compare_results(result, baseline, tolerance=args.tolerance)
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed", file=sys.stderr)

    out = args.out
    if out is None and not args.check:
        out = REPO_ROOT / DEFAULT_RESULTS_PATH
    if out is not None:
        write_results(result, out)
        print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
