"""StoreLab + CompactLab: recovery cost vs log length, compaction, deltas.

Three paired experiments, all against the deterministic simulation:

1. **Disk vs network recovery** (the original StoreLab sweep): a
   data-center replica crashes mid-run and rejoins. Without a durable
   store the whole missing prefix crosses the wire; with one it replays
   its local log and fetches only the suffix.
2. **Log size vs time, compaction on/off** (CompactLab): identical runs
   with the background compactor armed and disarmed; the on-disk log of
   the observed replica is sampled over virtual time. The ``--check``
   floor asserts the compacted log stays within a slack factor of its
   *live* record bytes (dead weight stays bounded), while the
   uncompacted log keeps the duplicates and below-stable records.
3. **Delta vs full state transfer** (CompactLab): a replica is crashed
   across several checkpoint intervals and rejoins with its durable
   store. With ``checkpoint_delta_interval`` set, responders ship only
   the delta suffix above the requester's chain tip; the baseline ships
   the full snapshot. The ``--check`` floor asserts the delta run moves
   strictly fewer wire bytes.

Writes ``benchmarks/results/BENCH_store.json``. Run directly:

    PYTHONPATH=src python benchmarks/bench_store_recovery.py [--quick] [--check]
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.store.filestore import SEGMENT_MAGIC, _scan_segment_frames
from repro.system import Mode, SystemConfig, build

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_store.json"

TARGET = "dc-2-r0"
SEED = 31
NUM_CLIENTS = 5
#: Long interval: the update-log tail (not checkpoint freshness) dominates
#: recovery, which is the regime the disk-vs-network sweep exercises.
CHECKPOINT_INTERVAL = 400
OUTAGE = 2.0
CRASH_TIMES = (6.0, 12.0, 18.0)

#: Compaction experiment: fast checkpoints make records go dead quickly,
#: small segments give the compactor sealed files to rewrite.
COMPACT_CHECKPOINT_INTERVAL = 25
COMPACT_SEGMENT_BYTES = 8192
COMPACT_TICK = 1.0
COMPACT_SLACK = 1.5

#: Delta experiment: the outage spans several checkpoint intervals so the
#: survivors' chain advances well past the crashed replica's disk state,
#: but stays within one full-snapshot period (EVERY_N * interval
#: ordinals) so the rejoining replica's own full anchor is still the
#: survivors' anchor and the transfer ships only the delta suffix.
DELTA_CHECKPOINT_INTERVAL = 25
DELTA_EVERY_N = 10
DELTA_UPDATE_INTERVAL = 0.25
DELTA_CRASH_AT = 8.0
DELTA_OUTAGE = 3.0


def counter(deployment, name, host):
    return sum(
        value
        for (metric, labels), value in deployment.metrics.counter_values().items()
        if metric == name and ("host", host) in labels
    )


def close_stores(deployment):
    for replica in deployment.replicas.values():
        replica.store.close()


# ---------------------------------------------------------------------------
# Experiment 1: disk vs network recovery (original sweep)
# ---------------------------------------------------------------------------

def run_once(crash_at: float, disk: bool, store_dir: str | None) -> dict:
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=NUM_CLIENTS,
        seed=SEED,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        store_dir=store_dir if disk else None,
        store_fsync="never",
    )
    deployment = build(config)
    deployment.start()
    end = crash_at + OUTAGE + 10.0
    deployment.start_workload(duration=end - 3.0)
    deployment.recovery.schedule_recovery(TARGET, crash_at, OUTAGE)
    deployment.run(until=end)

    recovered_at = caught_up_at = None
    have_seq = 0
    for event in deployment.tracer.events:
        if event.host != TARGET:
            continue
        if event.category == "replica.recovered":
            recovered_at = event.time
        elif event.category == "replica.caught-up" and recovered_at is not None:
            caught_up_at = caught_up_at or event.time
        elif event.category == "xfer.initiate":
            have_seq = max(have_seq, event.detail.get("have_seq", 0))

    live = deployment.replicas["dc-1-r0"]
    target = deployment.replicas[TARGET]
    point = {
        "crash_at": crash_at,
        "disk_recovery": disk,
        "recovery_seconds": (
            round(caught_up_at - recovered_at, 4)
            if recovered_at is not None and caught_up_at is not None
            else None
        ),
        "xfer_bytes_received": counter(deployment, "xfer.bytes_received", TARGET),
        "store_recovered_bytes": counter(deployment, "store.recovered_bytes", TARGET),
        "store_recovered_records": counter(
            deployment, "store.recovered_records", TARGET
        ),
        "have_seq_advertised": have_seq,
        "converged": target.executed_ordinal() == live.executed_ordinal(),
    }
    if disk:
        close_stores(deployment)
    return point


def sweep_disk_recovery(crash_times) -> tuple[list, list]:
    points, failures = [], []
    for crash_at in crash_times:
        tempdir = tempfile.mkdtemp(prefix="bench-store-")
        try:
            with_disk = run_once(crash_at, disk=True, store_dir=tempdir)
            without = run_once(crash_at, disk=False, store_dir=None)
        finally:
            shutil.rmtree(tempdir, ignore_errors=True)
        points.extend([with_disk, without])
        saved = without["xfer_bytes_received"] - with_disk["xfer_bytes_received"]
        print(
            f"crash@{crash_at:5.1f}s  "
            f"disk: {with_disk['xfer_bytes_received']:>9.0f}B wire, "
            f"{with_disk['store_recovered_records']:>4.0f} records replayed locally | "
            f"no-disk: {without['xfer_bytes_received']:>9.0f}B wire | "
            f"saved {saved:.0f}B"
        )
        if not (with_disk["converged"] and without["converged"]):
            failures.append(f"crash@{crash_at}: a run did not converge")
        if with_disk["xfer_bytes_received"] > without["xfer_bytes_received"]:
            failures.append(
                f"crash@{crash_at}: disk recovery transferred MORE than network-only"
            )
    return points, failures


# ---------------------------------------------------------------------------
# Experiment 2: log size vs time, compaction on/off
# ---------------------------------------------------------------------------

def _log_footprint(store_root: Path) -> dict:
    """Total / live / dead bytes of one replica's segment files, applying
    the compactor's own liveness rule (last copy of each seq wins; the
    stable point is not known offline, so 'live' here means 'not
    shadowed by a newer duplicate' — the part compaction cannot drop)."""
    seg_dir = store_root / "segments"
    total = live = records = 0
    frames = []  # (seg, pos, seq, size)
    for path in sorted(seg_dir.glob("seg-*.log")):
        total += path.stat().st_size
        scanned = _scan_segment_frames(path) or []
        for pos, (seq, frame) in enumerate(scanned):
            frames.append((path.name, pos, seq, len(frame)))
    last = {}
    for seg, pos, seq, size in frames:
        last[seq] = (seg, pos)
    for seg, pos, seq, size in frames:
        records += 1
        if last[seq] == (seg, pos):
            live += size
    live += len(SEGMENT_MAGIC) * max(
        1, len(list(seg_dir.glob("seg-*.log")))
    )
    return {"total_bytes": total, "live_bytes": live, "records": records}


def run_compaction_run(compaction: bool, duration: float, sample_times) -> dict:
    tempdir = tempfile.mkdtemp(prefix="bench-compact-")
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=NUM_CLIENTS,
        seed=SEED,
        update_interval=0.25,
        checkpoint_interval=COMPACT_CHECKPOINT_INTERVAL,
        store_dir=tempdir,
        store_fsync="never",
        store_segment_bytes=COMPACT_SEGMENT_BYTES,
        store_compaction_interval=COMPACT_TICK if compaction else 0.0,
        store_compaction_budget=2,
    )
    deployment = build(config)
    samples = []

    def sample(t):
        deployment.replicas[TARGET].store.sync()
        point = _log_footprint(Path(tempdir) / TARGET)
        point["time"] = t
        samples.append(point)

    for t in sample_times:
        deployment.kernel.call_at(t, sample, t)
    try:
        deployment.start()
        deployment.start_workload(duration=duration - 1.0)
        deployment.run(until=duration)
        final = _log_footprint(Path(tempdir) / TARGET)
        return {
            "compaction": compaction,
            "samples": samples,
            "final": final,
            "compaction_runs": counter(deployment, "store.compaction_runs", TARGET),
            "segments_rewritten": counter(
                deployment, "store.compaction_segments", TARGET
            ),
            "records_dropped": counter(
                deployment, "store.compaction_records_dropped", TARGET
            ),
            "bytes_reclaimed": counter(
                deployment, "store.compaction_bytes_reclaimed", TARGET
            ),
        }
    finally:
        close_stores(deployment)
        shutil.rmtree(tempdir, ignore_errors=True)


def sweep_compaction(duration: float, sample_times) -> tuple[dict, list]:
    on = run_compaction_run(True, duration, sample_times)
    off = run_compaction_run(False, duration, sample_times)
    print(
        f"compaction on : {on['final']['total_bytes']:>8d}B log "
        f"({on['final']['live_bytes']}B live), "
        f"{on['segments_rewritten']:.0f} segments rewritten, "
        f"{on['bytes_reclaimed']:.0f}B reclaimed"
    )
    print(
        f"compaction off: {off['final']['total_bytes']:>8d}B log "
        f"({off['final']['live_bytes']}B live)"
    )
    failures = []
    floor = on["final"]["live_bytes"] * COMPACT_SLACK + COMPACT_SEGMENT_BYTES
    if on["final"]["total_bytes"] > floor:
        failures.append(
            f"compacted log {on['final']['total_bytes']}B exceeds live-bytes "
            f"floor {floor:.0f}B (live {on['final']['live_bytes']}B x "
            f"{COMPACT_SLACK} + one open segment)"
        )
    if on["final"]["total_bytes"] > off["final"]["total_bytes"]:
        failures.append(
            "compaction made the log LARGER: "
            f"{on['final']['total_bytes']}B vs {off['final']['total_bytes']}B"
        )
    if on["segments_rewritten"] <= 0:
        failures.append("compactor never rewrote a segment (nothing exercised)")
    return {"on": on, "off": off}, failures


# ---------------------------------------------------------------------------
# Experiment 3: delta vs full state transfer
# ---------------------------------------------------------------------------

def run_delta_run(delta_interval: int, crash_at: float, outage: float) -> dict:
    tempdir = tempfile.mkdtemp(prefix="bench-delta-")
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=NUM_CLIENTS,
        seed=SEED,
        update_interval=DELTA_UPDATE_INTERVAL,
        checkpoint_interval=DELTA_CHECKPOINT_INTERVAL,
        checkpoint_delta_interval=delta_interval,
        store_dir=tempdir,
        store_fsync="never",
    )
    deployment = build(config)
    try:
        deployment.start()
        end = crash_at + outage + 10.0
        deployment.start_workload(duration=end - 3.0)
        deployment.recovery.schedule_recovery(TARGET, crash_at, outage)
        deployment.run(until=end)
        live = deployment.replicas["dc-1-r0"]
        target = deployment.replicas[TARGET]
        stable = live.checkpoints.stable
        return {
            "delta_interval": delta_interval,
            "crash_at": crash_at,
            "outage": outage,
            "xfer_bytes_received": counter(
                deployment, "xfer.bytes_received", TARGET
            ),
            "delta_checkpoints_saved": counter(
                deployment, "store.delta_checkpoints_saved", TARGET
            ),
            "full_snapshot_bytes": (
                len(stable.blob_bytes()) if stable is not None else 0
            ),
            "stable_ordinal": stable.ordinal if stable is not None else 0,
            "converged": target.executed_ordinal() == live.executed_ordinal(),
        }
    finally:
        close_stores(deployment)
        shutil.rmtree(tempdir, ignore_errors=True)


def sweep_delta(crash_at: float, outage: float) -> tuple[dict, list]:
    with_deltas = run_delta_run(DELTA_EVERY_N, crash_at, outage)
    baseline = run_delta_run(0, crash_at, outage)
    print(
        f"delta chain   : {with_deltas['xfer_bytes_received']:>9.0f}B wire "
        f"({with_deltas['delta_checkpoints_saved']:.0f} deltas persisted)"
    )
    print(
        f"full snapshots: {baseline['xfer_bytes_received']:>9.0f}B wire "
        f"(snapshot {baseline['full_snapshot_bytes']}B)"
    )
    failures = []
    if not (with_deltas["converged"] and baseline["converged"]):
        failures.append("a delta-experiment run did not converge")
    if with_deltas["xfer_bytes_received"] >= baseline["xfer_bytes_received"]:
        failures.append(
            "delta recovery did not transfer fewer wire bytes: "
            f"{with_deltas['xfer_bytes_received']}B vs "
            f"{baseline['xfer_bytes_received']}B full-snapshot baseline"
        )
    if with_deltas["delta_checkpoints_saved"] <= 0:
        failures.append("no delta checkpoints were persisted (nothing exercised)")
    return {"deltas": with_deltas, "full": baseline}, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer crash points, shorter runs")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a structural floor fails")
    args = parser.parse_args(argv)

    crash_times = CRASH_TIMES[:1] if args.quick else CRASH_TIMES
    compact_duration = 14.0 if args.quick else 24.0
    sample_times = (
        (6.0, 10.0, 13.0) if args.quick else (6.0, 12.0, 18.0, 23.0)
    )

    failures: list = []
    points, f1 = sweep_disk_recovery(crash_times)
    failures += f1
    compaction, f2 = sweep_compaction(compact_duration, sample_times)
    failures += f2
    delta, f3 = sweep_delta(DELTA_CRASH_AT, DELTA_OUTAGE)
    failures += f3

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "seed": SEED,
                "num_clients": NUM_CLIENTS,
                "checkpoint_interval": CHECKPOINT_INTERVAL,
                "outage_seconds": OUTAGE,
                "points": points,
                "compaction": compaction,
                "delta_transfer": delta,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {RESULTS_PATH}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures and args.check:
        return 1
    if failures:
        # Without --check, floors are informational (historical behaviour
        # kept for exploratory runs) — but convergence is never optional.
        return 1 if any("did not converge" in f for f in failures) else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
