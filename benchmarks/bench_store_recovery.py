"""StoreLab: recovery time and network transfer vs log length, disk on/off.

A data-center replica crashes mid-run and rejoins. Without a durable
store, the whole missing prefix crosses the wire; with one, the replica
replays its local log first and fetches only the suffix it missed while
down. This benchmark sweeps how much log has accumulated by crash time
(the longer the log since the last stable checkpoint, the bigger the
disk win) and writes the paired measurements to
``benchmarks/results/BENCH_store.json``.

Run directly:

    PYTHONPATH=src python benchmarks/bench_store_recovery.py
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
from pathlib import Path

from repro.system import Mode, SystemConfig, build

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_store.json"

TARGET = "dc-2-r0"
SEED = 31
NUM_CLIENTS = 5
#: Long interval: the update-log tail (not checkpoint freshness) dominates
#: recovery, which is the regime this benchmark sweeps.
CHECKPOINT_INTERVAL = 400
OUTAGE = 2.0
CRASH_TIMES = (6.0, 12.0, 18.0)


def counter(deployment, name, host):
    return sum(
        value
        for (metric, labels), value in deployment.metrics.counter_values().items()
        if metric == name and ("host", host) in labels
    )


def run_once(crash_at: float, disk: bool, store_dir: str | None) -> dict:
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=NUM_CLIENTS,
        seed=SEED,
        checkpoint_interval=CHECKPOINT_INTERVAL,
        store_dir=store_dir if disk else None,
        store_fsync="never",
    )
    deployment = build(config)
    deployment.start()
    end = crash_at + OUTAGE + 10.0
    deployment.start_workload(duration=end - 3.0)
    deployment.recovery.schedule_recovery(TARGET, crash_at, OUTAGE)
    deployment.run(until=end)

    recovered_at = caught_up_at = None
    have_seq = 0
    for event in deployment.tracer.events:
        if event.host != TARGET:
            continue
        if event.category == "replica.recovered":
            recovered_at = event.time
        elif event.category == "replica.caught-up" and recovered_at is not None:
            caught_up_at = caught_up_at or event.time
        elif event.category == "xfer.initiate":
            have_seq = max(have_seq, event.detail.get("have_seq", 0))

    live = deployment.replicas["dc-1-r0"]
    target = deployment.replicas[TARGET]
    point = {
        "crash_at": crash_at,
        "disk_recovery": disk,
        "recovery_seconds": (
            round(caught_up_at - recovered_at, 4)
            if recovered_at is not None and caught_up_at is not None
            else None
        ),
        "xfer_bytes_received": counter(deployment, "xfer.bytes_received", TARGET),
        "store_recovered_bytes": counter(deployment, "store.recovered_bytes", TARGET),
        "store_recovered_records": counter(
            deployment, "store.recovered_records", TARGET
        ),
        "have_seq_advertised": have_seq,
        "converged": target.executed_ordinal() == live.executed_ordinal(),
    }
    if disk:
        for replica in deployment.replicas.values():
            replica.store.close()
    return point


def main() -> int:
    points = []
    for crash_at in CRASH_TIMES:
        tempdir = tempfile.mkdtemp(prefix="bench-store-")
        try:
            with_disk = run_once(crash_at, disk=True, store_dir=tempdir)
            without = run_once(crash_at, disk=False, store_dir=None)
        finally:
            shutil.rmtree(tempdir, ignore_errors=True)
        points.extend([with_disk, without])
        saved = without["xfer_bytes_received"] - with_disk["xfer_bytes_received"]
        print(
            f"crash@{crash_at:5.1f}s  "
            f"disk: {with_disk['xfer_bytes_received']:>9.0f}B wire, "
            f"{with_disk['store_recovered_records']:>4.0f} records replayed locally | "
            f"no-disk: {without['xfer_bytes_received']:>9.0f}B wire | "
            f"saved {saved:.0f}B"
        )
        if not (with_disk["converged"] and without["converged"]):
            print("FAIL: a run did not converge", file=sys.stderr)
            return 1
        if with_disk["xfer_bytes_received"] > without["xfer_bytes_received"]:
            print("FAIL: disk recovery transferred MORE than network-only",
                  file=sys.stderr)
            return 1

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "seed": SEED,
                "num_clients": NUM_CLIENTS,
                "checkpoint_interval": CHECKPOINT_INTERVAL,
                "outage_seconds": OUTAGE,
                "points": points,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"wrote {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
