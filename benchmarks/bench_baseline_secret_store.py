"""A6 — related-work baseline: secret-sharing storage vs Confidential Spire.

Section II-C: secret-sharing systems (DepSpace, Belisarius, COBRA) keep
data confidential against any f compromises and could even be hosted
entirely in the cloud — but they only support storage-shaped operations.
This bench puts numbers on the comparison:

- raw storage latency of the secret-sharing store (cheap: one round trip
  plus share arithmetic, no total ordering),
- Confidential Spire's full update latency (a replicated *application*
  processed the update, not just stored it),
- and the capability difference that latency buys.
"""

import pytest

from repro.baselines import SecretStoreClient, SecretStoreReplica
from repro.net import Network, Overlay, east_coast_topology
from repro.net.topology import CLIENT_SITE, DATA_CENTER_1, DATA_CENTER_2
from repro.sim import Kernel, RngRegistry
from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result


def run_secret_store(num_writes: int = 60):
    kernel = Kernel()
    topology = east_coast_topology(2)
    hosts = []
    for index in range(4):
        host = f"store-{index}"
        topology.add_host(host, DATA_CENTER_1 if index % 2 else DATA_CENTER_2)
        hosts.append(host)
    topology.add_host("operator", CLIENT_SITE)
    rng = RngRegistry(31)
    network = Network(kernel, topology, Overlay(topology), rng)
    replicas = [SecretStoreReplica(network, h, i + 1) for i, h in enumerate(hosts)]
    client = SecretStoreClient(kernel, network, "operator", hosts, f=1, rng=rng)

    write_latencies, read_latencies = [], []

    def do_write(i):
        started = kernel.now
        client.write(f"key-{i}", b"x" * 100, lambda: write_latencies.append(kernel.now - started))

    def do_read(i):
        started = kernel.now
        client.read(f"key-{i}", lambda _v: read_latencies.append(kernel.now - started))

    for i in range(num_writes):
        kernel.call_at(0.5 + i * 0.1, do_write, i)
        kernel.call_at(0.55 + i * 0.1, do_read, i)
    kernel.run(until=60.0)
    return write_latencies, read_latencies, replicas


def test_baseline_comparison(benchmark):
    def run_both():
        writes, reads, replicas = run_secret_store()
        config = SystemConfig(mode=Mode.CONFIDENTIAL, f=1, num_clients=10, seed=31)
        deployment = build(config)
        deployment.start()
        deployment.start_workload(duration=30.0)
        deployment.run(until=33.0)
        return writes, reads, replicas, deployment

    writes, reads, replicas, deployment = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    spire_stats = deployment.recorder.stats()
    write_avg = sum(writes) / len(writes)
    read_avg = sum(reads) / len(reads)

    lines = [
        "A6 — secret-sharing storage baseline vs Confidential Spire:",
        "",
        f"secret store write (2f+1 ack quorum):   avg {write_avg * 1000:6.1f} ms "
        f"(n={len(writes)})",
        f"secret store read (f+1 shares):         avg {read_avg * 1000:6.1f} ms "
        f"(n={len(reads)})",
        f"confidential spire full update:         avg {spire_stats.average * 1000:6.1f} ms "
        f"(n={spire_stats.count})",
        "",
        "the difference buys: total ordering, server-side application",
        "execution, threshold-signed replies, and catch-up of disconnected",
        "sites — none of which a pure storage scheme provides.",
    ]
    record_result("baseline_secret_store", lines)
    for line in lines:
        print(line)

    # Storage is cheaper than replicated execution (no agreement rounds).
    assert write_avg < spire_stats.average
    assert read_avg < spire_stats.average
    # And confidential at the share level: no replica holds the value.
    assert all(b"x" * 100 not in (r.stored_share("key-0") or b"") for r in replicas)
