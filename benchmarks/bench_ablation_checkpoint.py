"""A2 — ablation: checkpoint interval.

The paper argues checkpointing is off the critical path (Section VII-A)
and that catch-up cost after a disconnection is governed by how much log
follows the last stable checkpoint. This ablation sweeps the interval C:

- steady-state latency should be flat in C (off the critical path),
- the reconnection catch-up burst should grow with C (more updates to
  ship and replay).
"""

import pytest

from repro.system import Mode, SystemConfig, build

from benchmarks.conftest import record_result

INTERVALS = (20, 60, 180)


def run_with_interval(interval: int):
    config = SystemConfig(
        mode=Mode.CONFIDENTIAL,
        f=1,
        num_clients=10,
        seed=17,
        checkpoint_interval=interval,
    )
    deployment = build(config)
    deployment.start()
    deployment.start_workload(duration=60.0)
    # Disconnect and rejoin a non-leader on-premises site to force the
    # catch-up path.
    deployment.kernel.call_at(25.0, deployment.attacks.isolate_site, "cc-b")
    deployment.kernel.call_at(40.0, deployment.attacks.reconnect_site, "cc-b")
    deployment.run(until=65.0)
    steady = deployment.recorder.stats(since=5.0, until=25.0)
    xfer_bytes = sum(
        e.detail.get("size", 0)
        for e in deployment.tracer.events
        if e.category == "net.drop"
    )
    rejoined = [deployment.replicas[h] for h in deployment.on_premises_hosts if h.startswith("cc-b")]
    transfers = sum(r.xfer.completed_count for r in rejoined)
    catch_max = deployment.recorder.max_latency(since=39.0, until=50.0)
    converged = len({r.executed_ordinal() for r in deployment.replicas.values()}) == 1
    return steady, catch_max, transfers, converged


def test_checkpoint_interval_sweep(benchmark):
    results = {}

    def sweep():
        for interval in INTERVALS:
            results[interval] = run_with_interval(interval)
        return results

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = [
        "Ablation A2 — checkpoint interval C (steady latency vs catch-up):",
        "",
        f"{'C':>6s}{'steady avg':>14s}{'catch-up max':>15s}{'transfers':>11s}{'converged':>11s}",
    ]
    for interval in INTERVALS:
        steady, catch_max, transfers, converged = results[interval]
        lines.append(
            f"{interval:6d}{steady.average * 1000:12.1f}ms{catch_max * 1000:13.1f}ms"
            f"{transfers:11d}{str(converged):>11s}"
        )
    record_result("ablation_checkpoint", lines)
    for line in lines:
        print(line)

    averages = [results[i][0].average for i in INTERVALS]
    # Off the critical path: steady-state averages within 10% of each other.
    assert max(averages) - min(averages) < 0.10 * min(averages) + 0.002
    # Every interval converges after the attack.
    assert all(results[i][3] for i in INTERVALS)
